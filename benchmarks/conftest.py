"""Shared helpers for the figure-regeneration benchmarks.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``test_figXX`` regenerates one figure of the paper's Section 6 and
prints the series as a table (also teed into ``bench_output.txt`` by the
top-level instructions).  The workload scale defaults to the fast
``small`` preset; set ``CASPER_BENCH_SCALE=paper`` for the paper's full
50K-user / 10K-target setup.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print a panel dict through pytest's capture so it reaches the
    terminal (and any tee) even without ``-s``."""

    def _show(panels: dict) -> None:
        with capsys.disabled():
            print()
            for key in sorted(panels):
                panels[key].print()

    return _show


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single timed round (the experiments are
    full parameter sweeps; pytest-benchmark records their wall time)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
