"""Ablation: Casper's anonymizers vs the related-work baselines.

The paper declined a direct comparison with spatio-temporal cloaking
[17] and CliqueCloak [16] because neither scales to its setup; at a
scale where all four run, this bench quantifies that argument: cloaking
time per request and achieved k'/k for basic, adaptive, IntervalCloak
(uniform k) and CliqueCloak (per-request cliques).
"""

from __future__ import annotations

import time
from statistics import mean

from benchmarks.conftest import run_once
from repro.anonymizer import AdaptiveAnonymizer, BasicAnonymizer, PrivacyProfile
from repro.anonymizer.baselines import CliqueCloak, CliqueRequest, IntervalCloak
from repro.evaluation.experiments.common import UNIT
from repro.evaluation.results import ExperimentResult
from repro.mobility import generate_trace
from repro.utils.rng import ensure_rng


K = 8  # IntervalCloak needs one global k; everyone uses it for fairness.
NUM_USERS = 2_000
NUM_REQUESTS = 300


def _run() -> dict[str, ExperimentResult]:
    trace = generate_trace(NUM_USERS, 0, seed=0)
    positions = trace.initial
    rng = ensure_rng(1)
    sample = [int(u) for u in rng.choice(NUM_USERS, size=NUM_REQUESTS, replace=False)]
    profile = PrivacyProfile(k=K)

    rows: dict[str, tuple[float, float]] = {}

    for label, anonymizer in (
        ("basic", BasicAnonymizer(UNIT, 8)),
        ("adaptive", AdaptiveAnonymizer(UNIT, 8)),
    ):
        for uid in sorted(positions):
            anonymizer.register(uid, positions[uid], profile)
        start = time.perf_counter()
        regions = [anonymizer.cloak(uid) for uid in sample]
        elapsed = time.perf_counter() - start
        rows[label] = (
            elapsed / len(sample),
            mean(r.achieved_k / K for r in regions),
        )

    interval = IntervalCloak(UNIT, k=K)
    for uid in sorted(positions):
        interval.register(uid, positions[uid])
    start = time.perf_counter()
    regions = [interval.cloak(uid) for uid in sample]
    elapsed = time.perf_counter() - start
    rows["interval-cloak"] = (
        elapsed / len(sample),
        mean(r.achieved_k / K for r in regions),
    )

    clique = CliqueCloak(UNIT)
    served_sizes = []
    start = time.perf_counter()
    for uid in sample:
        served = clique.submit(
            CliqueRequest(uid, positions[uid], k=K, tolerance=0.08)
        )
        if served:
            served_sizes.extend(r.achieved_k / K for r in served.values())
    elapsed = time.perf_counter() - start
    rows["clique-cloak"] = (
        elapsed / len(sample),
        mean(served_sizes) if served_sizes else float("nan"),
    )

    labels = list(rows)
    panel = ExperimentResult(
        "Ablation A2", "Anonymizer comparison at equal k",
        "anonymizer", "avg cloak seconds / achieved k ratio", labels,
        notes=f"{NUM_USERS} users, k={K}; clique-cloak ratio is over served "
        "requests only (unserved requests stay pending)",
    )
    panel.add_series("avg seconds per request", [rows[l][0] for l in labels])
    panel.add_series("achieved k'/k", [rows[l][1] for l in labels])
    return {"a": panel}


def test_ablation_anonymizers(benchmark, show):
    panels = run_once(benchmark, _run)
    show(panels)
    panel = panels["a"]
    times = panel.series_by_label("avg seconds per request").values
    ratios = panel.series_by_label("achieved k'/k").values
    by_label = dict(zip(panel.x_values, times))
    # The pyramid anonymizers beat the per-request KD subdivision.
    assert by_label["adaptive"] < by_label["interval-cloak"]
    assert by_label["basic"] < by_label["interval-cloak"]
    # Every anonymizer achieves at least k (ratios >= 1 where defined).
    assert all(r >= 1.0 for r in ratios if r == r)
