"""Regenerates Figure 17 (Casper end-to-end performance)."""

from benchmarks.conftest import run_once
from repro.evaluation.experiments import run_fig17
from repro.evaluation.experiments.common import active_scale


def test_fig17_end_to_end(benchmark, show):
    scale = active_scale()
    # The paper's end-to-end setup is 10K users / 10K targets.
    users = 10_000 if scale.name == "paper" else scale.num_users
    targets = 10_000 if scale.name == "paper" else scale.num_targets
    panels = run_once(
        benchmark,
        lambda: run_fig17(
            num_users=users,
            num_targets=targets,
            num_queries=scale.num_queries,
        ),
    )
    show(panels)
    # Paper shape: anonymizer time is negligible; for strict k the
    # transmission time dominates the public-data end-to-end cost.
    panel = panels["b"]
    anon = panel.series_by_label("public anonymizer").values
    proc = panel.series_by_label("public processing").values
    trans = panel.series_by_label("public transmission").values
    assert all(a < p for a, p in zip(anon, proc))
    assert trans[-1] > trans[0]
    assert trans[-1] > proc[-1]
