"""Regenerates Figure 12 (effect of the k-anonymity requirement)."""

from benchmarks.conftest import run_once
from repro.evaluation.experiments import run_fig12
from repro.evaluation.experiments.common import active_scale


def test_fig12_privacy_profile(benchmark, show):
    scale = active_scale()
    panels = run_once(
        benchmark,
        lambda: run_fig12(
            num_users=scale.num_users,
            num_cloaks=scale.num_cloaks,
            trace_ticks=scale.trace_ticks,
        ),
    )
    show(panels)
    # Paper shape: basic cloaking gets slower as k tightens; adaptive
    # maintenance gets cheaper as k tightens.
    basic_cloak = panels["a"].series_by_label("basic").values
    assert basic_cloak[-1] > basic_cloak[0]
    adaptive_updates = panels["b"].series_by_label("adaptive").values
    assert adaptive_updates[-1] < adaptive_updates[0]
