"""Regenerates Figure 15 (effect of the cloaked query-region size)."""

from benchmarks.conftest import run_once
from repro.evaluation.experiments import run_fig15
from repro.evaluation.experiments.common import active_scale


def test_fig15_query_region(benchmark, show):
    scale = active_scale()
    panels = run_once(
        benchmark,
        lambda: run_fig15(
            num_targets=scale.num_targets,
            num_queries=scale.num_queries,
        ),
    )
    show(panels)
    # Paper shape: candidate size grows with the query region for every
    # filter count, and four filters is smallest at the largest region.
    for series in panels["a"].series:
        assert series.values[-1] > series.values[0]
    sizes = {s.label: s.values[-1] for s in panels["a"].series}
    assert sizes["4 filters"] <= min(sizes.values()) * 1.0001
