"""Ablation: index independence of the privacy-aware query processor.

Section 5.1.1: "Our approach is independent from the nearest-neighbor
and range query algorithms ... it can be employed using R-tree or any
other methods."  This bench runs the same private NN workload over four
interchangeable indexes, asserts identical candidate sets, and reports
the per-index processing time.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.evaluation.experiments.common import UNIT, active_scale, cloaked_query_regions
from repro.evaluation.results import ExperimentResult
from repro.geometry import Rect
from repro.processor import private_nn_over_public
from repro.spatial import BruteForceIndex, GridIndex, QuadTreeIndex, RTreeIndex
from repro.workloads import uniform_points


def _run(scale) -> dict[str, ExperimentResult]:
    targets = uniform_points(scale.num_targets, UNIT, seed=0)
    entries = {oid: Rect.point(p) for oid, p in targets.items()}
    queries = cloaked_query_regions(scale.num_users, scale.num_queries, seed=0)

    indexes = {
        "r-tree": RTreeIndex(),
        "grid": GridIndex(UNIT, resolution=64),
        "quadtree": QuadTreeIndex(UNIT, leaf_capacity=16),
        "brute-force": BruteForceIndex(),
    }
    for index in indexes.values():
        index.bulk_load(entries)

    labels = list(indexes)
    panel = ExperimentResult(
        "Ablation A3", "Index independence of the query processor",
        "index", "avg seconds per query / avg candidate size", labels,
    )
    times, sizes = [], []
    reference_sets: list[set] | None = None
    for label, index in indexes.items():
        start = time.perf_counter()
        answers = [private_nn_over_public(index, area, 4) for area in queries]
        elapsed = time.perf_counter() - start
        answer_sets = [set(a.oids()) for a in answers]
        if reference_sets is None:
            reference_sets = answer_sets
        else:
            assert answer_sets == reference_sets, f"{label} disagrees"
        times.append(elapsed / len(queries))
        sizes.append(sum(len(a) for a in answers) / len(answers))
    panel.add_series("avg seconds per query", times)
    panel.add_series("avg candidate size", sizes)
    return {"a": panel}


def test_ablation_indexes(benchmark, show):
    scale = active_scale()
    panels = run_once(benchmark, lambda: _run(scale))
    show(panels)
    sizes = panels["a"].series_by_label("avg candidate size").values
    # Identical candidate sets imply identical sizes across indexes.
    assert max(sizes) - min(sizes) < 1e-9
