"""Regenerates Figure 16 (effect of the private data-region size)."""

from benchmarks.conftest import run_once
from repro.evaluation.experiments import run_fig16
from repro.evaluation.experiments.common import active_scale


def test_fig16_data_region(benchmark, show):
    scale = active_scale()
    panels = run_once(
        benchmark,
        lambda: run_fig16(
            num_targets=scale.num_targets,
            num_users=scale.num_users,
            num_queries=scale.num_queries,
        ),
    )
    show(panels)
    # Paper shape: four filters decrease candidate size at every data
    # region size while increasing processing time.
    sizes1 = panels["a"].series_by_label("1 filter").values
    sizes4 = panels["a"].series_by_label("4 filters").values
    assert all(s4 <= s1 for s4, s1 in zip(sizes4, sizes1))
