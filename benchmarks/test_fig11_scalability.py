"""Regenerates Figure 11 (scalability in the number of users)."""

from benchmarks.conftest import run_once
from repro.evaluation.experiments import run_fig11
from repro.evaluation.experiments.common import active_scale


def test_fig11_scalability(benchmark, show):
    scale = active_scale()
    panels = run_once(
        benchmark,
        lambda: run_fig11(
            user_counts=scale.user_counts,
            num_cloaks=scale.num_cloaks,
            trace_ticks=scale.trace_ticks,
        ),
    )
    show(panels)
    # Paper shape: adaptive cloaking is never slower than basic at the
    # largest population, and its update cost stays below basic's.
    assert (
        panels["a"].series_by_label("adaptive").values[-1]
        <= panels["a"].series_by_label("basic").values[-1] * 1.25
    )
    assert (
        panels["b"].series_by_label("adaptive").values[-1]
        < panels["b"].series_by_label("basic").values[-1]
    )
