"""Ablation: the adaptive pyramid's footprint adapts to privacy demand.

Section 4.2's design argument quantified: the incomplete pyramid
maintains only the cells the population's profiles can use, so its size
(and hence its maintenance surface) should collapse as profiles get
stricter, while the basic pyramid's cell count is fixed by the height.
Also measures the split/merge churn a commuter tide induces.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.anonymizer import AdaptiveAnonymizer, PrivacyProfile
from repro.evaluation.experiments.common import UNIT
from repro.evaluation.results import ExperimentResult
from repro.mobility import CommuterGenerator, generate_trace, synthetic_county_map
from repro.workloads import PAPER_K_GROUPS, uniform_profiles

HEIGHT = 9
NUM_USERS = 4_000
#: Complete pyramid size at HEIGHT, the basic anonymizer's footprint.
COMPLETE_CELLS = sum(4**level for level in range(HEIGHT + 1))


def _run() -> dict[str, ExperimentResult]:
    trace = generate_trace(NUM_USERS, 0, seed=0)
    labels = [f"[{lo}-{hi}]" for lo, hi in PAPER_K_GROUPS]
    panel = ExperimentResult(
        "Ablation A4a", "Adaptive pyramid footprint vs privacy demand",
        "k range", "maintained cells (basic pyramid: "
        f"{COMPLETE_CELLS:,} cells)", labels,
    )
    cells, fractions = [], []
    for k_lo, k_hi in PAPER_K_GROUPS:
        profiles = uniform_profiles(
            NUM_USERS, UNIT, k_range=(k_lo, k_hi), seed=1
        )
        anonymizer = AdaptiveAnonymizer(UNIT, HEIGHT)
        for uid in sorted(trace.initial):
            anonymizer.register(uid, trace.initial[uid], profiles[uid])
        cells.append(anonymizer.num_maintained_cells)
        fractions.append(anonymizer.num_maintained_cells / COMPLETE_CELLS)
    panel.add_series("maintained cells", cells)
    panel.add_series("fraction of complete pyramid", fractions)

    # Tide churn: a commuting population forces splits downtown by day
    # and merges at night.
    network = synthetic_county_map(seed=2)
    commuters = CommuterGenerator(network, 1_500, seed=3, dwell_range=(2.0, 5.0))
    anonymizer = AdaptiveAnonymizer(UNIT, 8)
    for uid, point in commuters.positions().items():
        anonymizer.register(uid, point, PrivacyProfile(k=10))
    ticks = list(range(0, 24, 4))
    sizes, splits, merges = [], [], []
    last_split = last_merge = 0
    for tick in range(24):
        for update in commuters.step(1.0):
            anonymizer.update(update.uid, update.point)
        if tick % 4 == 0:
            sizes.append(anonymizer.num_maintained_cells)
            splits.append(anonymizer.stats.splits - last_split)
            merges.append(anonymizer.stats.merges - last_merge)
            last_split = anonymizer.stats.splits
            last_merge = anonymizer.stats.merges
    tide = ExperimentResult(
        "Ablation A4b", "Adaptive pyramid under a commuter tide",
        "tick", "cells / splits / merges in window", ticks,
    )
    tide.add_series("maintained cells", sizes)
    tide.add_series("splits in window", splits)
    tide.add_series("merges in window", merges)
    return {"a": panel, "b": tide}


def test_ablation_adaptive_memory(benchmark, show):
    panels = run_once(benchmark, _run)
    show(panels)
    cells = panels["a"].series_by_label("maintained cells").values
    # Strict profiles collapse the maintained structure.
    assert cells[-1] < cells[0]
    assert cells[-1] < COMPLETE_CELLS / 100
    # The tide keeps restructuring the pyramid in both directions.
    assert sum(panels["b"].series_by_label("splits in window").values) > 0
    assert sum(panels["b"].series_by_label("merges in window").values) > 0
