"""Regenerates Figure 10 (pyramid-height effects)."""

from benchmarks.conftest import run_once
from repro.evaluation.experiments import run_fig10
from repro.evaluation.experiments.common import active_scale


def test_fig10_pyramid_height(benchmark, show):
    scale = active_scale()
    panels = run_once(
        benchmark,
        lambda: run_fig10(
            num_users=scale.num_users,
            num_cloaks=scale.num_cloaks,
            trace_ticks=scale.trace_ticks,
        ),
    )
    show(panels)
    # Paper shape: basic maintenance cost grows with pyramid height and
    # exceeds adaptive at the tallest pyramid.
    basic = panels["b"].series_by_label("basic").values
    adaptive = panels["b"].series_by_label("adaptive").values
    assert basic[-1] > basic[0]
    assert adaptive[-1] < basic[-1]
