"""Regenerates Figure 13 (scalability in public target objects)."""

from benchmarks.conftest import run_once
from repro.evaluation.experiments import run_fig13
from repro.evaluation.experiments.common import active_scale


def test_fig13_public_targets(benchmark, show):
    scale = active_scale()
    panels = run_once(
        benchmark,
        lambda: run_fig13(
            target_counts=scale.target_counts,
            num_users=scale.num_users,
            num_queries=scale.num_queries,
        ),
    )
    show(panels)
    # Paper shape: four filters produce the smallest candidate lists —
    # roughly half of one filter at the largest target count.
    sizes1 = panels["a"].series_by_label("1 filter").values
    sizes4 = panels["a"].series_by_label("4 filters").values
    assert sizes4[-1] < sizes1[-1]
    assert sizes4[-1] < 0.8 * sizes1[-1]
