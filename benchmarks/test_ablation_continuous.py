"""Ablation: incremental continuous-query monitoring vs recompute-all.

The paper defers continuous queries to "scalable and/or incremental"
processors; this bench shows why that matters.  The same standing-query
workload runs twice over identical movement: once through the
incremental ``ContinuousQueryMonitor`` (grid-join dirtying), once
recomputing every query every tick.  Answers are asserted identical;
the work ratio is the payoff.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import run_once
from repro.anonymizer import PrivacyProfile
from repro.continuous import ContinuousQueryMonitor
from repro.evaluation.experiments.common import UNIT
from repro.evaluation.results import ExperimentResult
from repro.mobility import NetworkGenerator, synthetic_county_map
from repro.processor import private_nn_over_public
from repro.server import Casper
from repro.workloads import uniform_points

NUM_USERS = 1_200
NUM_TARGETS = 800
NUM_QUERIES = 60
TICKS = 6
#: Only a subset of users move each tick; standing queries of parked
#: users should cost ~nothing under incremental monitoring.
MOVERS_PER_TICK = 120


def _build():
    network = synthetic_county_map(seed=10)
    generator = NetworkGenerator(network, NUM_USERS, seed=11)
    rng = np.random.default_rng(12)
    casper = Casper(UNIT, pyramid_height=8, anonymizer="adaptive")
    casper.add_public_targets(uniform_points(NUM_TARGETS, UNIT, seed=13))
    for uid, point in generator.positions().items():
        casper.register_user(uid, point, PrivacyProfile(k=int(rng.integers(1, 30))))
    return casper, generator, rng


def _run() -> dict[str, ExperimentResult]:
    casper, generator, rng = _build()
    monitor = ContinuousQueryMonitor(casper)
    query_users = [int(u) for u in rng.choice(NUM_USERS, NUM_QUERIES, replace=False)]
    for uid in query_users:
        monitor.register_nn(f"q{uid}", uid)

    incremental_seconds = 0.0
    full_seconds = 0.0
    changed_counts = []
    for _tick in range(TICKS):
        movers = [int(u) for u in rng.choice(NUM_USERS, MOVERS_PER_TICK, replace=False)]
        generator.step(1.0)
        positions = generator.positions()

        # Applying the location updates to Casper (anonymizer + stored
        # cloaks) is state maintenance both strategies need; it happens
        # outside both timers.  What we compare is the *query upkeep*:
        # dirty-marking + selective re-evaluation vs recompute-all.
        applied = []
        private_index = casper.server.private_index
        for uid in movers:
            old_region = private_index.rect_of(uid)
            cloak = casper.update_location(uid, positions[uid])
            applied.append((uid, old_region, cloak.region))

        start = time.perf_counter()
        for uid, old_region, new_region in applied:
            monitor.notify_user_moved(uid, old_region, new_region)
        changes = monitor.flush()
        incremental_seconds += time.perf_counter() - start
        changed_counts.append(len(changes))

        # Recompute-all oracle over the same post-update state.
        start = time.perf_counter()
        fresh = {}
        for uid in query_users:
            cloak = casper.anonymizer.cloak(uid)
            fresh[uid] = frozenset(
                private_nn_over_public(
                    casper.server.public_index, cloak.region, 4
                ).oids()
            )
        full_seconds += time.perf_counter() - start
        for uid in query_users:
            assert monitor.answer_of(f"q{uid}") == fresh[uid], "answers diverged"

    panel = ExperimentResult(
        "Ablation A5", "Incremental monitor vs recompute-all",
        "strategy", "seconds over the whole run", ["incremental", "recompute-all"],
        notes=f"{NUM_QUERIES} standing NN queries, {TICKS} ticks, "
        f"{MOVERS_PER_TICK}/{NUM_USERS} users move per tick; answers "
        f"asserted identical; avg {np.mean(changed_counts):.1f} answers "
        "changed per tick",
    )
    panel.add_series("total seconds", [incremental_seconds, full_seconds])
    return {"a": panel}


def test_ablation_continuous(benchmark, show):
    panels = run_once(benchmark, _run)
    show(panels)
    seconds = panels["a"].series_by_label("total seconds").values
    incremental, full = seconds
    # The incremental monitor includes full consistency (its flush
    # re-cloak scan), yet must still beat naive recomputation.
    assert incremental < full
