"""Ablation: candidate-list quality across answer strategies.

Extends Figures 13-16 with the two naive extremes of Figure 4 (center-NN
and ship-everything) so the whole design space is on one table: answer
size, exactness, and processing time per strategy.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.evaluation.experiments.common import UNIT, active_scale, cloaked_query_regions
from repro.evaluation.results import ExperimentResult
from repro.geometry import Point, Rect
from repro.processor import naive_center_nn, naive_send_all, private_nn_over_public
from repro.spatial import RTreeIndex
from repro.utils.rng import ensure_rng
from repro.workloads import uniform_points


def _run(scale) -> dict[str, ExperimentResult]:
    targets = uniform_points(scale.num_targets, UNIT, seed=0)
    index = RTreeIndex()
    index.bulk_load({oid: Rect.point(p) for oid, p in targets.items()})
    queries = cloaked_query_regions(scale.num_users, scale.num_queries, seed=0)
    rng = ensure_rng(1)

    strategies = ["center-NN", "1 filter", "2 filters", "4 filters", "ship-all"]
    panel = ExperimentResult(
        "Ablation A1", "Answer strategies on private NN over public data",
        "strategy", "avg size / exact-rate / avg seconds", strategies,
        notes="exact-rate: fraction of random user positions whose true NN "
        "is recoverable from the answer",
    )
    sizes, exact_rates, times = [], [], []
    for strategy in strategies:
        total_size = 0
        exact = 0
        trials = 0
        start = time.perf_counter()
        answers = []
        for area in queries:
            if strategy == "center-NN":
                answers.append(naive_center_nn(index, area))
            elif strategy == "ship-all":
                answers.append(naive_send_all(index, area))
            else:
                nf = int(strategy.split()[0])
                answers.append(private_nn_over_public(index, area, nf))
        elapsed = time.perf_counter() - start
        for area, answer in zip(queries, answers):
            total_size += len(answer)
            for _ in range(5):
                u = Point(
                    float(rng.uniform(area.x_min, area.x_max)),
                    float(rng.uniform(area.y_min, area.y_max)),
                )
                truth = index.nearest(u)
                trials += 1
                if truth in answer.oids():
                    exact += 1
        sizes.append(total_size / len(queries))
        exact_rates.append(exact / trials)
        times.append(elapsed / len(queries))
    panel.add_series("avg candidate size", sizes)
    panel.add_series("exact-answer rate", exact_rates)
    panel.add_series("avg seconds per query", times)
    return {"a": panel}


def test_ablation_filters(benchmark, show):
    scale = active_scale()
    panels = run_once(benchmark, lambda: _run(scale))
    show(panels)
    panel = panels["a"]
    sizes = panel.series_by_label("avg candidate size").values
    rates = panel.series_by_label("exact-answer rate").values
    # center-NN is tiny but inexact; all Casper variants are exact;
    # ship-all is exact but maximal; 4 filters beats 1 filter on size.
    assert rates[0] < 1.0
    assert all(r == 1.0 for r in rates[1:])
    assert sizes[3] < sizes[1] < sizes[4]
