"""Ablation: what linkable continuous reports leak, as a function of k.

Section 4.3 guarantees a *single* cloak is uniform over its region.  A
standing (pseudonym-linkable) stream of cloaks is a different threat:
an adversary with a motion bound can intersect successive reports
(``RegionIntersectionAttack``).  This bench measures the achieved
narrowing across k groups — quantifying how much headroom the
k-anonymity dial buys against linkage, a question the paper leaves to
future work.
"""

from __future__ import annotations

from statistics import mean

import numpy as np

from benchmarks.conftest import run_once
from repro.anonymizer import PrivacyProfile
from repro.errors import ProfileUnsatisfiableError
from repro.evaluation.experiments.common import UNIT
from repro.evaluation.results import ExperimentResult
from repro.mobility import NetworkGenerator, synthetic_county_map
from repro.privacy import AnonymityAuditor, RegionIntersectionAttack
from repro.server import Casper

NUM_USERS = 1_500
K_GROUPS = ((2, 5), (10, 20), (40, 60), (100, 150))
TICKS = 8
VICTIMS = 20
#: Honest L-inf speed bound for the synthetic county (highway speed
#: times the generator's speed-jitter headroom).
MAX_SPEED = 0.05 * 1.3 + 1e-9


def _run() -> dict[str, ExperimentResult]:
    labels = [f"[{lo}-{hi}]" for lo, hi in K_GROUPS]
    panel = ExperimentResult(
        "Ablation A6", "Linkage attack narrowing vs k",
        "k range",
        "feasible-set area / last cloak area (1.0 = no extra leak)",
        labels,
        notes=f"{TICKS} linked reports per victim, motion bound "
        f"{MAX_SPEED:.3f}; k-audit violations must be zero",
    )
    narrowing_rows = []
    area_rows = []
    violations = 0
    for k_lo, k_hi in K_GROUPS:
        network = synthetic_county_map(seed=20)
        generator = NetworkGenerator(network, NUM_USERS, seed=21)
        rng = np.random.default_rng(22)
        casper = Casper(UNIT, pyramid_height=9, anonymizer="adaptive")
        promised = {}
        for uid, point in generator.positions().items():
            k = int(rng.integers(k_lo, k_hi + 1))
            promised[uid] = k
            casper.register_user(uid, point, PrivacyProfile(k=k))
        auditor = AnonymityAuditor()
        attacks = {
            victim: RegionIntersectionAttack(max_speed=MAX_SPEED)
            for victim in range(VICTIMS)
        }
        last_regions = {}
        for tick in range(TICKS):
            for update in generator.step(1.0):
                casper.update_location(update.uid, update.point)
            positions = {
                uid: casper.anonymizer.location_of(uid)
                for uid in range(NUM_USERS)
            }
            for victim, attack in attacks.items():
                try:
                    region = casper.anonymizer.cloak(victim).region
                except ProfileUnsatisfiableError:
                    continue
                attack.observe(region, float(tick))
                last_regions[victim] = region
                auditor.audit(victim, region, promised[victim], positions)
                assert attack.contains(positions[victim])
        factors = [
            attacks[v].narrowing_factor(last_regions[v])
            for v in attacks
            if v in last_regions
        ]
        areas = [attacks[v].feasible.area for v in attacks if v in last_regions]
        narrowing_rows.append(mean(factors))
        area_rows.append(mean(areas))
        violations += auditor.num_violations
    panel.add_series("mean narrowing factor", narrowing_rows)
    panel.add_series("mean feasible area", area_rows)
    assert violations == 0
    return {"a": panel}


def test_ablation_privacy(benchmark, show):
    panels = run_once(benchmark, _run)
    show(panels)
    areas = panels["a"].series_by_label("mean feasible area").values
    factors = panels["a"].series_by_label("mean narrowing factor").values
    # Stricter k leaves the adversary with a larger absolute feasible
    # area, even though linkage always narrows relative to one cloak.
    assert areas[-1] > areas[0]
    assert all(0.0 < f <= 1.0 + 1e-9 for f in factors)
