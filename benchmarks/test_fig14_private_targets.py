"""Regenerates Figure 14 (scalability in private target objects)."""

from benchmarks.conftest import run_once
from repro.evaluation.experiments import run_fig14
from repro.evaluation.experiments.common import active_scale


def test_fig14_private_targets(benchmark, show):
    scale = active_scale()
    panels = run_once(
        benchmark,
        lambda: run_fig14(
            target_counts=scale.target_counts,
            num_users=scale.num_users,
            num_queries=scale.num_queries,
        ),
    )
    show(panels)
    # Paper shape: four filters still shrink the candidate list, but
    # private-data processing makes them the *slowest* variant.
    sizes1 = panels["a"].series_by_label("1 filter").values
    sizes4 = panels["a"].series_by_label("4 filters").values
    assert sizes4[-1] < sizes1[-1]
    t1 = panels["b"].series_by_label("1 filter").values
    t4 = panels["b"].series_by_label("4 filters").values
    assert sum(t4) > sum(t1)
