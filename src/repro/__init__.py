"""Reproduction of *The New Casper: Query Processing for Location
Services without Compromising Privacy* (Mokbel, Chow, Aref; VLDB 2006).

The most common entry points are re-exported here::

    from repro import Casper, MobileClient, PrivacyProfile, Point, Rect

See README.md for a tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for the figure-by-figure reproduction record.
"""

from repro.anonymizer import (
    AdaptiveAnonymizer,
    BasicAnonymizer,
    CloakedRegion,
    PrivacyProfile,
)
from repro.errors import (
    CasperError,
    DuplicateUserError,
    EmptyDatasetError,
    InvalidProfileError,
    OutOfBoundsError,
    ProfileUnsatisfiableError,
    UnknownUserError,
)
from repro.geometry import Point, Rect
from repro.processor import CandidateList
from repro.server import Casper, LocationServer, MobileClient, TransmissionModel

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Casper",
    "MobileClient",
    "LocationServer",
    "TransmissionModel",
    "PrivacyProfile",
    "BasicAnonymizer",
    "AdaptiveAnonymizer",
    "CloakedRegion",
    "CandidateList",
    "Point",
    "Rect",
    "CasperError",
    "UnknownUserError",
    "DuplicateUserError",
    "InvalidProfileError",
    "ProfileUnsatisfiableError",
    "OutOfBoundsError",
    "EmptyDatasetError",
]
