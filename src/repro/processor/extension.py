"""Middle-point and extended-area steps (steps 2-3 of Algorithm 2).

Given the cloaked query area and the per-vertex filter assignment, each
edge :math:`e_{ij}` contributes a maximum distance :math:`max_d =
\\max(d_i, d_j, d_m)`; the area is expanded outward by that amount on the
edge's side.  The resulting rectangle ``A_EXT`` is the minimal search
region whose range query yields an inclusive candidate list (Theorems 1
and 2).

Public data measures point distances; private data measures pessimistic
*max*-distances to the targets' cloaked rectangles, with the middle
point built from the "furthest corner from the reverse vertex" as in
Section 5.2.1.  One engineering strengthening over the paper's text: for
private data we set :math:`d_m` to the max-distance from :math:`m_{ij}`
to the *whole* filter rectangles, not merely to the endpoints of
:math:`L_{ij}`.  The two coincide when the farthest corner seen from
:math:`m_{ij}` is the corner used to build :math:`L_{ij}`, but can
differ for wide rectangles close to the edge; the strengthened bound is
never smaller and keeps the inclusiveness theorem airtight (the
property-based test suite checks it against adversarial placements).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Point, Rect, Segment, bisector_intersection
from repro.processor.filters import VertexFilters
from repro.spatial import SpatialIndex

__all__ = ["EdgeExtension", "compute_extension_public", "compute_extension_private"]


@dataclass(frozen=True, slots=True)
class EdgeExtension:
    """Diagnostic record of one edge's extension computation."""

    direction: str
    d_i: float
    d_j: float
    d_m: float
    middle_point: Point | None

    @property
    def max_d(self) -> float:
        return max(self.d_i, self.d_j, self.d_m)


def _expand(area: Rect, extensions: list[EdgeExtension]) -> Rect:
    amounts = {ext.direction: ext.max_d for ext in extensions}
    return area.expanded(
        left=amounts.get("left", 0.0),
        right=amounts.get("right", 0.0),
        bottom=amounts.get("bottom", 0.0),
        top=amounts.get("top", 0.0),
    )


def compute_extension_public(
    index: SpatialIndex, area: Rect, filters: VertexFilters
) -> tuple[Rect, list[EdgeExtension]]:
    """Compute ``A_EXT`` for public (exact point) target data.

    Returns the extended rectangle and the per-edge diagnostics (used by
    tests and by the examples' step-by-step traces).
    """
    extensions: list[EdgeExtension] = []
    for edge in area.edges():
        oid_i = filters.oid_for(edge.vi)
        oid_j = filters.oid_for(edge.vj)
        t_i = index.rect_of(oid_i).center  # public targets are points
        t_j = index.rect_of(oid_j).center
        d_i = edge.vi.distance_to(t_i)
        d_j = edge.vj.distance_to(t_j)
        if oid_i == oid_j:
            middle, d_m = None, 0.0
        else:
            middle = bisector_intersection(Segment(edge.vi, edge.vj), t_i, t_j)
            if middle is None:
                d_m = 0.0
            else:
                d_m = max(middle.distance_to(t_i), middle.distance_to(t_j))
        extensions.append(EdgeExtension(edge.direction, d_i, d_j, d_m, middle))
    return _expand(area, extensions), extensions


def compute_extension_private(
    index: SpatialIndex, area: Rect, filters: VertexFilters
) -> tuple[Rect, list[EdgeExtension]]:
    """Compute ``A_EXT`` for private (cloaked rectangle) target data."""
    extensions: list[EdgeExtension] = []
    for edge in area.edges():
        oid_i = filters.oid_for(edge.vi)
        oid_j = filters.oid_for(edge.vj)
        rect_i = index.rect_of(oid_i)
        rect_j = index.rect_of(oid_j)
        d_i = rect_i.max_distance_to_point(edge.vi)
        d_j = rect_j.max_distance_to_point(edge.vj)
        if oid_i == oid_j:
            middle, d_m = None, 0.0
        else:
            # L_ij runs between the filters' furthest corners from the
            # *reverse* vertices (Figure 7a).
            end_i = rect_i.farthest_corner_from(edge.vj)
            end_j = rect_j.farthest_corner_from(edge.vi)
            middle = bisector_intersection(Segment(edge.vi, edge.vj), end_i, end_j)
            if middle is None:
                d_m = 0.0
            else:
                d_m = max(
                    rect_i.max_distance_to_point(middle),
                    rect_j.max_distance_to_point(middle),
                )
        extensions.append(EdgeExtension(edge.direction, d_i, d_j, d_m, middle))
    return _expand(area, extensions), extensions
