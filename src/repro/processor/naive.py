"""The two naive strawmen of Figure 4.

* **Center NN** — the server answers with the single target nearest to
  the *center* of the cloaked area.  Minimal transmission, but the
  answer is wrong whenever the user is not at the center (Figure 4b:
  ``T_12`` instead of the true ``T_13``).
* **Ship everything** — the server sends every stored target and lets
  the client pick.  Always exact, never practical (Figure 4c).

Both are benchmarked against Algorithm 2 to reproduce the paper's
motivation, and the center-NN error rate quantifies how much accuracy
the candidate-list approach buys.
"""

from __future__ import annotations

from repro.geometry import Rect
from repro.processor.candidate import CandidateList
from repro.spatial import SpatialIndex

__all__ = ["naive_center_nn", "naive_send_all"]


def naive_center_nn(index: SpatialIndex, cloaked_area: Rect) -> CandidateList:
    """Figure 4b: a single-element "candidate list" — the target nearest
    to the cloaked area's center.  Not inclusive."""
    oid = index.nearest(cloaked_area.center)
    return CandidateList(
        items=((oid, index.rect_of(oid)),),
        search_region=cloaked_area,
        num_filters=0,
    )


def naive_send_all(index: SpatialIndex, cloaked_area: Rect) -> CandidateList:
    """Figure 4c: ship the whole dataset.  Inclusive, maximal."""
    items = tuple(sorted(index.items(), key=lambda item: str(item[0])))
    return CandidateList(items=items, search_region=cloaked_area, num_filters=0)
