"""Density maps over private data.

The paper's introduction motivates traffic-style services ("let me know
if there is congestion within ten minutes of my route"); its second
query class — public queries over private data — generalizes from a
single count (:func:`public_range_count_over_private`) to a whole
*density map*: a grid of expected population per cell, computed from
cloaked regions only.

Under the anonymizer's uniformity guarantee (Section 4.3), each user
contributes to every grid cell the fraction of her cloaked region that
overlaps the cell, so each cell's value is the expected number of users
inside it and the map's mass equals the population inside its bounds.
Pessimistic and optimistic layers bound the truth per cell, exactly as
the scalar count query does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Rect
from repro.spatial import SpatialIndex

__all__ = ["DensityMap", "density_map_over_private"]


@dataclass(frozen=True)
class DensityMap:
    """A gridded population estimate from cloaked data.

    All three layers are ``(resolution, resolution)`` arrays indexed
    ``[ix, iy]`` with ``iy`` growing upward: ``expected`` (probabilistic
    estimate), ``minimum`` (users certainly inside the cell) and
    ``maximum`` (users possibly inside).
    """

    bounds: Rect
    resolution: int
    expected: np.ndarray
    minimum: np.ndarray
    maximum: np.ndarray

    @property
    def total_expected(self) -> float:
        """Mass of the expected layer — the expected number of users
        whose positions fall inside the map bounds."""
        return float(self.expected.sum())

    def cell_rect(self, ix: int, iy: int) -> Rect:
        """Spatial extent of grid cell ``(ix, iy)``."""
        w = self.bounds.width / self.resolution
        h = self.bounds.height / self.resolution
        x0 = self.bounds.x_min + ix * w
        y0 = self.bounds.y_min + iy * h
        return Rect(x0, y0, x0 + w, y0 + h)

    def expected_in(self, region: Rect) -> float:
        """Expected population of an arbitrary sub-region, prorated from
        the grid by cell-overlap area."""
        total = 0.0
        for ix in range(self.resolution):
            for iy in range(self.resolution):
                cell = self.cell_rect(ix, iy)
                overlap = cell.overlap_area(region)
                if overlap > 0.0:
                    total += self.expected[ix, iy] * overlap / cell.area
        return total

    def hotspots(self, count: int = 3) -> list[tuple[Rect, float]]:
        """The ``count`` densest cells, highest expected value first."""
        if count < 1:
            raise ValueError("count must be >= 1")
        flat = [
            (float(self.expected[ix, iy]), ix, iy)
            for ix in range(self.resolution)
            for iy in range(self.resolution)
        ]
        flat.sort(reverse=True)
        return [
            (self.cell_rect(ix, iy), value) for value, ix, iy in flat[:count]
        ]

    def render(self, glyphs: str = " .:-=+*#%@") -> str:
        """ASCII heat map (rows top to bottom)."""
        peak = float(self.expected.max()) or 1.0
        rows = []
        for iy in range(self.resolution - 1, -1, -1):
            row = []
            for ix in range(self.resolution):
                level = self.expected[ix, iy] / peak
                row.append(
                    glyphs[min(int(level * (len(glyphs) - 1)), len(glyphs) - 1)]
                )
            rows.append("".join(row))
        return "\n".join(rows)


def density_map_over_private(
    index: SpatialIndex, bounds: Rect, resolution: int = 16
) -> DensityMap:
    """Build a :class:`DensityMap` from a private (cloaked) store.

    Degenerate (point) regions are assigned to exactly one cell — the
    one the point falls in, border points going to the upper-right cell
    as in the pyramid's point-location rule — so the expected layer never
    double-counts a user.
    """
    if resolution < 1:
        raise ValueError("resolution must be >= 1")
    if bounds.area <= 0:
        raise ValueError("bounds must have positive area")
    expected = np.zeros((resolution, resolution))
    minimum = np.zeros((resolution, resolution), dtype=np.int64)
    maximum = np.zeros((resolution, resolution), dtype=np.int64)
    cell_w = bounds.width / resolution
    cell_h = bounds.height / resolution

    def clamp(idx: int) -> int:
        return min(max(idx, 0), resolution - 1)

    for _oid, region in index.items():
        if region.is_degenerate():
            p = region.center
            if not bounds.contains_point(p):
                continue
            ix = clamp(int((p.x - bounds.x_min) / cell_w))
            iy = clamp(int((p.y - bounds.y_min) / cell_h))
            expected[ix, iy] += 1.0
            minimum[ix, iy] += 1
            maximum[ix, iy] += 1
            continue
        ix0 = clamp(int((region.x_min - bounds.x_min) / cell_w))
        ix1 = clamp(int(np.ceil((region.x_max - bounds.x_min) / cell_w)) - 1)
        iy0 = clamp(int((region.y_min - bounds.y_min) / cell_h))
        iy1 = clamp(int(np.ceil((region.y_max - bounds.y_min) / cell_h)) - 1)
        for ix in range(ix0, ix1 + 1):
            for iy in range(iy0, iy1 + 1):
                cell = Rect(
                    bounds.x_min + ix * cell_w,
                    bounds.y_min + iy * cell_h,
                    bounds.x_min + (ix + 1) * cell_w,
                    bounds.y_min + (iy + 1) * cell_h,
                )
                fraction = region.overlap_fraction(cell)
                if fraction > 0.0:
                    expected[ix, iy] += fraction
                    maximum[ix, iy] += 1
                    if cell.contains_rect(region):
                        minimum[ix, iy] += 1
    return DensityMap(
        bounds=bounds,
        resolution=resolution,
        expected=expected,
        minimum=minimum,
        maximum=maximum,
    )
