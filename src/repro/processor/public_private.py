"""Public queries over private data (Section 5's second query type).

"How many cars in this area?" — the query region is exact (a public
administrator issued it) but the data are cloaked regions, so the server
can only bound or estimate the answer.  The paper treats this as the
special case of private-over-private where the query area is known
exactly; the interesting output is the aggregate.

Under the anonymizer's uniformity guarantee (Section 4.3: a user is
uniformly distributed over her cloaked region), the *expected* count is
the sum of overlap fractions — the standard estimator of the
probabilistic-query literature the paper cites [10, 11, 28].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Rect
from repro.spatial import SpatialIndex

__all__ = ["RangeCountResult", "public_range_count_over_private"]


@dataclass(frozen=True)
class RangeCountResult:
    """The server's answer to a public count query over cloaked data.

    ``minimum`` counts users certainly inside (cloaked region fully
    contained); ``maximum`` counts users possibly inside (any overlap);
    ``expected`` is the probabilistic estimate in between.
    """

    region: Rect
    minimum: int
    maximum: int
    expected: float
    candidates: tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.minimum <= self.expected <= self.maximum:
            raise ValueError(
                f"inconsistent bounds: {self.minimum} <= {self.expected} "
                f"<= {self.maximum} violated"
            )


def public_range_count_over_private(
    index: SpatialIndex, region: Rect
) -> RangeCountResult:
    """Count (with uncertainty) the private objects inside ``region``."""
    overlapping = index.range_search(region)
    minimum = 0
    expected = 0.0
    for oid in overlapping:
        rect = index.rect_of(oid)
        fraction = rect.overlap_fraction(region)
        expected += fraction
        if region.contains_rect(rect):
            minimum += 1
    # Guard the dataclass invariant against float rounding.
    expected = min(max(expected, float(minimum)), float(len(overlapping)))
    return RangeCountResult(
        region=region,
        minimum=minimum,
        maximum=len(overlapping),
        expected=expected,
        candidates=tuple(sorted(overlapping, key=str)),
    )
