"""Private k-nearest-neighbor queries — the paper's "straightforward
extension" of Algorithm 2 to kNN, made concrete.

For a cloaked area ``A`` and ``k > 1``, the candidate list must contain
the true k nearest targets of *every* possible user position in ``A``.
The construction generalises the filter idea with a triangle-inequality
bound:

for an anchor point ``v`` (a vertex of ``A`` or its center), let
:math:`d_v^k` be the distance from ``v`` to its k-th nearest target.
The k targets nearest ``v`` all lie within :math:`d_v^k` of ``v``, so
for any user position ``p`` the k-th NN distance of ``p`` is at most
:math:`|p - v| + d_v^k` — there are k targets at least that close.  Any
member of ``p``'s true kNN set therefore lies within

.. math:: r(p) = \\min_{v} (|p - v| + d_v^k)

of ``p``.  Expanding each edge of ``A`` outward by
:math:`\\max_{p \\in edge} r(p)` yields an inclusive search region; for
the vertex-anchored (4-filter) variant that maximum is attained where
the two endpoint cones meet, at parameter
:math:`t^* = (L + d_j^k - d_i^k) / 2L` along the edge (clamped to
``[0, 1]``).

With ``k = 1`` this bound is slightly more conservative than Algorithm
2's perpendicular-bisector construction (it does not exploit knowing
*which* target is the filter), trading a modestly larger ``A_EXT`` for
a bound that generalises to any k.  The private-data variant replaces
point distances with pessimistic max-distances throughout, exactly as
Section 5.2 does for the k = 1 case.
"""

from __future__ import annotations

from repro.errors import EmptyDatasetError
from repro.geometry import Point, Rect
from repro.observability import runtime as _telemetry
from repro.processor.candidate import CandidateList
from repro.processor.probabilistic import OverlapPolicy
from repro.spatial import SpatialIndex

__all__ = ["private_knn_over_public", "private_knn_over_private"]


def _kth_distance_public(index: SpatialIndex, anchor: Point, k: int) -> float:
    """Distance from ``anchor`` to its k-th nearest (point) target."""
    nearest = index.k_nearest(anchor, k)
    return index.rect_of(nearest[-1]).min_distance_to_point(anchor)


def _kth_distance_private(index: SpatialIndex, anchor: Point, k: int) -> float:
    """The k-th smallest pessimistic (max) distance from ``anchor`` to a
    cloaked target region.

    Delegates to the index's pruned branch-and-bound search instead of
    sorting every target: the R-tree/quadtree visit only the subtrees
    whose MBR lower bound beats the running k-th best, so the four
    anchor evaluations per query stop scaling with the dataset size.
    """
    kth = index.k_nearest_by_max_distance(anchor, k)[-1]
    return index.rect_of(kth).max_distance_to_point(anchor)


def _edge_expansion(length: float, d_i: float, d_j: float) -> float:
    """Max over the edge of ``min(t L + d_i, (1 - t) L + d_j)``.

    The two cones cross at ``t* = (L + d_j - d_i) / 2L``; clamped to the
    segment, the maximum of the lower envelope is the cone value there.
    """
    if length <= 0.0:
        return max(d_i, d_j)
    t_star = (length + d_j - d_i) / (2.0 * length)
    t_star = min(max(t_star, 0.0), 1.0)
    return min(t_star * length + d_i, (1.0 - t_star) * length + d_j)


def _extended_region(
    area: Rect, kth_distance, num_filters: int, k: int
) -> Rect:
    """Build ``A_EXT`` from a ``kth_distance(anchor)`` oracle."""
    if num_filters not in (1, 4):
        raise ValueError("kNN queries support num_filters of 1 or 4")
    if k < 1:
        raise ValueError("k must be >= 1")
    if num_filters == 1:
        d_c = kth_distance(area.center)
        # r(p) <= |p - center| + d_c; per edge the max is at the farther
        # endpoint of the edge from the center.
        amounts = {}
        for edge in area.edges():
            reach = max(
                edge.vi.distance_to(area.center), edge.vj.distance_to(area.center)
            )
            amounts[edge.direction] = reach + d_c
    else:
        d_of = {v: kth_distance(v) for v in area.vertices()}
        amounts = {}
        for edge in area.edges():
            amounts[edge.direction] = _edge_expansion(
                edge.length(), d_of[edge.vi], d_of[edge.vj]
            )
    return area.expanded(
        left=amounts.get("left", 0.0),
        right=amounts.get("right", 0.0),
        bottom=amounts.get("bottom", 0.0),
        top=amounts.get("top", 0.0),
    )


def private_knn_over_public(
    index: SpatialIndex, cloaked_area: Rect, k: int, num_filters: int = 4
) -> CandidateList:
    """Candidates for "what are my k nearest public targets?".

    Inclusive for every user position in ``cloaked_area``; the client
    refines with :meth:`CandidateList.refine_k_nearest`.
    """
    if len(index) == 0:
        raise EmptyDatasetError("no target objects stored")
    k = min(k, len(index))
    with _telemetry.phase_scope("extension", "public"):
        a_ext = _extended_region(
            cloaked_area, lambda v: _kth_distance_public(index, v, k), num_filters, k
        )
    with _telemetry.phase_scope("candidates", "public"):
        items = tuple(
            sorted(
                ((oid, index.rect_of(oid)) for oid in index.range_search(a_ext)),
                key=lambda item: str(item[0]),
            )
        )
    _telemetry.note_candidates(len(items))
    return CandidateList(items=items, search_region=a_ext, num_filters=num_filters)


def private_knn_over_private(
    index: SpatialIndex,
    cloaked_area: Rect,
    k: int,
    num_filters: int = 4,
    policy: OverlapPolicy | None = None,
) -> CandidateList:
    """Candidates for "who are my k nearest private users?"."""
    if len(index) == 0:
        raise EmptyDatasetError("no target objects stored")
    k = min(k, len(index))
    with _telemetry.phase_scope("extension", "private"):
        a_ext = _extended_region(
            cloaked_area, lambda v: _kth_distance_private(index, v, k), num_filters, k
        )
    with _telemetry.phase_scope("candidates", "private"):
        candidates = [(oid, index.rect_of(oid)) for oid in index.range_search(a_ext)]
        if policy is not None:
            candidates = [
                (oid, rect) for oid, rect in candidates if policy.admits(rect, a_ext)
            ]
        items = tuple(sorted(candidates, key=lambda item: str(item[0])))
    _telemetry.note_candidates(len(items))
    return CandidateList(items=items, search_region=a_ext, num_filters=num_filters)
