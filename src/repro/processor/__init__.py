"""The privacy-aware query processor (Section 5).

Supports the paper's three novel query types:

* private NN / range queries over public data
  (:func:`private_nn_over_public`, :func:`private_range_over_public`);
* private NN / range queries over private data
  (:func:`private_nn_over_private`, :func:`private_range_over_private`);
* public queries over private data
  (:func:`public_range_count_over_private`).

All of them work on any :class:`~repro.spatial.SpatialIndex` and return
candidate lists that are inclusive and minimal.
"""

from repro.processor.batch import BatchQueryEngine, BatchRequest
from repro.processor.candidate import CandidateList
from repro.processor.density import DensityMap, density_map_over_private
from repro.processor.extension import (
    EdgeExtension,
    compute_extension_private,
    compute_extension_public,
)
from repro.processor.filters import (
    VertexFilters,
    select_filters_private,
    select_filters_public,
)
from repro.processor.knn import (
    private_knn_over_private,
    private_knn_over_public,
)
from repro.processor.naive import naive_center_nn, naive_send_all
from repro.processor.safe_region import (
    SafeRegionResult,
    default_margin,
    private_knn_with_validity,
)
from repro.processor.nn_private import private_nn_over_private
from repro.processor.nn_public import private_nn_over_public
from repro.processor.probabilistic import (
    AnyOverlap,
    ContainmentOnly,
    FractionOverlap,
    OverlapPolicy,
)
from repro.processor.public_private import (
    RangeCountResult,
    public_range_count_over_private,
)
from repro.processor.uncertain_nn import UncertainNNResult, public_nn_over_private
from repro.processor.range_queries import (
    private_range_over_private,
    private_range_over_public,
)

__all__ = [
    "BatchQueryEngine",
    "BatchRequest",
    "CandidateList",
    "EdgeExtension",
    "VertexFilters",
    "compute_extension_private",
    "compute_extension_public",
    "select_filters_private",
    "select_filters_public",
    "private_nn_over_public",
    "private_nn_over_private",
    "private_knn_over_public",
    "private_knn_over_private",
    "private_knn_with_validity",
    "SafeRegionResult",
    "default_margin",
    "private_range_over_public",
    "private_range_over_private",
    "public_range_count_over_private",
    "public_nn_over_private",
    "UncertainNNResult",
    "RangeCountResult",
    "DensityMap",
    "density_map_over_private",
    "naive_center_nn",
    "naive_send_all",
    "OverlapPolicy",
    "AnyOverlap",
    "FractionOverlap",
    "ContainmentOnly",
]
