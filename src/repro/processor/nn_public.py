"""Private nearest-neighbor queries over public data (Section 5.1).

"Where is my nearest gas station?" — the querying user is cloaked, the
targets are exact points.  Algorithm 2: select filters, build the middle
points, expand to ``A_EXT``, range-query, ship the candidate list.
"""

from __future__ import annotations

from repro.geometry import Rect
from repro.observability import runtime as _telemetry
from repro.processor.candidate import CandidateList
from repro.processor.extension import compute_extension_public
from repro.processor.filters import select_filters_public
from repro.spatial import SpatialIndex

__all__ = ["private_nn_over_public"]


def private_nn_over_public(
    index: SpatialIndex, cloaked_area: Rect, num_filters: int = 4
) -> CandidateList:
    """Answer a private NN query over public target data.

    Parameters
    ----------
    index:
        The server's target index (exact point entries).
    cloaked_area:
        The query region produced by the location anonymizer.
    num_filters:
        1, 2 or 4 filter targets (Section 6.2's three variants).

    Returns the inclusive, minimal candidate list of Theorems 1-2.
    """
    with _telemetry.phase_scope("filter_selection", "public"):
        filters = select_filters_public(index, cloaked_area, num_filters)
    with _telemetry.phase_scope("extension", "public"):
        a_ext, _extensions = compute_extension_public(index, cloaked_area, filters)
    with _telemetry.phase_scope("candidates", "public"):
        items = tuple(
            sorted(
                ((oid, index.rect_of(oid)) for oid in index.range_search(a_ext)),
                key=lambda item: str(item[0]),
            )
        )
    _telemetry.note_candidates(len(items))
    return CandidateList(
        items=items,
        search_region=a_ext,
        num_filters=num_filters,
        filters=filters.distinct_oids(),
    )
