"""Candidate lists — the privacy-aware query processor's answer format.

Because the server never sees exact locations, it cannot return "the"
nearest neighbor; instead it returns a *candidate list* guaranteed to
contain the exact answer (inclusiveness, Theorems 1 and 3) while being
as small as the chosen filters allow (minimality, Theorems 2 and 4).
The client evaluates the query locally over the candidate list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Point, Rect
from repro.utils.units import transmission_seconds

__all__ = ["CandidateList"]


@dataclass(frozen=True)
class CandidateList:
    """The server's answer to a private query.

    Attributes
    ----------
    items:
        ``(oid, rect)`` pairs; for public targets the rects are
        degenerate (exact points), for private targets they are the
        targets' cloaked regions.
    search_region:
        The extended area ``A_EXT`` whose range query produced the items.
    num_filters:
        How many filter targets were used (1, 2 or 4).
    filters:
        The filter target oids selected in step 1 of Algorithm 2.
    """

    items: tuple[tuple[object, Rect], ...]
    search_region: Rect
    num_filters: int
    filters: tuple[object, ...] = ()

    def __len__(self) -> int:
        return len(self.items)

    def __contains__(self, oid: object) -> bool:
        return any(item_oid == oid for item_oid, _rect in self.items)

    def oids(self) -> list[object]:
        """The candidate object ids."""
        return [oid for oid, _rect in self.items]

    # ------------------------------------------------------------------
    # Client-side local evaluation
    # ------------------------------------------------------------------
    def refine_nearest(self, location: Point, by: str = "min") -> object:
        """The client's local step: evaluate the NN query exactly.

        ``location`` is the client's private exact position, which never
        left the client.  ``by`` selects the ranking distance for cloaked
        (private-data) candidates: ``"min"`` (optimistic), ``"max"``
        (pessimistic) or ``"center"``.  For public point data all three
        coincide.
        """
        if not self.items:
            raise ValueError("cannot refine an empty candidate list")
        if by == "min":
            key = lambda item: item[1].min_distance_to_point(location)  # noqa: E731
        elif by == "max":
            key = lambda item: item[1].max_distance_to_point(location)  # noqa: E731
        elif by == "center":
            key = lambda item: item[1].center.distance_to(location)  # noqa: E731
        else:
            raise ValueError(f"unknown ranking {by!r}")
        return min(self.items, key=key)[0]

    def refine_k_nearest(
        self, location: Point, k: int, by: str = "min"
    ) -> list[object]:
        """Local refinement of a kNN query: the k candidates nearest to
        the client's exact position, nearest first."""
        if k < 1:
            raise ValueError("k must be >= 1")
        if not self.items:
            raise ValueError("cannot refine an empty candidate list")
        if by == "min":
            key = lambda item: item[1].min_distance_to_point(location)  # noqa: E731
        elif by == "max":
            key = lambda item: item[1].max_distance_to_point(location)  # noqa: E731
        elif by == "center":
            key = lambda item: item[1].center.distance_to(location)  # noqa: E731
        else:
            raise ValueError(f"unknown ranking {by!r}")
        ranked = sorted(self.items, key=key)
        return [oid for oid, _rect in ranked[:k]]

    def refine_within(self, location: Point, radius: float) -> list[object]:
        """Local refinement of a range query: candidates whose region
        could lie within ``radius`` of the client."""
        return [
            oid
            for oid, rect in self.items
            if rect.min_distance_to_point(location) <= radius
        ]

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def transmission_time(
        self, record_bytes: int = 64, bandwidth_mbps: float = 100.0
    ) -> float:
        """Seconds to ship this list to the client under the paper's
        Figure 17 model (64-byte records over 100 Mbps)."""
        return transmission_seconds(len(self.items), record_bytes, bandwidth_mbps)
