"""Public NN queries over private data (uncertain nearest neighbor).

Completes the query-type matrix of Section 5: an administrator with an
*exact* query point asks "which mobile user is nearest to this
incident?" while the users are stored only as cloaked regions.  No
single answer exists; the server returns the set of users who *could*
be nearest — the classic possible-NN candidate set of the uncertain-
data literature the paper composes with [10, 11, 28] — plus, under the
anonymizer's uniformity guarantee, a simple membership probability
estimate.

A user ``u`` can be the nearest iff ``mindist(q, R_u)`` does not exceed
the smallest ``maxdist(q, R_v)`` over all users ``v`` — somebody is
certainly within that pessimistic bound, so anyone who cannot beat it
is out.  This set is inclusive (the true NN always qualifies) and
minimal against the min/max distance bounds (for any qualifying user
there exist placements making it the nearest).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EmptyDatasetError
from repro.geometry import Point, Rect
from repro.spatial import SpatialIndex
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["UncertainNNResult", "public_nn_over_private"]


@dataclass(frozen=True)
class UncertainNNResult:
    """Possible nearest neighbors of an exact query point.

    ``candidates`` maps each possible-NN oid to its cloaked region;
    ``probabilities`` (present when estimated) maps oids to Monte-Carlo
    estimates of being the true NN under uniform placements.
    """

    query: Point
    candidates: tuple[tuple[object, Rect], ...]
    threshold: float
    probabilities: dict[object, float] | None = None

    def __len__(self) -> int:
        return len(self.candidates)

    def oids(self) -> list[object]:
        return [oid for oid, _rect in self.candidates]

    def most_likely(self) -> object:
        """The candidate with the highest estimated probability (or the
        smallest pessimistic distance when no estimate was made)."""
        if self.probabilities:
            return max(self.probabilities, key=self.probabilities.get)
        return min(
            self.candidates,
            key=lambda item: item[1].max_distance_to_point(self.query),
        )[0]


def public_nn_over_private(
    index: SpatialIndex,
    query: Point,
    estimate_probabilities: bool = False,
    samples: int = 200,
    seed: SeedLike = 0,
) -> UncertainNNResult:
    """Possible-NN set for an exact query point over cloaked data.

    With ``estimate_probabilities`` the server also Monte-Carlo samples
    uniform placements inside the candidate regions to estimate each
    candidate's chance of being the true NN (probabilities sum to 1).
    """
    if len(index) == 0:
        raise EmptyDatasetError("no private objects stored")
    # The pessimistic champion: somebody is certainly within this radius.
    champion = index.nearest_by_max_distance(query)
    threshold = index.rect_of(champion).max_distance_to_point(query)
    # Possible NNs: everyone whose region could beat the champion bound.
    # Their regions all intersect the disc of radius `threshold`; probe
    # with its bounding box, then filter exactly.
    probe = Rect(
        query.x - threshold,
        query.y - threshold,
        query.x + threshold,
        query.y + threshold,
    )
    candidates = sorted(
        (
            (oid, index.rect_of(oid))
            for oid in index.range_search(probe)
            if index.rect_of(oid).min_distance_to_point(query) <= threshold + 1e-12
        ),
        key=lambda item: str(item[0]),
    )
    probabilities = None
    if estimate_probabilities:
        if samples < 1:
            raise ValueError("samples must be >= 1")
        rng = ensure_rng(seed)
        wins = {oid: 0 for oid, _rect in candidates}
        for _ in range(samples):
            best_oid = None
            best_dist = float("inf")
            for oid, rect in candidates:
                p = Point(
                    float(rng.uniform(rect.x_min, rect.x_max))
                    if rect.width > 0
                    else rect.x_min,
                    float(rng.uniform(rect.y_min, rect.y_max))
                    if rect.height > 0
                    else rect.y_min,
                )
                dist = p.distance_to(query)
                if dist < best_dist:
                    best_dist = dist
                    best_oid = oid
            wins[best_oid] += 1
        probabilities = {oid: count / samples for oid, count in wins.items()}
    return UncertainNNResult(
        query=query,
        candidates=tuple(candidates),
        threshold=threshold,
        probabilities=probabilities,
    )
