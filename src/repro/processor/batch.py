"""Batched execution of privacy-aware queries.

Under grid-based cloaking many concurrent queries arrive with the *same*
cloaked area — every user sharing a pyramid cell and profile cloaks to
an identical rectangle — and Algorithm 2 spends most of its time on
per-area work (filter selection and ``A_EXT`` construction) that does
not depend on which user asked.  :class:`BatchQueryEngine` exploits
this: it accepts many requests at once, answers each *distinct* request
exactly once, shares the filter/extension computation between requests
that differ only in their final candidate step (e.g. the same cloaked
area under different overlap policies), and fans the resulting frozen
:class:`~repro.processor.candidate.CandidateList` objects back out in
request order.

Results are item-for-item identical to the corresponding per-query
functions (``private_nn_over_*``, ``private_knn_over_*``,
``private_range_over_*``); the batch layer changes only how often the
shared work runs.

This engine is the downstream half of the per-tick batch pipeline: a
tick of moves enters through the anonymizer's batched update kernel
(:meth:`repro.server.casper.Casper.update_locations`, vectorized on the
numpy backend — see ``docs/vectorization.md``), and the dirty queries it
produces drain through :meth:`BatchQueryEngine.run` at the continuous
monitor's flush, where movers sharing a cloaked cell collapse to one
execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import EmptyDatasetError
from repro.geometry import Rect
from repro.observability import runtime as _telemetry
from repro.processor.candidate import CandidateList
from repro.processor.extension import (
    compute_extension_private,
    compute_extension_public,
)
from repro.processor.filters import (
    VertexFilters,
    select_filters_private,
    select_filters_public,
)
from repro.processor.knn import (
    _extended_region,
    _kth_distance_private,
    _kth_distance_public,
)
from repro.processor.probabilistic import OverlapPolicy
from repro.spatial import SpatialIndex
from repro.utils.timer import monotonic

__all__ = ["BatchRequest", "BatchQueryEngine", "QUERY_TYPES"]

QUERY_TYPES = (
    "nn_public",
    "nn_private",
    "knn_public",
    "knn_private",
    "range_public",
    "range_private",
)


@dataclass(frozen=True)
class BatchRequest:
    """One query in a batch.

    ``query_type`` selects the per-query function the request is
    equivalent to; ``k`` applies to the kNN types, ``radius`` to the
    range types, and ``policy`` to the private-data types.  The class is
    frozen (and :class:`~repro.geometry.Rect` / the overlap policies are
    frozen dataclasses), so a request is its own deduplication key.
    """

    query_type: str
    cloaked_area: Rect
    k: int = 1
    num_filters: int = 4
    radius: float = 0.0
    policy: OverlapPolicy | None = None

    def __post_init__(self) -> None:
        if self.query_type not in QUERY_TYPES:
            raise ValueError(
                f"query_type must be one of {QUERY_TYPES}, got {self.query_type!r}"
            )
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.radius < 0:
            raise ValueError("radius must be non-negative")


class BatchQueryEngine:
    """Deduplicating executor for privacy-aware query batches.

    The engine holds only references to the server's two indexes; all
    memoization is scoped to a single :meth:`run` call, so interleaved
    index mutations between runs can never serve stale answers.
    """

    def __init__(
        self,
        public_index: SpatialIndex | None = None,
        private_index: SpatialIndex | None = None,
    ) -> None:
        self.public_index = public_index
        self.private_index = private_index
        # Cumulative counters for observability / benchmarks.
        self.requests_seen = 0
        self.requests_computed = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, requests: Sequence[BatchRequest]) -> list[CandidateList]:
        """Answer every request; returns candidate lists in request
        order.  Identical requests share one computation (and one frozen
        ``CandidateList`` instance)."""
        obs = _telemetry.active()
        start = monotonic() if obs is not None else 0.0
        computed_before = self.requests_computed
        results: dict[BatchRequest, CandidateList] = {}
        # Per-run memos for the shareable stages of Algorithm 2.  Keyed
        # by (cloaked area, num_filters[, k]); valid only within this
        # run because the indexes may mutate between runs.
        filters_memo: dict[tuple, VertexFilters] = {}
        ext_memo: dict[tuple, Rect] = {}
        out: list[CandidateList] = []
        for request in requests:
            self.requests_seen += 1
            cached = results.get(request)
            if cached is None:
                self.requests_computed += 1
                cached = self._execute(request, filters_memo, ext_memo)
                results[request] = cached
            out.append(cached)
        if obs is not None:
            _telemetry.record_batch(
                obs,
                size=len(out),
                computed=self.requests_computed - computed_before,
                seconds=monotonic() - start,
            )
        return out

    @property
    def dedup_rate(self) -> float:
        """Fraction of requests answered without recomputation."""
        if not self.requests_seen:
            return 0.0
        return 1.0 - self.requests_computed / self.requests_seen

    # ------------------------------------------------------------------
    # Per-request execution with shared stages
    # ------------------------------------------------------------------
    def _index_for(self, request: BatchRequest) -> SpatialIndex:
        index = (
            self.public_index
            if request.query_type.endswith("public")
            else self.private_index
        )
        if index is None:
            raise ValueError(
                f"engine has no index for query type {request.query_type!r}"
            )
        return index

    def _execute(
        self,
        request: BatchRequest,
        filters_memo: dict[tuple, VertexFilters],
        ext_memo: dict[tuple, Rect],
    ) -> CandidateList:
        index = self._index_for(request)
        kind = request.query_type
        area = request.cloaked_area
        if kind == "range_public":
            a_ext = area.expanded_uniform(request.radius)
            return self._collect(index, a_ext, None, 0, None)
        if kind == "range_private":
            a_ext = area.expanded_uniform(request.radius)
            return self._collect(index, a_ext, request.policy, 0, None)
        if kind in ("nn_public", "nn_private"):
            private = kind == "nn_private"
            key = (kind, area, request.num_filters)
            filters = filters_memo.get(key)
            if filters is None:
                select = select_filters_private if private else select_filters_public
                filters = select(index, area, request.num_filters)
                filters_memo[key] = filters
            a_ext = ext_memo.get(key)
            if a_ext is None:
                extend = (
                    compute_extension_private if private else compute_extension_public
                )
                a_ext, _extensions = extend(index, area, filters)
                ext_memo[key] = a_ext
            policy = request.policy if private else None
            return self._collect(
                index, a_ext, policy, request.num_filters, filters.distinct_oids()
            )
        # kNN types: the extension comes from the k-th anchor distances;
        # no filter assignment is attached to the result (matching
        # private_knn_over_*).
        private = kind == "knn_private"
        if len(index) == 0:
            raise EmptyDatasetError("no target objects stored")
        k = min(request.k, len(index))
        key = (kind, area, request.num_filters, k)
        a_ext = ext_memo.get(key)
        if a_ext is None:
            kth = _kth_distance_private if private else _kth_distance_public
            a_ext = _extended_region(
                area, lambda v: kth(index, v, k), request.num_filters, k
            )
            ext_memo[key] = a_ext
        policy = request.policy if private else None
        return self._collect(index, a_ext, policy, request.num_filters, None)

    @staticmethod
    def _collect(
        index: SpatialIndex,
        a_ext: Rect,
        policy: OverlapPolicy | None,
        num_filters: int,
        filter_oids: tuple | None,
    ) -> CandidateList:
        candidates = [(oid, index.rect_of(oid)) for oid in index.range_search(a_ext)]
        if policy is not None:
            candidates = [
                (oid, rect) for oid, rect in candidates if policy.admits(rect, a_ext)
            ]
        items = tuple(sorted(candidates, key=lambda item: str(item[0])))
        _telemetry.note_candidates(len(items))
        if filter_oids is None:
            return CandidateList(
                items=items, search_region=a_ext, num_filters=num_filters
            )
        return CandidateList(
            items=items,
            search_region=a_ext,
            num_filters=num_filters,
            filters=filter_oids,
        )
