"""Filter selection — step 1 of Algorithm 2.

The *filter* targets prune the search for candidates: each vertex of the
cloaked query area is assigned a filter target whose distance bounds how
far a better answer could possibly be.  Section 6.2 evaluates three
variants:

* **4 filters** — the nearest target to each of the four vertices
  (Algorithm 2 as written);
* **2 filters** — the nearest targets to two opposite corners; the other
  two vertices adopt whichever of the two is closer to them;
* **1 filter** — the nearest target to the *center* of the cloaked area;
  all four vertices share it.

For private (cloaked) target data the "distance to a target" is the
pessimistic max-distance to the target's region — the furthest-corner
rule of Section 5.2.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EmptyDatasetError
from repro.geometry import Point, Rect
from repro.spatial import SpatialIndex

__all__ = ["VertexFilters", "select_filters_public", "select_filters_private"]

VALID_FILTER_COUNTS = (1, 2, 4)


@dataclass(frozen=True)
class VertexFilters:
    """The filter assignment for the four vertices ``(v1, v2, v3, v4)``.

    ``assignment`` maps each vertex to the oid of its filter target;
    ``num_filters`` is the number of *distinct* filter selections that
    were computed (1, 2 or 4 — distinct oids may still coincide when the
    same target is nearest to several vertices, exactly as in the paper's
    ``t_i = t_j`` case).
    """

    assignment: dict[Point, object]
    num_filters: int

    def oid_for(self, vertex: Point) -> object:
        return self.assignment[vertex]

    def distinct_oids(self) -> tuple[object, ...]:
        seen: list[object] = []
        for oid in self.assignment.values():
            if oid not in seen:
                seen.append(oid)
        return tuple(seen)


def _require_valid(index: SpatialIndex, num_filters: int) -> None:
    if num_filters not in VALID_FILTER_COUNTS:
        raise ValueError(f"num_filters must be one of {VALID_FILTER_COUNTS}")
    if len(index) == 0:
        raise EmptyDatasetError("no target objects stored")


def select_filters_public(
    index: SpatialIndex, area: Rect, num_filters: int = 4
) -> VertexFilters:
    """Assign filter targets for *public* (exact point) target data."""
    _require_valid(index, num_filters)
    v1, v2, v3, v4 = area.vertices()
    if num_filters == 4:
        assignment = {v: index.nearest(v) for v in (v1, v2, v3, v4)}
    elif num_filters == 2:
        # Two reverse corners: top-left (v1) and bottom-right (v4).
        t1 = index.nearest(v1)
        t4 = index.nearest(v4)
        assignment = {v1: t1, v4: t4}
        for v in (v2, v3):
            d1 = index.rect_of(t1).min_distance_to_point(v)
            d4 = index.rect_of(t4).min_distance_to_point(v)
            assignment[v] = t1 if d1 <= d4 else t4
    else:  # 1 filter: nearest to the center, shared by all vertices.
        t = index.nearest(area.center)
        assignment = {v: t for v in (v1, v2, v3, v4)}
    return VertexFilters(assignment, num_filters)


def select_filters_private(
    index: SpatialIndex, area: Rect, num_filters: int = 4
) -> VertexFilters:
    """Assign filter targets for *private* (cloaked rectangle) data.

    Per Section 5.2.1 the distance from a vertex to a candidate target is
    measured to the target's *furthest corner* — the pessimistic position
    — so the filter is the target minimising the max-distance.  Each
    anchor resolves through the index's pruned branch-and-bound search
    (:meth:`~repro.spatial.SpatialIndex.k_nearest_by_max_distance`)
    rather than a scan over every stored region.
    """
    _require_valid(index, num_filters)

    def pessimistic_nn(anchor: Point) -> object:
        return index.k_nearest_by_max_distance(anchor, 1)[0]

    v1, v2, v3, v4 = area.vertices()
    if num_filters == 4:
        assignment = {v: pessimistic_nn(v) for v in (v1, v2, v3, v4)}
    elif num_filters == 2:
        t1 = pessimistic_nn(v1)
        t4 = pessimistic_nn(v4)
        assignment = {v1: t1, v4: t4}
        for v in (v2, v3):
            d1 = index.rect_of(t1).max_distance_to_point(v)
            d4 = index.rect_of(t4).max_distance_to_point(v)
            assignment[v] = t1 if d1 <= d4 else t4
    else:
        t = pessimistic_nn(area.center)
        assignment = {v: t for v in (v1, v2, v3, v4)}
    return VertexFilters(assignment, num_filters)
