"""Private range queries (the paper's "straightforward extension").

A private range query asks for all targets within distance ``radius`` of
the (hidden) user.  Because the user may be anywhere inside the cloaked
area ``A``, the inclusive search region is the Minkowski expansion of
``A`` by ``radius`` — every target that could be within range of *some*
position in ``A`` lies there, and any smaller axis-aligned region would
miss an admissible placement, the same inclusive/minimal structure as
the NN algorithm.  The client refines locally with its exact position.
"""

from __future__ import annotations

from repro.geometry import Rect
from repro.observability import runtime as _telemetry
from repro.processor.candidate import CandidateList
from repro.processor.probabilistic import OverlapPolicy
from repro.spatial import SpatialIndex

__all__ = ["private_range_over_public", "private_range_over_private"]


def _validated(radius: float) -> float:
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return radius


def private_range_over_public(
    index: SpatialIndex, cloaked_area: Rect, radius: float
) -> CandidateList:
    """Candidates for "all public targets within ``radius`` of me"."""
    a_ext = cloaked_area.expanded_uniform(_validated(radius))
    with _telemetry.phase_scope("candidates", "public"):
        items = tuple(
            sorted(
                ((oid, index.rect_of(oid)) for oid in index.range_search(a_ext)),
                key=lambda item: str(item[0]),
            )
        )
    _telemetry.note_candidates(len(items))
    return CandidateList(items=items, search_region=a_ext, num_filters=0)


def private_range_over_private(
    index: SpatialIndex,
    cloaked_area: Rect,
    radius: float,
    policy: OverlapPolicy | None = None,
) -> CandidateList:
    """Candidates for "all private targets within ``radius`` of me"."""
    a_ext = cloaked_area.expanded_uniform(_validated(radius))
    with _telemetry.phase_scope("candidates", "private"):
        candidates = [(oid, index.rect_of(oid)) for oid in index.range_search(a_ext)]
        if policy is not None:
            candidates = [
                (oid, rect) for oid, rect in candidates if policy.admits(rect, a_ext)
            ]
        items = tuple(sorted(candidates, key=lambda item: str(item[0])))
    _telemetry.note_candidates(len(items))
    return CandidateList(items=items, search_region=a_ext, num_filters=0)
