"""Probabilistic candidate policies for cloaked target data.

Section 5.2.1 (step 4) notes that instead of returning every target
whose cloaked area merely touches ``A_EXT``, the server "may choose to
return only those target objects that have more than x% of their cloaked
areas overlap with A_EXT", and that the framework composes with any
probabilistic query-processing scheme.  These policies implement that
pluggable decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Rect

__all__ = ["OverlapPolicy", "AnyOverlap", "FractionOverlap", "ContainmentOnly"]


class OverlapPolicy:
    """Decides whether a cloaked target belongs in the candidate list."""

    def admits(self, target: Rect, search_region: Rect) -> bool:
        raise NotImplementedError

    def inclusion_probability(self, target: Rect, search_region: Rect) -> float:
        """Probability the target's true location lies inside the search
        region, under the anonymizer's uniformity guarantee (Section 4.3:
        the location is uniform over the cloaked region)."""
        return target.overlap_fraction(search_region)


@dataclass(frozen=True)
class AnyOverlap(OverlapPolicy):
    """The inclusive default: any intersection admits the target."""

    def admits(self, target: Rect, search_region: Rect) -> bool:
        return target.intersects(search_region)


@dataclass(frozen=True)
class FractionOverlap(OverlapPolicy):
    """Admit targets with at least ``threshold`` of their area inside
    the search region (the paper's x% rule).  ``threshold`` in (0, 1]."""

    threshold: float

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")

    def admits(self, target: Rect, search_region: Rect) -> bool:
        return self.inclusion_probability(target, search_region) >= self.threshold


@dataclass(frozen=True)
class ContainmentOnly(OverlapPolicy):
    """Admit only targets certainly inside the search region — the
    x = 100% extreme; trades inclusiveness for the smallest answer."""

    def admits(self, target: Rect, search_region: Rect) -> bool:
        return search_region.contains_rect(target)
