"""Safe-region kNN: candidate lists that stay valid while the client moves.

A snapshot kNN answer (:func:`~repro.processor.knn.private_knn_over_public`)
is inclusive for every position in the *current* cloaked area ``A`` — the
moment the client's cloak drifts, the server must be asked again.  For a
moving client that means one full re-query per tick, which is exactly the
server-load problem validity regions solve (Hashem, Kulik & Zhang,
"Privacy Preserving Moving KNN Queries"): return, alongside the candidate
list, a region the answer provably survives in, and let the client stay
silent until its cloak exits it.

The construction inflates the kNN bound of :mod:`repro.processor.knn` by a
chosen ``margin`` δ.  Recall the anchor bound: for an anchor ``v`` with
k-th-nearest-target distance :math:`d_v^k`, every member of the true kNN
set of *any* point ``q`` lies within :math:`r(q) = \\min_v(|q-v| + d_v^k)`
of ``q`` — the bound is global, not restricted to ``q \\in A``, and it is
1-Lipschitz in ``q``.  So take any ``q`` within δ of ``A`` (equivalently:
inside ``A.expanded_uniform(δ)``, the **validity region**) and let ``p``
be its nearest point of ``A``:

.. math::

    |t - p| \\le |t - q| + |q - p| \\le r(q) + δ \\le r(p) + 2δ
    \\qquad \\text{for every true-kNN member } t \\text{ of } q.

The right-hand side is the original bound with every anchor distance
shifted by 2δ, and the per-edge expansion is additive in that shift
(``_edge_expansion(L, d_i + c, d_j + c) == _edge_expansion(L, d_i, d_j) + c``,
both cones rise together), so building ``A_EXT`` from the distances
:math:`d_v^k + 2δ` yields a candidate list inclusive for **every cloak
contained in the validity region** — the refined answer at the client's
exact position is byte-identical to a fresh re-query, for as long as the
cloak stays inside.

Target churn can of course still invalidate the list.  The result carries
a conservative **watch region** for that: the union of the inflated
``A_EXT`` (any target that could *enter* some ``q``'s kNN set lies inside
it, by the same theorem) and the anchor witness discs
:math:`disc(v, d_v^k)` (a target that could *weaken* an anchor bound by
leaving or moving lies inside its disc).  A continuous monitor that
re-evaluates whenever a target update touches the watch region, or the
client's cloak exits the validity region, therefore never serves a wrong
answer.  When ``k`` had to be clamped to the dataset size the watch
region cannot be bounded (an insert anywhere grows the answer set);
:attr:`SafeRegionResult.clamped` flags that and callers must widen their
watch to the whole service area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EmptyDatasetError
from repro.geometry import Point, Rect
from repro.observability import runtime as _telemetry
from repro.processor.candidate import CandidateList
from repro.processor.knn import _extended_region, _kth_distance_public
from repro.spatial import SpatialIndex

__all__ = ["SafeRegionResult", "private_knn_with_validity", "default_margin"]


def default_margin(cloak: Rect, factor: float = 1.5) -> float:
    """Cloak-relative validity margin: ``factor`` times the cloak's
    longer side.

    Scaling δ with the cloak keeps the trade-off uniform across privacy
    levels: a strict-``k`` user with a large cloak moves many ticks
    before leaving it, a relaxed user with a tiny cell gets a
    correspondingly tight validity region.  With ``factor`` ≥ 1 a cloak
    shifted by one full cell is still contained, so the common
    neighbour-cell hop does not force a re-query.
    """
    if factor < 0.0:
        raise ValueError("factor must be non-negative")
    return factor * max(cloak.width, cloak.height)


@dataclass(frozen=True)
class SafeRegionResult:
    """A kNN candidate list plus the region it provably survives in.

    Attributes
    ----------
    candidates:
        Inclusive for every user position in every cloak contained in
        ``validity`` (not merely the cloak it was computed from).
    validity:
        The original cloak expanded uniformly by ``margin``.  While the
        client's fresh cloak stays inside it, refining ``candidates`` at
        the client's exact position equals a fresh re-query.
    watch_region:
        Conservative bound on where a *target* update (insert, move,
        delete) can invalidate ``candidates``; updates strictly outside
        it provably cannot.  Meaningless when :attr:`clamped` is true —
        widen to the whole service area instead.
    k:
        The requested k.
    k_effective:
        ``min(k, dataset size)`` — what the bound was computed with.
    margin:
        The δ the validity region and the inflated search region used.
    """

    candidates: CandidateList
    validity: Rect
    watch_region: Rect
    k: int
    k_effective: int
    margin: float

    @property
    def clamped(self) -> bool:
        """True when the dataset held fewer than ``k`` targets, so any
        insert anywhere may grow the answer set."""
        return self.k_effective < self.k


def _disc_bbox(center: Point, radius: float) -> Rect:
    return Rect(
        center.x - radius, center.y - radius, center.x + radius, center.y + radius
    )


def private_knn_with_validity(
    index: SpatialIndex,
    cloaked_area: Rect,
    k: int,
    num_filters: int = 4,
    margin: float = 0.0,
) -> SafeRegionResult:
    """Private kNN over public data with a validity region.

    With ``margin == 0`` the candidate list is exactly
    :func:`~repro.processor.knn.private_knn_over_public`'s (the validity
    region degenerates to the cloak itself); a positive margin buys
    survivable client movement at the cost of a ``2·margin``-wider
    search region, hence more candidates to ship.
    """
    if len(index) == 0:
        raise EmptyDatasetError("no target objects stored")
    if k < 1:
        raise ValueError("k must be >= 1")
    if margin < 0.0:
        raise ValueError("margin must be non-negative")
    k_effective = min(k, len(index))
    anchors = (
        [cloaked_area.center] if num_filters == 1 else list(cloaked_area.vertices())
    )
    with _telemetry.phase_scope("extension", "public"):
        distance_of = {
            anchor: _kth_distance_public(index, anchor, k_effective)
            for anchor in anchors
        }
        a_ext = _extended_region(
            cloaked_area,
            lambda v: distance_of[v] + 2.0 * margin,
            num_filters,
            k_effective,
        )
    with _telemetry.phase_scope("candidates", "public"):
        items = tuple(
            sorted(
                ((oid, index.rect_of(oid)) for oid in index.range_search(a_ext)),
                key=lambda item: str(item[0]),
            )
        )
    _telemetry.note_candidates(len(items))
    watch = a_ext
    for anchor, distance in distance_of.items():
        watch = watch.union(_disc_bbox(anchor, distance))
    return SafeRegionResult(
        candidates=CandidateList(
            items=items, search_region=a_ext, num_filters=num_filters
        ),
        validity=cloaked_area.expanded_uniform(margin),
        watch_region=watch,
        k=k,
        k_effective=k_effective,
        margin=margin,
    )
