"""Private nearest-neighbor queries over private data (Section 5.2).

"Where is my nearest buddy?" — both the querying user and the targets
are cloaked rectangles.  Algorithm 2 with the Section 5.2.1 changes:
filters are chosen by pessimistic (furthest corner) distance, the middle
points come from the corner-based ``L_ij``, and the candidate list holds
every target whose cloaked region *overlaps* ``A_EXT`` (optionally
thinned by a probabilistic overlap policy).
"""

from __future__ import annotations

from repro.geometry import Rect
from repro.observability import runtime as _telemetry
from repro.processor.candidate import CandidateList
from repro.processor.extension import compute_extension_private
from repro.processor.filters import select_filters_private
from repro.processor.probabilistic import OverlapPolicy

__all__ = ["private_nn_over_private"]

from repro.spatial import SpatialIndex


def private_nn_over_private(
    index: SpatialIndex,
    cloaked_area: Rect,
    num_filters: int = 4,
    policy: OverlapPolicy | None = None,
) -> CandidateList:
    """Answer a private NN query over private (cloaked) target data.

    ``policy`` optionally replaces the default "any overlap" candidate
    criterion with a probabilistic threshold (Section 5.2.1 step 4's
    ``x%``-overlap refinement); ``None`` keeps the inclusive default.
    """
    with _telemetry.phase_scope("filter_selection", "private"):
        filters = select_filters_private(index, cloaked_area, num_filters)
    with _telemetry.phase_scope("extension", "private"):
        a_ext, _extensions = compute_extension_private(index, cloaked_area, filters)
    with _telemetry.phase_scope("candidates", "private"):
        candidates = [(oid, index.rect_of(oid)) for oid in index.range_search(a_ext)]
        if policy is not None:
            candidates = [
                (oid, rect) for oid, rect in candidates if policy.admits(rect, a_ext)
            ]
        items = tuple(sorted(candidates, key=lambda item: str(item[0])))
    _telemetry.note_candidates(len(items))
    return CandidateList(
        items=items,
        search_region=a_ext,
        num_filters=num_filters,
        filters=filters.distinct_oids(),
    )
