"""Trajectory traffic: drive a continuous monitor with recorded ticks.

The missing piece between ``mobility/`` (who moves where) and
``continuous/`` (which standing queries that invalidates): replay a
sequence of per-tick :class:`~repro.mobility.LocationUpdate` batches —
live from a generator, or pre-recorded in a :class:`~repro.mobility.Trace`
so several deployments can see byte-identical traffic — through
:meth:`~repro.continuous.monitor.ContinuousQueryMonitor.on_users_moved`
and a flush per tick, and account for the server work each tick caused.

The report is built from the monitor's deterministic counters, so two
runs over the same trace are comparable number-for-number; that is what
the ``continuous_mobility`` bench's safe-region-vs-naive arms and the
equivalence tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.continuous.monitor import ContinuousQueryMonitor
from repro.mobility.generator import LocationUpdate

__all__ = ["TrajectoryReport", "drive_trace"]


@dataclass(frozen=True)
class TrajectoryReport:
    """Per-run accounting of one trajectory replay.

    ``evaluations`` counts every dirty-query re-evaluation the replay's
    flushes performed (``knn_evaluations`` the kNN subset),
    ``suppressed`` the cloak changes a validity region absorbed, and
    ``validity_exits`` the ones that forced a re-query.  ``requery_rate``
    is kNN evaluations per registered query per tick — 1.0 is the naive
    re-issue-every-tick client, and the safe-region path's whole point
    is pushing it far below that.
    """

    ticks: int
    queries: int
    moves: int
    evaluations: int
    knn_evaluations: int
    suppressed: int
    validity_exits: int
    answer_changes: int
    evaluations_per_tick: float
    requery_rate: float
    mean_validity_lifetime: float

    @property
    def suppression_ratio(self) -> float:
        """Naive per-tick evaluations over actual kNN evaluations."""
        if self.knn_evaluations == 0:
            return float("inf") if self.queries and self.ticks else 1.0
        return (self.queries * self.ticks) / self.knn_evaluations


def drive_trace(
    monitor: ContinuousQueryMonitor,
    ticks: Iterable[Sequence[LocationUpdate]],
    naive_per_tick: bool = False,
) -> TrajectoryReport:
    """Replay tick batches through ``monitor``: one
    :meth:`~repro.continuous.monitor.ContinuousQueryMonitor.on_users_moved`
    plus one flush per batch.

    ``naive_per_tick=True`` is the re-issue-every-tick client model:
    every registered query is force-dirtied before each flush, so each
    tick re-evaluates everything — the baseline arm the suppression
    ratio is measured against.
    """
    counters_before = dict(monitor.counters)
    lifetimes_before = len(monitor.validity_lifetimes)
    num_ticks = 0
    num_moves = 0
    num_changes = 0
    for batch in ticks:
        moves = [(update.uid, update.point) for update in batch]
        num_ticks += 1
        num_moves += len(moves)
        monitor.on_users_moved(moves)
        if naive_per_tick:
            monitor.mark_all_dirty()
        num_changes += len(monitor.flush())
    delta = {
        key: monitor.counters[key] - counters_before[key]
        for key in monitor.counters
    }
    queries = monitor.num_queries
    lifetimes = monitor.validity_lifetimes[lifetimes_before:]
    query_ticks = queries * num_ticks
    return TrajectoryReport(
        ticks=num_ticks,
        queries=queries,
        moves=num_moves,
        evaluations=delta["evaluations"],
        knn_evaluations=delta["knn_evaluations"],
        suppressed=delta["suppressed"],
        validity_exits=delta["validity_exits"],
        answer_changes=num_changes,
        evaluations_per_tick=delta["evaluations"] / num_ticks if num_ticks else 0.0,
        requery_rate=(
            delta["knn_evaluations"] / query_ticks if query_ticks else 0.0
        ),
        mean_validity_lifetime=(
            sum(lifetimes) / len(lifetimes) if lifetimes else 0.0
        ),
    )
