"""Workload generators mirroring Section 6's experimental setup."""

from repro.workloads.profiles import (
    PAPER_AMIN_FRACTION_RANGE,
    PAPER_K_GROUPS,
    PAPER_K_RANGE,
    profiles_for_k_range,
    uniform_profiles,
)
from repro.workloads.queries import query_regions_of_cells, random_query_points
from repro.workloads.scenario import (
    Scenario,
    build_commuter_scenario,
    build_scenario,
)
from repro.workloads.trajectory import TrajectoryReport, drive_trace
from repro.workloads.targets import (
    cell_region,
    uniform_points,
    uniform_private_regions,
)

__all__ = [
    "PAPER_AMIN_FRACTION_RANGE",
    "PAPER_K_GROUPS",
    "PAPER_K_RANGE",
    "profiles_for_k_range",
    "uniform_profiles",
    "query_regions_of_cells",
    "random_query_points",
    "Scenario",
    "build_scenario",
    "build_commuter_scenario",
    "TrajectoryReport",
    "drive_trace",
    "cell_region",
    "uniform_points",
    "uniform_private_regions",
]
