"""Privacy-profile workloads.

Section 6.1's default: "a random privacy profile for each user where k
and A_min are assigned uniformly within the range [1-50] users and
[.005, .01]% of the space".  Fractions are of the service-area *area*;
``0.005% = 5e-5``.
"""

from __future__ import annotations

from repro.anonymizer import PrivacyProfile
from repro.geometry import Rect
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "uniform_profiles",
    "profiles_for_k_range",
    "PAPER_K_RANGE",
    "PAPER_AMIN_FRACTION_RANGE",
    "PAPER_K_GROUPS",
]

#: The paper's default k range.
PAPER_K_RANGE = (1, 50)

#: The paper's default A_min range, as fractions of the space
#: ([.005%, .01%]).
PAPER_AMIN_FRACTION_RANGE = (0.00005, 0.0001)

#: The k groups of Figures 10c, 12 and 17 ([1-10] ... [150-200]).
PAPER_K_GROUPS = (
    (1, 10),
    (10, 30),
    (30, 50),
    (50, 100),
    (100, 150),
    (150, 200),
)


def uniform_profiles(
    n: int,
    bounds: Rect,
    k_range: tuple[int, int] = PAPER_K_RANGE,
    a_min_fraction_range: tuple[float, float] = PAPER_AMIN_FRACTION_RANGE,
    seed: SeedLike = 0,
) -> list[PrivacyProfile]:
    """``n`` profiles with uniform ``k`` and uniform ``A_min`` fractions."""
    if n < 0:
        raise ValueError("n must be non-negative")
    k_lo, k_hi = k_range
    if not 1 <= k_lo <= k_hi:
        raise ValueError("k_range must satisfy 1 <= lo <= hi")
    f_lo, f_hi = a_min_fraction_range
    if not 0 <= f_lo <= f_hi:
        raise ValueError("a_min_fraction_range must satisfy 0 <= lo <= hi")
    rng = ensure_rng(seed)
    ks = rng.integers(k_lo, k_hi + 1, n)
    fractions = rng.uniform(f_lo, f_hi, n)
    return [
        PrivacyProfile(k=int(k), a_min=float(f) * bounds.area)
        for k, f in zip(ks, fractions)
    ]


def profiles_for_k_range(
    n: int,
    k_range: tuple[int, int],
    seed: SeedLike = 0,
    a_min: float = 0.0,
) -> list[PrivacyProfile]:
    """``n`` profiles with ``k`` uniform in ``k_range`` and a fixed
    ``A_min`` (zero by default, as in the Figure 10c accuracy runs)."""
    rng = ensure_rng(seed)
    k_lo, k_hi = k_range
    ks = rng.integers(k_lo, k_hi + 1, n)
    return [PrivacyProfile(k=int(k), a_min=a_min) for k in ks]
