"""Target-object workloads.

Section 6's setup: "Target objects are chosen as uniformly distributed
in the spatial space" for public data, and "private target objects has a
region of [1-64] cells" — cloaked rectangles whose area is a uniformly
drawn number of lowest-pyramid-level cells.
"""

from __future__ import annotations

import math

from repro.geometry import Point, Rect
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["uniform_points", "uniform_private_regions", "cell_region"]


def uniform_points(
    n: int, bounds: Rect, seed: SeedLike = 0
) -> dict[str, Point]:
    """``n`` uniform public targets, keyed ``"T1" .. "Tn"`` in the
    paper's naming style."""
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = ensure_rng(seed)
    xs = rng.uniform(bounds.x_min, bounds.x_max, n)
    ys = rng.uniform(bounds.y_min, bounds.y_max, n)
    return {
        f"T{i + 1}": Point(float(x), float(y)) for i, (x, y) in enumerate(zip(xs, ys))
    }


def cell_region(
    center: Point, num_cells: float, bounds: Rect, pyramid_height: int
) -> Rect:
    """A square region of ``num_cells`` lowest-level pyramid cells,
    centred on ``center`` and clipped to ``bounds``.

    One "cell" is a lowest-level cell of a pyramid of the given height,
    i.e. area ``bounds.area / 4**height`` — the unit the paper uses for
    "cloaked region of c cells".
    """
    if num_cells <= 0:
        raise ValueError("num_cells must be positive")
    cell_area = bounds.area / float(4**pyramid_height)
    side = math.sqrt(num_cells * cell_area)
    raw = Rect.from_center(center, side, side)
    # Shift inside the bounds rather than clipping, to preserve the area.
    dx = max(bounds.x_min - raw.x_min, 0.0) - max(raw.x_max - bounds.x_max, 0.0)
    dy = max(bounds.y_min - raw.y_min, 0.0) - max(raw.y_max - bounds.y_max, 0.0)
    shifted = Rect(
        raw.x_min + dx, raw.y_min + dy, raw.x_max + dx, raw.y_max + dy
    )
    return shifted.clipped_to(bounds)


def uniform_private_regions(
    n: int,
    bounds: Rect,
    pyramid_height: int = 9,
    cells_range: tuple[float, float] = (1, 64),
    seed: SeedLike = 0,
) -> dict[str, Rect]:
    """``n`` private targets with cloaked regions of ``[lo, hi]`` cells,
    uniformly placed, keyed ``"P1" .. "Pn"``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    lo, hi = cells_range
    if not 0 < lo <= hi:
        raise ValueError("cells_range must satisfy 0 < lo <= hi")
    rng = ensure_rng(seed)
    regions: dict[str, Rect] = {}
    for i in range(n):
        center = Point(
            float(rng.uniform(bounds.x_min, bounds.x_max)),
            float(rng.uniform(bounds.y_min, bounds.y_max)),
        )
        cells = float(rng.uniform(lo, hi))
        regions[f"P{i + 1}"] = cell_region(center, cells, bounds, pyramid_height)
    return regions
