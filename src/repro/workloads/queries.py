"""Query workloads.

Figures 15 and 16 sweep the *size* of the cloaked query area (4 to 1024
lowest-level cells) and of the target data regions (4 to 256 cells);
these helpers produce those regions directly, bypassing the anonymizer,
so the query-processor experiments isolate processor behaviour exactly
as the paper's Section 6.2 does.
"""

from __future__ import annotations

from repro.geometry import Point, Rect
from repro.utils.rng import SeedLike, ensure_rng
from repro.workloads.targets import cell_region

__all__ = ["query_regions_of_cells", "random_query_points"]


def random_query_points(n: int, bounds: Rect, seed: SeedLike = 0) -> list[Point]:
    """``n`` uniform query anchor points."""
    rng = ensure_rng(seed)
    return [
        Point(
            float(rng.uniform(bounds.x_min, bounds.x_max)),
            float(rng.uniform(bounds.y_min, bounds.y_max)),
        )
        for _ in range(n)
    ]


def query_regions_of_cells(
    n: int,
    num_cells: float,
    bounds: Rect,
    pyramid_height: int = 9,
    seed: SeedLike = 0,
) -> list[Rect]:
    """``n`` cloaked query areas of exactly ``num_cells`` lowest-level
    pyramid cells, uniformly placed."""
    anchors = random_query_points(n, bounds, seed)
    return [cell_region(p, num_cells, bounds, pyramid_height) for p in anchors]
