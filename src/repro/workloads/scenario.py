"""Assembled experiment scenarios.

A ``Scenario`` bundles the moving-object population (positions from a
network-based generator over the synthetic county map) with privacy
profiles — the common substrate of every Section 6 experiment.  Two
builders cover the two traffic shapes: :func:`build_scenario` wraps the
Brinkhoff-style wandering :class:`~repro.mobility.NetworkGenerator`,
:func:`build_commuter_scenario` the tide-producing
:class:`~repro.mobility.CommuterGenerator` (the trajectory-shaped
workload the safe-region continuous-kNN path is measured on).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymizer import PrivacyProfile
from repro.geometry import Point, Rect
from repro.mobility import (
    CommuterGenerator,
    NetworkGenerator,
    RoadNetwork,
    synthetic_county_map,
)
from repro.utils.rng import SeedLike, spawn_rngs
from repro.workloads.profiles import uniform_profiles

__all__ = ["Scenario", "build_scenario", "build_commuter_scenario"]

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


@dataclass
class Scenario:
    """A user population ready to drive an anonymizer or a Casper stack."""

    bounds: Rect
    network: RoadNetwork
    generator: NetworkGenerator | CommuterGenerator
    profiles: list[PrivacyProfile]

    @property
    def num_users(self) -> int:
        return len(self.profiles)

    def positions(self) -> dict[int, Point]:
        return self.generator.positions()

    def register_all(self, anonymizer) -> None:
        """Register the whole population with an anonymizer-like object
        (anything exposing ``register(uid, point, profile)``) or a
        :class:`~repro.server.casper.Casper` facade (``register_user``)."""
        register = getattr(anonymizer, "register", None)
        if register is None:
            register = anonymizer.register_user
        for uid, point in sorted(self.generator.positions().items()):
            register(uid, point, self.profiles[uid])

    def step(self, dt: float = 1.0):
        """Advance the population; returns the location-update batch."""
        return self.generator.step(dt)


def build_scenario(
    num_users: int,
    bounds: Rect = UNIT,
    k_range: tuple[int, int] = (1, 50),
    a_min_fraction_range: tuple[float, float] = (0.00005, 0.0001),
    seed: SeedLike = 0,
    grid_size: int = 12,
) -> Scenario:
    """Build the paper's standard workload at any population size."""
    map_rng, gen_rng, profile_rng = spawn_rngs(seed, 3)
    network = synthetic_county_map(seed=map_rng, bounds=bounds, grid_size=grid_size)
    generator = NetworkGenerator(network, num_users, seed=gen_rng)
    profiles = uniform_profiles(
        num_users,
        bounds,
        k_range=k_range,
        a_min_fraction_range=a_min_fraction_range,
        seed=profile_rng,
    )
    return Scenario(
        bounds=bounds, network=network, generator=generator, profiles=profiles
    )


def build_commuter_scenario(
    num_users: int,
    bounds: Rect = UNIT,
    k_range: tuple[int, int] = (1, 50),
    a_min_fraction_range: tuple[float, float] = (0.00005, 0.0001),
    seed: SeedLike = 0,
    grid_size: int = 12,
    downtown_fraction: float = 0.15,
    dwell_range: tuple[float, float] = (3.0, 10.0),
) -> Scenario:
    """The commuter (home/work tide) workload at any population size.

    Same map/profile construction as :func:`build_scenario`, but the
    population commutes between home and downtown work anchors with
    dwell phases — trajectory-shaped traffic where a client's position
    is static for stretches and then moves along a road for many
    consecutive ticks, the regime validity regions pay off in.
    """
    map_rng, gen_rng, profile_rng = spawn_rngs(seed, 3)
    network = synthetic_county_map(seed=map_rng, bounds=bounds, grid_size=grid_size)
    generator = CommuterGenerator(
        network,
        num_users,
        seed=gen_rng,
        downtown_fraction=downtown_fraction,
        dwell_range=dwell_range,
    )
    profiles = uniform_profiles(
        num_users,
        bounds,
        k_range=k_range,
        a_min_fraction_range=a_min_fraction_range,
        seed=profile_rng,
    )
    return Scenario(
        bounds=bounds, network=network, generator=generator, profiles=profiles
    )
