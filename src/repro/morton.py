"""Morton (Z-order) codes — the one shared implementation.

Every layer of the system that linearizes the pyramid uses the same
bit-interleave convention: ``ix`` occupies the even bit positions and
``iy`` the odd ones, so the Z-order index of ``(ix, iy)`` is
``spread(ix) | spread(iy) << 1``.  Historically the vectorized pyramid
(``repro.anonymizer.soa``) and the shard router
(``repro.sharding.router``) each carried their own copy of the encode /
decode helpers; this module is now the single definition site, with the
old import paths kept as re-exports.  ``tests/test_morton_shared.py``
pins the bit-equality of the table-driven fast paths against a
straight-loop reference, so any future edit that skews the convention
fails loudly.

Three speed tiers, all bit-identical:

* :func:`morton_encode` / :func:`morton_decode` — vectorized magic-mask
  spread/compact over numpy ``int64`` arrays (batched kernels);
* :func:`morton_of_xy` / :func:`morton_of_cell` — scalar encodes via a
  16-bit spread lookup table (one probe per coordinate);
* :func:`cell_of_morton` / :func:`morton_cell` — scalar decodes via
  pure-int bit twiddling (no numpy round-trip on the cloak fast path).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.anonymizer.cells import CellId

__all__ = [
    "cell_of_morton",
    "morton_cell",
    "morton_decode",
    "morton_encode",
    "morton_of_cell",
    "morton_of_xy",
    "morton_rank",
]

IntArray = npt.NDArray[np.int64]

_M1 = np.int64(0x5555555555555555)
_M2 = np.int64(0x3333333333333333)
_M4 = np.int64(0x0F0F0F0F0F0F0F0F)
_M8 = np.int64(0x00FF00FF00FF00FF)
_M16 = np.int64(0x0000FFFF0000FFFF)
_M32 = np.int64(0x00000000FFFFFFFF)


# ----------------------------------------------------------------------
# Vectorized magic-mask spread/compact
# ----------------------------------------------------------------------
def _spread(v: IntArray) -> IntArray:
    """Insert a zero bit above every bit of ``v`` (values < 2**31)."""
    v = (v | (v << 16)) & _M16
    v = (v | (v << 8)) & _M8
    v = (v | (v << 4)) & _M4
    v = (v | (v << 2)) & _M2
    v = (v | (v << 1)) & _M1
    return v


def _compact(v: IntArray) -> IntArray:
    """Inverse of :func:`_spread`: drop every odd-position bit."""
    v = v & _M1
    v = (v | (v >> 1)) & _M2
    v = (v | (v >> 2)) & _M4
    v = (v | (v >> 4)) & _M8
    v = (v | (v >> 8)) & _M16
    v = (v | (v >> 16)) & _M32
    return v


def morton_encode(ix: IntArray, iy: IntArray) -> IntArray:
    """Z-order index of ``(ix, iy)`` grid coordinates, elementwise."""
    return _spread(ix) | (_spread(iy) << 1)


def morton_decode(m: IntArray) -> tuple[IntArray, IntArray]:
    """Inverse of :func:`morton_encode`: ``(ix, iy)`` arrays."""
    return _compact(m), _compact(m >> 1)


# 16-bit spread lookup for scalar (single-cell) encodes: one table probe
# per coordinate instead of five mask/shift rounds on a python int.
_SPREAD_TABLE: IntArray = _spread(np.arange(1 << 16, dtype=np.int64))


def morton_of_cell(cell: CellId) -> int:
    """Z-order index of one cell among the ``4**level`` of its level."""
    return int(_SPREAD_TABLE[cell.ix]) | (int(_SPREAD_TABLE[cell.iy]) << 1)


def morton_of_xy(ix: int, iy: int) -> int:
    """Z-order index of raw grid coordinates (scalar fast path)."""
    return int(_SPREAD_TABLE[ix]) | (int(_SPREAD_TABLE[iy]) << 1)


def _compact_int(v: int) -> int:
    """Scalar inverse of ``_spread``: keep every even-position bit.

    Pure-int bit twiddling — this sits on the cloak fast path, where a
    per-call one-element numpy decode would dominate the cache-hit cost.
    """
    v &= 0x5555555555555555
    v = (v | (v >> 1)) & 0x3333333333333333
    v = (v | (v >> 2)) & 0x0F0F0F0F0F0F0F0F
    v = (v | (v >> 4)) & 0x00FF00FF00FF00FF
    v = (v | (v >> 8)) & 0x0000FFFF0000FFFF
    return (v | (v >> 16)) & 0xFFFFFFFF


def cell_of_morton(level: int, m: int) -> CellId:
    """The :class:`CellId` with Z-order index ``m`` at ``level``."""
    return CellId._trusted(level, _compact_int(m), _compact_int(m >> 1))


# ----------------------------------------------------------------------
# Rank helpers (the shard router's historical spelling)
# ----------------------------------------------------------------------
def morton_rank(cell: CellId) -> int:
    """Z-order rank of ``cell`` among the ``4**level`` cells of its
    level (bit-interleave of ``iy`` over ``ix``)."""
    ix, iy = cell.ix, cell.iy
    if ix < (1 << 16) and iy < (1 << 16):
        return int(_SPREAD_TABLE[ix]) | (int(_SPREAD_TABLE[iy]) << 1)
    rank = 0
    for bit in range(cell.level):
        rank |= ((ix >> bit) & 1) << (2 * bit)
        rank |= ((iy >> bit) & 1) << (2 * bit + 1)
    return rank


def morton_cell(rank: int, level: int) -> CellId:
    """Inverse of :func:`morton_rank` at the given level."""
    return CellId(level, _compact_int(rank), _compact_int(rank >> 1))
