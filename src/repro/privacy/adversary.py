"""Adversary models and privacy auditing.

The paper argues (Section 4.3) that a single cloaked region leaks
nothing beyond uniform membership: the region comes from a pre-defined
partitioning, so the posterior over it is flat.  Two questions a
security reviewer of such a system asks next, both answerable with this
module:

1. **What does a *sequence* of reports leak?**  Pseudonymous but
   *linkable* reports (e.g. a standing query re-cloaked every tick) can
   be intersected: with a bound on user speed, the adversary keeps the
   feasible set ``F_t = R_t ∩ grow(F_{t-1}, v_max · Δt)``.
   :class:`RegionIntersectionAttack` implements that tracker and
   reports the narrowing it achieves — the known weakness of memoryless
   spatial cloaking under continuous disclosure (studied in the
   post-Casper literature) made measurable.
2. **Is the promised k actually delivered?**
   :class:`AnonymityAuditor` replays reported regions against the true
   population and records the realized anonymity-set sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Point, Rect
from repro.utils.timer import Accumulator

__all__ = ["RegionIntersectionAttack", "AnonymityAuditor", "AuditRecord"]


class RegionIntersectionAttack:
    """Track the feasible locations of one pseudonym across reports.

    Parameters
    ----------
    max_speed:
        The adversary's assumed bound on user speed (space units per
        time unit).  ``inf`` disables motion-model narrowing, leaving
        pure region intersection.

    The feasible set is maintained as an axis-aligned rectangle (the
    exact feasible set under axis-aligned reports and an L∞ motion
    bound; a conservative superset under the Euclidean bound).
    """

    def __init__(self, max_speed: float = float("inf")) -> None:
        if max_speed < 0:
            raise ValueError("max_speed must be non-negative")
        self.max_speed = max_speed
        self._feasible: Rect | None = None
        self._last_time: float | None = None
        self.observations = 0

    @property
    def feasible(self) -> Rect | None:
        """The current feasible rectangle (``None`` before any report)."""
        return self._feasible

    def observe(self, region: Rect, time: float = 0.0) -> Rect:
        """Fold one cloaked report into the feasible set.

        Returns the updated feasible rectangle.  Raises when reports
        arrive out of time order or are mutually infeasible under the
        motion model (which would mean the linkage hypothesis is wrong).
        """
        if self._feasible is None:
            self._feasible = region
            self._last_time = time
            self.observations = 1
            return self._feasible
        if time < self._last_time:
            raise ValueError("reports must be time-ordered")
        if self.max_speed == float("inf"):
            # Unbounded speed: the previous feasible set says nothing
            # about the present; only the fresh report constrains.
            feasible = region
        else:
            reach = self.max_speed * (time - self._last_time)
            grown = self._feasible.expanded_uniform(reach)
            overlap = grown.intersection(region)
            if overlap is None:
                raise ValueError(
                    "reports are infeasible under the motion model — "
                    "the linkage hypothesis is falsified"
                )
            feasible = overlap
        self._feasible = feasible
        self._last_time = time
        self.observations += 1
        return feasible

    def narrowing_factor(self, reported: Rect) -> float:
        """How much smaller the feasible set is than the last report:
        ``feasible_area / reported_area`` (1.0 = no leak beyond the
        report itself; smaller = the adversary learned more)."""
        if self._feasible is None:
            return 1.0
        if reported.area <= 0:
            return 1.0
        return self._feasible.area / reported.area

    def contains(self, point: Point) -> bool:
        """Soundness probe: the user's true position must always lie in
        the feasible set (used by the tests' ground-truth oracle)."""
        return self._feasible is None or self._feasible.contains_point(point)


@dataclass
class AuditRecord:
    """Realized anonymity for one report."""

    uid: object
    promised_k: int
    realized_k: int
    region_area: float

    @property
    def satisfied(self) -> bool:
        return self.realized_k >= self.promised_k


@dataclass
class AnonymityAuditor:
    """Replay reported cloaks against the true population and record the
    anonymity actually delivered."""

    records: list[AuditRecord] = field(default_factory=list)
    ratio: Accumulator = field(default_factory=Accumulator)

    def audit(
        self,
        uid: object,
        region: Rect,
        promised_k: int,
        population: dict[object, Point],
    ) -> AuditRecord:
        """Record one report.  ``population`` is the ground-truth
        position table (available to the auditor, never the server)."""
        realized = sum(1 for p in population.values() if region.contains_point(p))
        record = AuditRecord(
            uid=uid,
            promised_k=promised_k,
            realized_k=realized,
            region_area=region.area,
        )
        self.records.append(record)
        if promised_k > 0:
            self.ratio.add(realized / promised_k)
        return record

    @property
    def num_violations(self) -> int:
        """Reports that delivered less anonymity than promised."""
        return sum(1 for r in self.records if not r.satisfied)

    @property
    def min_realized_k(self) -> int:
        if not self.records:
            return 0
        return min(r.realized_k for r in self.records)

    def summary(self) -> str:
        return (
            f"{len(self.records)} reports audited: "
            f"{self.num_violations} k-violations, "
            f"min realized k = {self.min_realized_k}, "
            f"mean k'/k = {self.ratio.mean:.2f}"
        )
