"""Privacy analysis: adversary models and anonymity auditing."""

from repro.privacy.adversary import (
    AnonymityAuditor,
    AuditRecord,
    RegionIntersectionAttack,
)

__all__ = ["AnonymityAuditor", "AuditRecord", "RegionIntersectionAttack"]
