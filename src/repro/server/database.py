"""The privacy-aware location-based database server.

Stores the two data kinds of Section 5 side by side:

* **public data** — exact point locations (gas stations, hospitals,
  police cars) inserted directly, bypassing the anonymizer;
* **private data** — cloaked rectangles received from the location
  anonymizer, keyed by (pseudonymous) object id.

and exposes the privacy-aware query operations over them.  The server is
deliberately index-agnostic: pass any ``SpatialIndex`` factory.
"""

from __future__ import annotations

from typing import Callable

from repro.geometry import Point, Rect
from repro.observability import runtime as _telemetry
from repro.processor import (
    BatchQueryEngine,
    BatchRequest,
    CandidateList,
    OverlapPolicy,
    RangeCountResult,
    SafeRegionResult,
    naive_center_nn,
    naive_send_all,
    private_knn_over_public,
    private_knn_with_validity,
    private_nn_over_private,
    private_nn_over_public,
    private_range_over_private,
    private_range_over_public,
    public_range_count_over_private,
)
from repro.spatial import RTreeIndex, SpatialIndex

__all__ = ["LocationServer"]


class LocationServer:
    """Location-based database server with an embedded privacy-aware
    query processor."""

    def __init__(
        self, index_factory: Callable[[], SpatialIndex] = RTreeIndex
    ) -> None:
        self.public_index = index_factory()
        self.private_index = index_factory()
        self.batch_engine = BatchQueryEngine(self.public_index, self.private_index)

    # ------------------------------------------------------------------
    # Data maintenance
    # ------------------------------------------------------------------
    def add_public(self, oid: object, point: Point) -> None:
        """Store (or move) a public target's exact location."""
        self.public_index.insert_point(oid, point)

    def add_public_bulk(self, entries: dict[object, Point]) -> None:
        """Bulk-load public targets (uses the index's packing algorithm)."""
        self.public_index.bulk_load(
            {oid: Rect.point(p) for oid, p in entries.items()}
        )

    def remove_public(self, oid: object) -> None:
        self.public_index.remove(oid)

    def store_private(self, oid: object, region: Rect) -> None:
        """Store (or refresh) a private object's cloaked region — the
        only location information the server ever sees for it."""
        self.private_index.insert(oid, region)

    def store_private_bulk(self, entries: dict[object, Rect]) -> None:
        self.private_index.bulk_load(dict(entries))

    def remove_private(self, oid: object) -> None:
        self.private_index.remove(oid)

    @property
    def num_public(self) -> int:
        return len(self.public_index)

    @property
    def num_private(self) -> int:
        return len(self.private_index)

    # ------------------------------------------------------------------
    # Privacy-aware queries
    # ------------------------------------------------------------------
    def nn_public(self, cloaked_area: Rect, num_filters: int = 4) -> CandidateList:
        """Private NN query over public data (Section 5.1)."""
        _telemetry.note_server_request("nn_public")
        return private_nn_over_public(self.public_index, cloaked_area, num_filters)

    def nn_private(
        self,
        cloaked_area: Rect,
        num_filters: int = 4,
        policy: OverlapPolicy | None = None,
        exclude: object = None,
    ) -> CandidateList:
        """Private NN query over private data (Section 5.2).

        ``exclude`` removes one object (typically the requester's own
        cloaked record) from consideration for the duration of the
        query.
        """
        _telemetry.note_server_request("nn_private")
        if exclude is not None and exclude in self.private_index:
            region = self.private_index.rect_of(exclude)
            self.private_index.remove(exclude)
            try:
                return private_nn_over_private(
                    self.private_index, cloaked_area, num_filters, policy
                )
            finally:
                self.private_index.insert(exclude, region)
        return private_nn_over_private(
            self.private_index, cloaked_area, num_filters, policy
        )

    def knn_public(
        self, cloaked_area: Rect, k: int, num_filters: int = 4
    ) -> CandidateList:
        """Private kNN query over public data (snapshot form)."""
        _telemetry.note_server_request("knn_public")
        return private_knn_over_public(
            self.public_index, cloaked_area, k, num_filters
        )

    def knn_public_with_validity(
        self,
        cloaked_area: Rect,
        k: int,
        num_filters: int = 4,
        margin: float = 0.0,
    ) -> SafeRegionResult:
        """Private kNN over public data with a validity region: the
        moving-client form (see :mod:`repro.processor.safe_region`)."""
        _telemetry.note_server_request("knn_public_safe")
        return private_knn_with_validity(
            self.public_index, cloaked_area, k, num_filters, margin
        )

    def range_public(self, cloaked_area: Rect, radius: float) -> CandidateList:
        """Private range query over public data."""
        _telemetry.note_server_request("range_public")
        return private_range_over_public(self.public_index, cloaked_area, radius)

    def range_private(
        self,
        cloaked_area: Rect,
        radius: float,
        policy: OverlapPolicy | None = None,
    ) -> CandidateList:
        """Private range query over private data."""
        _telemetry.note_server_request("range_private")
        return private_range_over_private(
            self.private_index, cloaked_area, radius, policy
        )

    def run_batch(self, requests: list[BatchRequest]) -> list[CandidateList]:
        """Answer a batch of privacy-aware queries at once, sharing the
        filter/extension work between requests with the same cloaked
        area and answering duplicate requests exactly once."""
        _telemetry.note_server_request("run_batch")
        return self.batch_engine.run(requests)

    def count_private(self, region: Rect) -> RangeCountResult:
        """Public aggregate query over private data (Section 5's second
        query type): how many private objects are in ``region``."""
        _telemetry.note_server_request("count_private")
        return public_range_count_over_private(self.private_index, region)

    def possible_nn_private(
        self, query: Point, estimate_probabilities: bool = False
    ):
        """Public NN query over private data: the users who could be
        nearest to an exact point; see
        :func:`repro.processor.public_nn_over_private`."""
        _telemetry.note_server_request("possible_nn_private")
        from repro.processor.uncertain_nn import public_nn_over_private

        return public_nn_over_private(
            self.private_index, query, estimate_probabilities
        )

    def density_private(self, bounds: Rect, resolution: int = 16):
        """Gridded expected-population map over the private store (the
        traffic-report aggregate); see
        :func:`repro.processor.density_map_over_private`."""
        _telemetry.note_server_request("density_private")
        from repro.processor.density import density_map_over_private

        return density_map_over_private(self.private_index, bounds, resolution)

    # ------------------------------------------------------------------
    # Naive baselines (Figure 4)
    # ------------------------------------------------------------------
    def nn_public_naive_center(self, cloaked_area: Rect) -> CandidateList:
        return naive_center_nn(self.public_index, cloaked_area)

    def nn_public_naive_all(self, cloaked_area: Rect) -> CandidateList:
        return naive_send_all(self.public_index, cloaked_area)
