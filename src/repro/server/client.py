"""A mobile client's view of Casper.

``MobileClient`` models the device side: it owns the exact location,
reports it (to the trusted anonymizer inside the :class:`Casper`
facade), and evaluates queries locally over the candidate lists the
server returns.  Applications in ``examples/`` are written against this
class.
"""

from __future__ import annotations

from repro.anonymizer import PrivacyProfile
from repro.geometry import Point
from repro.server.casper import Casper
from repro.server.messages import PrivateQueryResult

__all__ = ["MobileClient"]


class MobileClient:
    """One registered mobile user."""

    def __init__(
        self,
        casper: Casper,
        uid: object,
        location: Point,
        profile: PrivacyProfile,
    ) -> None:
        self.casper = casper
        self.uid = uid
        self._location = location
        self.profile = profile
        # Per-user monotone sequence number for location updates: the
        # anonymizer applies each sequence at most once, which is what
        # makes retransmissions and reordered deliveries idempotent.
        # Registration itself uses the trusted in-process path (the
        # bootstrap handshake is assumed reliable).
        self._seq = 0
        casper.register_user(uid, location, profile)

    # ------------------------------------------------------------------
    # Device-side state
    # ------------------------------------------------------------------
    @property
    def location(self) -> Point:
        """The exact location — known to the device and the trusted
        anonymizer, never to the database server."""
        return self._location

    @property
    def seq(self) -> int:
        """The last sequence number this client sent."""
        return self._seq

    def move_to(self, point: Point) -> str:
        """Report a location update; returns the delivery outcome.

        On a fault-free deployment this is the lossless in-process path
        (always ``"applied"``).  Under a resilience runtime the update
        travels the faulty channel with retries; an exhausted retry
        budget raises :class:`~repro.errors.UpdateDeliveryError` — the
        device keeps its new location either way and simply reports it
        again on the next movement (a later sequence number supersedes
        the lost one).
        """
        self._location = point
        if self.casper.resilience is None:
            self.casper.update_location(self.uid, point)
            return "applied"
        self._seq += 1
        return self.casper.submit_location_update(
            self.uid, point, self._seq, self.profile
        )

    def change_profile(self, profile: PrivacyProfile) -> None:
        """Adjust the personal privacy / quality-of-service trade-off."""
        self.profile = profile
        self.casper.set_profile(self.uid, profile)

    def leave(self) -> None:
        """Unsubscribe from the service."""
        self.casper.remove_user(self.uid)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nearest_public(self, num_filters: int = 4) -> PrivateQueryResult:
        """Ask for the nearest public target (e.g. gas station)."""
        return self.casper.query_nearest_public(self.uid, num_filters)

    def nearest_buddy(self, num_filters: int = 4) -> PrivateQueryResult:
        """Ask for the nearest other private user."""
        return self.casper.query_nearest_private(self.uid, num_filters)

    def publics_within(self, radius: float) -> PrivateQueryResult:
        """Ask for all public targets within ``radius``."""
        return self.casper.query_range_public(self.uid, radius)
