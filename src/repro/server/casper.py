"""The Casper framework facade (Figure 1's full architecture).

Wires the three parties together:

* mobile users report exact locations and privacy profiles to the
  **location anonymizer** (trusted third party);
* the anonymizer pushes *cloaked regions* — never exact locations — to
  the **location-based database server**;
* private queries are cloaked by the anonymizer, answered by the
  server's privacy-aware processor with a candidate list, and refined
  exactly on the client.

The facade also measures the Figure 17 time decomposition for every
private query.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

# Justified CSP001 suppression: the facade *is* the trusted boundary —
# it plays the mobile-user + anonymizer roles of Figure 1 in-process and
# hands the server side cloaks only.  Everything else under repro.server
# must stay on the untrusted side of the privacy boundary.
from repro.anonymizer import (  # casperlint: ignore[CSP001] trusted facade
    AdaptiveAnonymizer,
    BasicAnonymizer,
    CloakedRegion,
    PrivacyProfile,
    get_policy,
)
from repro.errors import DegradedModeError, UnknownUserError
from repro.geometry import Point, Rect
from repro.observability import runtime as _telemetry
from repro.processor import (
    BatchRequest,
    CandidateList,
    OverlapPolicy,
    RangeCountResult,
)
# Justified CSP001 suppression: the sharded runtime is the same trusted
# anonymizer role, partitioned — it exists only on the trusted side and
# the facade hands the server cloaks only (see the import above).
from repro.sharding import (  # casperlint: ignore[CSP001] trusted facade
    ParallelShardedAnonymizer,
    ShardedAdaptiveAnonymizer,
    ShardedBasicAnonymizer,
    make_sharded,
)
from repro.server.database import LocationServer
from repro.server.messages import PrivateQueryResult
from repro.server.network import TransmissionModel
from repro.utils.timer import monotonic

if TYPE_CHECKING:  # pragma: no cover - typing-only, the runtime is injected
    # Justified CSP001 suppression: same trusted-facade argument as the
    # anonymizer import above — the resilience runtime holds anonymizer
    # state and exists only on the trusted side of the boundary.
    from repro.resilience.runtime import (  # casperlint: ignore[CSP001] trusted facade
        ResilienceRuntime,
    )

__all__ = ["Casper"]

AnonymizerKind = str
"""A registered policy name (see
:func:`repro.anonymizer.policy.available_policies`)."""

AnonymizerLike = (
    BasicAnonymizer
    | AdaptiveAnonymizer
    | ShardedBasicAnonymizer
    | ShardedAdaptiveAnonymizer
    | ParallelShardedAnonymizer
    | object
)


class Casper:
    """End-to-end Casper deployment over one service area."""

    def __init__(
        self,
        bounds: Rect,
        pyramid_height: int = 9,
        anonymizer: AnonymizerKind | AnonymizerLike = "adaptive",
        server: LocationServer | None = None,
        transmission: TransmissionModel | None = None,
        resilience: "ResilienceRuntime | None" = None,
        shards: int = 1,
        parallel: bool = False,
        vectorized: bool | None = None,
        policy: AnonymizerKind | AnonymizerLike | None = None,
    ) -> None:
        # Routing seam: `shards > 1` swaps the single-pyramid anonymizer
        # for the sharded runtime, which is byte-for-byte equivalent —
        # every facade path below is unchanged.  `parallel=True` moves
        # each shard into its own worker process over the wire protocol
        # (still byte-equivalent; close the deployment to reap workers).
        #
        # `policy` is the registry-era name for `anonymizer` and accepts
        # the same values: any registered policy name, or a pre-built
        # anonymizer/fleet instance (duck-typed on the CloakingPolicy
        # surface).
        self._closed = False
        if policy is not None:
            anonymizer = policy
        if isinstance(anonymizer, str):
            spec = get_policy(anonymizer)
            if shards > 1 or parallel:
                self.anonymizer = make_sharded(
                    bounds,
                    pyramid_height,
                    num_shards=shards,
                    kind=anonymizer,
                    parallel=parallel,
                    vectorized=vectorized,
                )
            else:
                self.anonymizer = spec.single(
                    bounds, pyramid_height, 8192, vectorized
                )
        elif hasattr(anonymizer, "cloak") and hasattr(anonymizer, "register"):
            if anonymizer.bounds != bounds:
                raise ValueError(
                    "anonymizer instance bounds differ from the service area"
                )
            if shards != 1 and getattr(anonymizer, "num_shards", 1) != shards:
                raise ValueError(
                    "anonymizer instance shard count differs from `shards`"
                )
            if parallel and not isinstance(
                anonymizer, ParallelShardedAnonymizer
            ):
                raise ValueError(
                    "parallel=True conflicts with an in-process anonymizer "
                    "instance; pass a ParallelShardedAnonymizer or a kind "
                    "string instead"
                )
            self.anonymizer = anonymizer
        else:
            raise ValueError(f"unknown anonymizer kind {anonymizer!r}")
        self.server = server if server is not None else LocationServer()
        self.transmission = (
            transmission if transmission is not None else TransmissionModel()
        )
        # Optional resilience runtime: when present, update and response
        # traffic is serialized through the fault injector with retries,
        # and cloaking degrades through the ladder instead of failing.
        # When absent (the default), every path below is bit-identical
        # to the fault-free pipeline.
        self.resilience = resilience
        if resilience is not None:
            resilience.attach(self)

    def close(self) -> None:
        """Release the anonymizer's resources (idempotent).

        For the parallel runtime this drains and reaps every worker
        process; in-process anonymizers have nothing to release.  Safe
        to call from ``finally`` blocks and after partial failures —
        a deployment must never leak shard worker processes.
        """
        if self._closed:
            return
        self._closed = True
        closer = getattr(self.anonymizer, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "Casper":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def bounds(self) -> Rect:
        return self.anonymizer.bounds

    @property
    def num_shards(self) -> int:
        """Shard count of the trusted anonymizer (1 when unsharded)."""
        return getattr(self.anonymizer, "num_shards", 1)

    def shard_of(self, uid: object) -> int:
        """The shard homing ``uid`` (always 0 when unsharded)."""
        shard_of_user = getattr(self.anonymizer, "shard_of_user", None)
        if shard_of_user is None:
            if uid not in self.anonymizer:
                raise UnknownUserError(uid)
            return 0
        return int(shard_of_user(uid))

    # ------------------------------------------------------------------
    # User lifecycle (through the anonymizer)
    # ------------------------------------------------------------------
    def _stored_cloak(self, uid: object) -> CloakedRegion:
        """Cloak ``uid`` for server-side storage.

        Cold-start policy: while the registered population is still too
        small to satisfy the user's ``k`` (Algorithm 1's precondition),
        the most private consistent choice — the whole service area — is
        stored instead.  It resolves to a proper cloak as soon as enough
        users join and the next update re-cloaks.  A resilience runtime
        additionally degrades through its ladder (stale grace window,
        parent-cell escalation) before the cold-start bottom.
        """
        from repro.errors import ProfileUnsatisfiableError

        if self.resilience is not None:
            return self.resilience.storage_cloak(uid)
        try:
            return self.anonymizer.cloak(uid)
        except ProfileUnsatisfiableError:
            return CloakedRegion(
                self.bounds, self.anonymizer.num_users, cells=()
            )

    def refresh_stored_cloak(self, uid: object) -> CloakedRegion:
        """Re-cloak ``uid`` and refresh the server's stored private
        region (the anonymizer -> server push of Figure 1)."""
        region = self._stored_cloak(uid)
        self.server.store_private(uid, region.region)
        return region

    def cloak_for(self, uid: object) -> CloakedRegion:
        """The cloak a query for ``uid`` should use right now.

        Without a resilience runtime this is exactly
        ``anonymizer.cloak``; with one, the operation is crash-guarded
        and degrades through the ladder (raising
        :class:`~repro.errors.DegradedModeError` rather than ever
        emitting a cloak below the user's profile).
        """
        if self.resilience is None:
            return self.anonymizer.cloak(uid)
        self.resilience.guard(uid)
        region, _mode = self.resilience.cloak_or_degrade(uid)
        return region

    def _refine_location(self, uid: object) -> Point:
        """The exact location used for client-side refinement.

        Under a resilience runtime a user whose anonymizer state was
        lost degrades explicitly instead of surfacing a raw lookup
        error.
        """
        if self.resilience is None:
            return self.anonymizer.location_of(uid)
        try:
            return self.anonymizer.location_of(uid)
        except UnknownUserError as exc:
            self.resilience.counters["degraded_operations"] += 1
            raise DegradedModeError(
                f"exact location for user {uid!r} unavailable after state "
                "loss; awaiting the next location update to heal"
            ) from exc

    def _deliver(self, candidates: CandidateList) -> CandidateList:
        """Ship a candidate list over the (possibly faulty) response
        channel.  The identity function without a resilience runtime."""
        if self.resilience is None:
            return candidates
        return self.resilience.deliver_candidates(candidates)

    def register_user(
        self, uid: object, point: Point, profile: PrivacyProfile
    ) -> CloakedRegion:
        """Register a mobile user; their cloaked region (not the exact
        point) is stored at the server as private data."""
        self.anonymizer.register(uid, point, profile)
        return self.refresh_stored_cloak(uid)

    def update_location(self, uid: object, point: Point) -> CloakedRegion:
        """Continuous location update: re-cloak and refresh the server's
        stored private region.  This is the trusted in-process path; a
        resilient deployment sends updates through
        :meth:`submit_location_update` instead."""
        self.anonymizer.update(uid, point)
        return self.refresh_stored_cloak(uid)

    def update_locations(
        self, moves: "list[tuple[object, Point]]"
    ) -> "list[CloakedRegion]":
        """Apply one tick's worth of location updates through the
        anonymizer's batched kernel, then refresh every mover's stored
        cloak in arrival order.

        Batch semantics: all pyramid updates land before any re-cloak,
        so each stored region reflects the *end-of-tick* population —
        the consistency point :class:`~repro.continuous.monitor.\
ContinuousQueryMonitor` flushes at.  With a resilience runtime
        attached, updates fall back to the per-move guarded path.
        """
        if self.resilience is not None:
            return [self.update_location(uid, point) for uid, point in moves]
        self.anonymizer.update_batch(list(moves))
        return [self.refresh_stored_cloak(uid) for uid, _ in moves]

    def submit_location_update(
        self, uid: object, point: Point, seq: int, profile: PrivacyProfile
    ) -> str:
        """Send a location update over the (possibly faulty) client ->
        anonymizer channel.

        ``seq`` is the client's per-user monotone sequence number; the
        receiver applies each sequence number at most once, so drops,
        duplicates and reorders are safe.  The update carries the
        profile, letting an anonymizer that lost the user's state
        re-register them (the heal path).  Returns the acknowledged
        outcome (``applied`` / ``stale`` / ``recovered``); raises
        :class:`~repro.errors.UpdateDeliveryError` when the retry budget
        is exhausted.  Without a resilience runtime this falls through
        to the lossless :meth:`update_location`.
        """
        if self.resilience is None:
            self.update_location(uid, point)
            return "applied"
        if not isinstance(uid, str):
            raise TypeError(
                "resilient deployments require string user ids (the update "
                f"wire format carries the uid as UTF-8), got {uid!r}"
            )
        return self.resilience.send_update(uid, seq, point, profile)

    def remove_user(self, uid: object) -> None:
        self.anonymizer.deregister(uid)
        self.server.remove_private(uid)

    def set_profile(self, uid: object, profile: PrivacyProfile) -> None:
        """Change a user's privacy profile and refresh their stored
        cloak accordingly."""
        self.anonymizer.set_profile(uid, profile)
        self.refresh_stored_cloak(uid)

    # ------------------------------------------------------------------
    # Public data (bypasses the anonymizer)
    # ------------------------------------------------------------------
    def add_public_target(self, oid: object, point: Point) -> None:
        self.server.add_public(oid, point)

    def add_public_targets(self, entries: dict[object, Point]) -> None:
        self.server.add_public_bulk(entries)

    # ------------------------------------------------------------------
    # Private queries (through the anonymizer, timed end to end)
    # ------------------------------------------------------------------
    def query_nearest_public(
        self, uid: object, num_filters: int = 4
    ) -> PrivateQueryResult:
        """"Where is my nearest gas station?" — private query over
        public data, with the Figure 17 timing decomposition."""
        with _telemetry.query_scope("nn_public"):
            t0 = monotonic()
            cloak = self.cloak_for(uid)
            t1 = monotonic()
            candidates = self.server.nn_public(cloak.region, num_filters)
            t2 = monotonic()
            candidates = self._deliver(candidates)
            # The client's exact location never left the client; the
            # facade borrows it from the trusted anonymizer to emulate
            # the local refinement step.
            answer = candidates.refine_nearest(self._refine_location(uid))
        return PrivateQueryResult(
            cloak=cloak,
            candidates=candidates,
            answer=answer,
            anonymizer_seconds=t1 - t0,
            processing_seconds=t2 - t1,
            transmission_seconds=self.transmission.time_for(len(candidates)),
        )

    def query_k_nearest_public(
        self, uid: object, k: int, num_filters: int = 4
    ) -> PrivateQueryResult:
        """"Where are my k nearest gas stations?" — the kNN extension,
        refined locally to the exact ordered answer."""
        with _telemetry.query_scope("knn_public"):
            t0 = monotonic()
            cloak = self.cloak_for(uid)
            t1 = monotonic()
            candidates = self.server.knn_public(cloak.region, k, num_filters)
            t2 = monotonic()
            candidates = self._deliver(candidates)
            answer = tuple(
                candidates.refine_k_nearest(self._refine_location(uid), k)
            )
        return PrivateQueryResult(
            cloak=cloak,
            candidates=candidates,
            answer=answer,
            anonymizer_seconds=t1 - t0,
            processing_seconds=t2 - t1,
            transmission_seconds=self.transmission.time_for(len(candidates)),
        )

    def query_nearest_private(
        self,
        uid: object,
        num_filters: int = 4,
        policy: OverlapPolicy | None = None,
    ) -> PrivateQueryResult:
        """"Where is my nearest buddy?" — private query over private
        data; the requester's own record is excluded."""
        with _telemetry.query_scope("nn_private"):
            t0 = monotonic()
            cloak = self.cloak_for(uid)
            t1 = monotonic()
            candidates = self.server.nn_private(
                cloak.region, num_filters, policy=policy, exclude=uid
            )
            t2 = monotonic()
            candidates = self._deliver(candidates)
            answer = (
                candidates.refine_nearest(
                    self._refine_location(uid), by="center"
                )
                if len(candidates)
                else None
            )
        return PrivateQueryResult(
            cloak=cloak,
            candidates=candidates,
            answer=answer,
            anonymizer_seconds=t1 - t0,
            processing_seconds=t2 - t1,
            transmission_seconds=self.transmission.time_for(len(candidates)),
        )

    def query_range_public(self, uid: object, radius: float) -> PrivateQueryResult:
        """"Which gas stations are within `radius` of me?" """
        with _telemetry.query_scope("range_public"):
            t0 = monotonic()
            cloak = self.cloak_for(uid)
            t1 = monotonic()
            candidates = self.server.range_public(cloak.region, radius)
            t2 = monotonic()
            candidates = self._deliver(candidates)
            exact = candidates.refine_within(
                self._refine_location(uid), radius
            )
        return PrivateQueryResult(
            cloak=cloak,
            candidates=candidates,
            answer=exact,
            anonymizer_seconds=t1 - t0,
            processing_seconds=t2 - t1,
            transmission_seconds=self.transmission.time_for(len(candidates)),
        )

    def query_batch(
        self, queries: Sequence[tuple], num_filters: int = 4
    ) -> list[PrivateQueryResult]:
        """Answer many private queries over public data in one pass.

        Each element of ``queries`` is ``(uid, query_type)`` or
        ``(uid, query_type, param)`` with ``query_type`` one of
        ``"nn_public"`` / ``"knn_public"`` / ``"range_public"`` and
        ``param`` the ``k`` (kNN) or ``radius`` (range).  Users sharing
        a cloak (co-located, same profile) hit the anonymizer's cloak
        cache and then collapse to a single processor execution inside
        the server's :class:`~repro.processor.BatchQueryEngine`; answers
        are refined per user exactly as in the one-at-a-time facade
        methods.  The timing decomposition is amortized: each result
        carries an equal share of the batch's phase times.
        """
        if not queries:
            return []
        with _telemetry.query_scope("batch_public"):
            t0 = monotonic()
            parsed: list[tuple[object, str, float]] = []
            for spec in queries:
                uid, query_type = spec[0], spec[1]
                param = spec[2] if len(spec) > 2 else (
                    1 if query_type == "knn_public" else 0.0
                )
                parsed.append((uid, query_type, param))
            # Batched cloaking: the parallel runtime groups the batch by
            # owning shard and ships one frame per worker instead of one
            # round trip per query.  Results are identical to the
            # one-at-a-time path, so only transport changes; resilient
            # deployments keep the per-query guarded path.
            cloak_many = getattr(self.anonymizer, "cloak_many", None)
            if self.resilience is None and cloak_many is not None:
                cloaks = cloak_many([uid for uid, _, _ in parsed])
            else:
                cloaks = [self.cloak_for(uid) for uid, _, _ in parsed]
            t1 = monotonic()
            requests = []
            for (uid, query_type, param), cloak in zip(parsed, cloaks):
                if query_type == "knn_public":
                    requests.append(
                        BatchRequest(
                            query_type, cloak.region, k=int(param),
                            num_filters=num_filters,
                        )
                    )
                elif query_type == "range_public":
                    requests.append(
                        BatchRequest(query_type, cloak.region, radius=float(param))
                    )
                elif query_type == "nn_public":
                    requests.append(
                        BatchRequest(
                            query_type, cloak.region, num_filters=num_filters
                        )
                    )
                else:
                    raise ValueError(
                        "query_batch supports public-data query types, "
                        f"got {query_type!r}"
                    )
            candidate_lists = self.server.run_batch(requests)
            t2 = monotonic()
        anonymizer_share = (t1 - t0) / len(queries)
        processing_share = (t2 - t1) / len(queries)
        results = []
        # Batch answers return over the trusted in-process path even
        # under a resilience runtime: the batch engine is a server-side
        # aggregation whose per-query response-channel emulation is the
        # single-query facade's job.
        for (uid, query_type, param), cloak, candidates in zip(
            parsed, cloaks, candidate_lists
        ):
            location = self._refine_location(uid)
            if query_type == "nn_public":
                answer = candidates.refine_nearest(location)
            elif query_type == "knn_public":
                answer = candidates.refine_k_nearest(location, int(param))
            else:
                answer = candidates.refine_within(location, float(param))
            results.append(
                PrivateQueryResult(
                    cloak=cloak,
                    candidates=candidates,
                    answer=answer,
                    anonymizer_seconds=anonymizer_share,
                    processing_seconds=processing_share,
                    transmission_seconds=self.transmission.time_for(len(candidates)),
                )
            )
        return results

    # ------------------------------------------------------------------
    # Public queries (no anonymizer involved)
    # ------------------------------------------------------------------
    def count_users_in(self, region: Rect) -> RangeCountResult:
        """Administrator query: how many mobile users are in ``region``
        — answered from the stored blurred information only."""
        return self.server.count_private(region)

    def nearest_user_to(self, point: Point, estimate_probabilities: bool = False):
        """Administrator query: which mobile user could be nearest to an
        exact point (e.g. an incident location) — answered as a
        possible-NN set over the stored cloaked regions."""
        return self.server.possible_nn_private(point, estimate_probabilities)

    def density_map(self, resolution: int = 16):
        """Administrator query: the expected-population density map of
        the whole service area, from cloaked regions only."""
        return self.server.density_private(self.bounds, resolution)
