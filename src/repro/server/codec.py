"""Binary wire codec for candidate-list records.

Figure 17's transmission model assumes "a data record is of size 64
bytes".  This module makes that record concrete: a fixed 64-byte binary
layout for one candidate entry, so the analytic model and an actual
serialized payload agree byte-for-byte.

Record layout (little-endian, 64 bytes):

========  =====  ==========================================
offset    size   field
========  =====  ==========================================
0         4      magic ``b"CSPR"``
4         2      format version (currently 1)
6         2      flags (bit 0: region is a degenerate point)
8         32     region: x_min, y_min, x_max, y_max as f64
40        24     object id, UTF-8, NUL-padded
========  =====  ==========================================

Object ids longer than 24 UTF-8 bytes are rejected rather than silently
truncated — ids are identity, not payload.
"""

from __future__ import annotations

import struct
import zlib

from repro.geometry import Rect
from repro.processor.candidate import CandidateList

__all__ = [
    "RECORD_SIZE",
    "encode_record",
    "decode_record",
    "encode_candidate_list",
    "decode_candidate_list",
]

RECORD_SIZE = 64
_MAGIC = b"CSPR"
_VERSION = 1
_FLAG_POINT = 0x0001
_STRUCT = struct.Struct("<4sHH4d24s")
assert _STRUCT.size == RECORD_SIZE

# magic, version, num_filters, count, CRC-32 of the body (uint32 in a
# q slot for layout compatibility; it was a reserved-zero field before
# integrity checking landed, and 0 still means "no checksum").
_HEADER = struct.Struct("<4sHHIq")
_LIST_MAGIC = b"CLST"


def encode_record(oid: object, region: Rect) -> bytes:
    """Serialize one candidate entry to exactly 64 bytes."""
    oid_bytes = str(oid).encode("utf-8")
    if len(oid_bytes) > 24:
        raise ValueError(f"object id too long for the wire format: {oid!r}")
    flags = _FLAG_POINT if region.is_degenerate() else 0
    return _STRUCT.pack(
        _MAGIC,
        _VERSION,
        flags,
        region.x_min,
        region.y_min,
        region.x_max,
        region.y_max,
        oid_bytes,
    )


def decode_record(payload: bytes) -> tuple[str, Rect]:
    """Deserialize one 64-byte record to ``(oid, region)``."""
    if len(payload) != RECORD_SIZE:
        raise ValueError(f"record must be {RECORD_SIZE} bytes, got {len(payload)}")
    magic, version, _flags, x_min, y_min, x_max, y_max, oid_bytes = _STRUCT.unpack(
        payload
    )
    if magic != _MAGIC:
        raise ValueError("bad record magic")
    if version != _VERSION:
        raise ValueError(f"unsupported record version {version}")
    oid = oid_bytes.rstrip(b"\x00").decode("utf-8")
    return oid, Rect(x_min, y_min, x_max, y_max)


def encode_candidate_list(candidates: CandidateList) -> bytes:
    """Serialize a whole candidate list: a 20-byte header (magic,
    version, filter count, record count, body CRC-32) followed by one
    64-byte record per candidate.  The payload length is exactly the
    quantity the Figure 17 transmission model charges for, plus the
    fixed header.

    The CRC covers the entire payload (with the CRC slot itself read as
    zero), so any single corrupted byte on the wire — header or record —
    makes the whole list undecodable; the resilience layer's retry loop
    re-requests it instead of refining wrong candidates.
    """
    body = b"".join(encode_record(oid, rect) for oid, rect in candidates.items)
    blank_header = _HEADER.pack(
        _LIST_MAGIC, _VERSION, candidates.num_filters, len(candidates), 0
    )
    crc = zlib.crc32(blank_header + body)
    header = _HEADER.pack(
        _LIST_MAGIC, _VERSION, candidates.num_filters, len(candidates), crc
    )
    return header + body


def decode_candidate_list(payload: bytes) -> CandidateList:
    """Deserialize a candidate-list payload.

    The search region is not shipped (the client has no use for it), so
    the decoded list carries the union of candidate regions as its
    ``search_region`` stand-in.
    """
    if len(payload) < _HEADER.size:
        raise ValueError("payload shorter than the list header")
    magic, version, num_filters, count, crc = _HEADER.unpack_from(payload)
    if magic != _LIST_MAGIC:
        raise ValueError("bad candidate-list magic")
    if version != _VERSION:
        raise ValueError(f"unsupported list version {version}")
    expected = _HEADER.size + count * RECORD_SIZE
    if len(payload) != expected:
        raise ValueError(
            f"payload length {len(payload)} does not match {count} records"
        )
    if crc != 0:  # 0 = legacy payload without a checksum
        blanked = payload[:12] + b"\x00" * 8 + payload[20:]
        if crc != zlib.crc32(blanked):
            raise ValueError(
                "candidate list failed its CRC check (corrupt payload)"
            )
    items = []
    for i in range(count):
        start = _HEADER.size + i * RECORD_SIZE
        items.append(decode_record(payload[start : start + RECORD_SIZE]))
    if items:
        region = items[0][1]
        for _oid, rect in items[1:]:
            region = region.union(rect)
    else:
        region = Rect(0.0, 0.0, 0.0, 0.0)
    return CandidateList(
        items=tuple(items), search_region=region, num_filters=num_filters
    )
