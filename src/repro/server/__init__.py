"""The server layer: Casper facade, database server, client, network model."""

from repro.server.casper import Casper
from repro.server.client import MobileClient
from repro.server.database import LocationServer
from repro.server.messages import PrivateQueryResult
from repro.server.network import TransmissionModel

__all__ = [
    "Casper",
    "MobileClient",
    "LocationServer",
    "PrivateQueryResult",
    "TransmissionModel",
]
