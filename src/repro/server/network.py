"""Transmission cost model for candidate-list shipping.

Figure 17's end-to-end evaluation assumes "a data record is of size 64
bytes transmitted over a channel of bandwidth 100 Mbps".  The model also
carries an optional fixed per-message latency for what-if analyses
(zero by default, matching the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import transmission_seconds

__all__ = ["TransmissionModel"]


@dataclass(frozen=True, slots=True)
class TransmissionModel:
    """Analytic downlink model for server-to-client answers."""

    record_bytes: int = 64
    bandwidth_mbps: float = 100.0
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.record_bytes <= 0 or self.bandwidth_mbps <= 0:
            raise ValueError("record_bytes and bandwidth_mbps must be positive")
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")

    def time_for(self, num_records: int) -> float:
        """Seconds to deliver ``num_records`` answer records."""
        return self.latency_seconds + transmission_seconds(
            num_records, self.record_bytes, self.bandwidth_mbps
        )
