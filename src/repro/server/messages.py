"""Result records for end-to-end query interactions.

``PrivateQueryResult`` carries the Figure 17 decomposition: time spent
at the location anonymizer, at the privacy-aware query processor, and in
candidate-list transmission, together with the candidate list itself and
the exact answer the client computed locally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymizer import CloakedRegion
from repro.processor import CandidateList

__all__ = ["PrivateQueryResult"]


@dataclass(frozen=True)
class PrivateQueryResult:
    """One private query's full round trip."""

    cloak: CloakedRegion
    candidates: CandidateList
    answer: object
    anonymizer_seconds: float
    processing_seconds: float
    transmission_seconds: float

    @property
    def total_seconds(self) -> float:
        """End-to-end time (the Figure 17 stack height)."""
        return (
            self.anonymizer_seconds
            + self.processing_seconds
            + self.transmission_seconds
        )

    @property
    def candidate_count(self) -> int:
        return len(self.candidates)
