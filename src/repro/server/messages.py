"""Re-export shim: query-result records now live in
:mod:`repro.messages` (one home for every cross-plane message type).
Import from there in new code; this module stays for compatibility.
"""

from __future__ import annotations

from repro.messages import PrivateQueryResult

__all__ = ["PrivateQueryResult"]
