"""Exception hierarchy for the Casper reproduction.

Every error the library raises deliberately derives from
:class:`CasperError` so applications can catch the whole family with one
``except`` clause while tests can assert on the precise subclass.
"""

from __future__ import annotations

__all__ = [
    "CasperError",
    "UnknownUserError",
    "DuplicateUserError",
    "ProfileUnsatisfiableError",
    "InvalidProfileError",
    "OutOfBoundsError",
    "EmptyDatasetError",
    "DegradedModeError",
    "UpdateDeliveryError",
    "QueryDeliveryError",
]


class CasperError(Exception):
    """Base class of all library-specific errors."""


class UnknownUserError(CasperError, KeyError):
    """An operation referenced a user id that is not registered."""

    def __init__(self, uid: object) -> None:
        super().__init__(f"unknown user id: {uid!r}")
        self.uid = uid


class DuplicateUserError(CasperError, ValueError):
    """A registration reused an already-registered user id."""

    def __init__(self, uid: object) -> None:
        super().__init__(f"user id already registered: {uid!r}")
        self.uid = uid


class InvalidProfileError(CasperError, ValueError):
    """A privacy profile had out-of-range parameters."""


class ProfileUnsatisfiableError(CasperError):
    """A privacy profile cannot be satisfied by the current system state.

    Raised when ``k`` exceeds the registered population or ``A_min``
    exceeds the service area — the preconditions Algorithm 1 states.
    """


class OutOfBoundsError(CasperError, ValueError):
    """A location or region fell outside the service area."""


class EmptyDatasetError(CasperError):
    """A query requires at least one target object but none are stored."""


class DegradedModeError(CasperError):
    """An operation was refused rather than served with weaker privacy.

    The resilience layer's contract is *degrade availability, never
    privacy*: when faults (crashes, lost state, an unreachable channel)
    leave no way to produce an answer whose cloak provably satisfies the
    user's ``(k, A_min)``, the operation fails with this explicit error
    instead of silently shipping a weaker cloak or a stale answer.
    """


class UpdateDeliveryError(DegradedModeError):
    """A location update exhausted its retry budget undelivered.

    The anonymizer keeps serving the user's last acknowledged state;
    the client should re-send on its next movement.
    """


class QueryDeliveryError(DegradedModeError):
    """A query's candidate list could not be delivered intact within the
    retry budget (every copy dropped or corrupt)."""
