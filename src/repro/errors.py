"""Exception hierarchy for the Casper reproduction.

Every error the library raises deliberately derives from
:class:`CasperError` so applications can catch the whole family with one
``except`` clause while tests can assert on the precise subclass.
"""

from __future__ import annotations

__all__ = [
    "CasperError",
    "UnknownUserError",
    "DuplicateUserError",
    "ProfileUnsatisfiableError",
    "InvalidProfileError",
    "OutOfBoundsError",
    "EmptyDatasetError",
]


class CasperError(Exception):
    """Base class of all library-specific errors."""


class UnknownUserError(CasperError, KeyError):
    """An operation referenced a user id that is not registered."""

    def __init__(self, uid: object) -> None:
        super().__init__(f"unknown user id: {uid!r}")
        self.uid = uid


class DuplicateUserError(CasperError, ValueError):
    """A registration reused an already-registered user id."""

    def __init__(self, uid: object) -> None:
        super().__init__(f"user id already registered: {uid!r}")
        self.uid = uid


class InvalidProfileError(CasperError, ValueError):
    """A privacy profile had out-of-range parameters."""


class ProfileUnsatisfiableError(CasperError):
    """A privacy profile cannot be satisfied by the current system state.

    Raised when ``k`` exceeds the registered population or ``A_min``
    exceeds the service area — the preconditions Algorithm 1 states.
    """


class OutOfBoundsError(CasperError, ValueError):
    """A location or region fell outside the service area."""


class EmptyDatasetError(CasperError):
    """A query requires at least one target object but none are stored."""
