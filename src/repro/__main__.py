"""Command-line interface: ``python -m repro <command>``.

Commands
--------
figures [names...]     regenerate the paper's figures (default: all);
                       honours CASPER_BENCH_SCALE (small | paper)
demo                   run a compact end-to-end demonstration
simulate               drive the full stack for N ticks with an
                       exactness audit and per-tick metrics
lint                   run casperlint (privacy-boundary, determinism,
                       index-contract and correctness rules)
metrics                run an instrumented example and print its
                       privacy-screened telemetry (JSON or Prometheus)
chaos                  replay a workload under a named fault scenario
                       and audit privacy + SLOs (the CI resilience gate)
info                   print the library version and component inventory
"""

from __future__ import annotations

import argparse
import sys

import repro


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.evaluation.runner import FIGURES, main

    names = args.names or None
    if names:
        unknown = [n for n in names if n not in FIGURES]
        if unknown:
            print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
            print(f"available: {', '.join(FIGURES)}", file=sys.stderr)
            return 2
    if args.parallel < 1:
        print("--parallel must be >= 1", file=sys.stderr)
        return 2
    main(
        names,
        charts=not args.no_charts,
        parallel=args.parallel,
        telemetry_path=args.telemetry,
    )
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    import numpy as np

    from repro import Casper, MobileClient, Point, PrivacyProfile, Rect

    rng = np.random.default_rng(0)
    casper = Casper(Rect(0, 0, 1, 1), pyramid_height=8)
    casper.add_public_targets(
        {
            f"station-{i}": Point(float(x), float(y))
            for i, (x, y) in enumerate(rng.random((200, 2)))
        }
    )
    for i, (x, y) in enumerate(rng.random((400, 2))):
        casper.register_user(
            i, Point(float(x), float(y)), PrivacyProfile(k=int(rng.integers(2, 30)))
        )
    me = MobileClient(casper, "demo", Point(0.5, 0.5), PrivacyProfile(k=20))
    result = me.nearest_public()
    print(f"registered users : {casper.anonymizer.num_users}")
    print(f"cloaked region   : {result.cloak.region.as_tuple()}")
    print(f"candidate list   : {result.candidate_count} of "
          f"{casper.server.num_public} targets")
    print(f"exact answer     : {result.answer}")
    print(f"end-to-end time  : {result.total_seconds * 1e3:.3f} ms")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simulation import CitySimulation, SimulationConfig

    config = SimulationConfig(
        num_users=args.users,
        num_targets=args.targets,
        anonymizer=args.anonymizer,
        queries_per_tick=args.queries,
        seed=args.seed,
    )
    sim = CitySimulation(config)
    print(f"simulating {args.ticks} ticks ...")
    for tick in range(args.ticks):
        report = sim.step()
        print(
            f"tick {tick:>3}: {report.queries} queries, "
            f"avg {report.avg_candidates:.1f} candidates, "
            f"avg {report.avg_end_to_end_seconds * 1e3:.3f} ms end-to-end, "
            f"audits {report.audits_passed}/"
            f"{report.audits_passed + report.audits_failed}"
        )
        if report.audits_failed:
            print("AUDIT FAILURE — a candidate list missed the true answer")
            return 1
    density = sim.casper.density_map(resolution=12)
    print("\nexpected-population density (from cloaked data only):")
    print(density.render())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_from_args

    return run_from_args(args)


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run one example under observability and print its telemetry.

    The example's own stdout is suppressed — the command's output is
    exactly one telemetry document, so it can be piped to ``jq`` or a
    Prometheus textfile collector.  Every label value and span
    attribute has already been screened twice (at record time and at
    ``TelemetryExport`` construction); a leak aborts with exit code 3.
    """
    import contextlib
    import io
    import os
    import runpy
    from pathlib import Path

    from repro.observability import TelemetryExport, TelemetryLeakError, enabled

    script = Path("examples") / f"{args.example}.py"
    if not script.is_file():
        candidates = sorted(p.stem for p in Path("examples").glob("*.py"))
        print(f"no such example: {script}", file=sys.stderr)
        if candidates:
            print(f"available: {', '.join(candidates)}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    # Examples honour CASPER_SHARDS (and CASPER_PARALLEL): their facades
    # build the sharded anonymizer runtime — in-process or as worker
    # processes over the wire — whose per-shard occupancy, cache and
    # routing counters flow through the same screened telemetry (shard
    # ids only).
    previous_shards = os.environ.get("CASPER_SHARDS")
    previous_parallel = os.environ.get("CASPER_PARALLEL")
    os.environ["CASPER_SHARDS"] = str(args.shards)
    os.environ["CASPER_PARALLEL"] = "1" if args.parallel else "0"
    try:
        with enabled() as session:
            with contextlib.redirect_stdout(io.StringIO()):
                runpy.run_path(str(script), run_name="__main__")
            try:
                export = TelemetryExport.from_observability(session)
            except TelemetryLeakError as leak:
                print(f"telemetry leak: {leak}", file=sys.stderr)
                return 3
    finally:
        if previous_shards is None:
            os.environ.pop("CASPER_SHARDS", None)
        else:
            os.environ["CASPER_SHARDS"] = previous_shards
        if previous_parallel is None:
            os.environ.pop("CASPER_PARALLEL", None)
        else:
            os.environ["CASPER_PARALLEL"] = previous_parallel
    if args.format == "prometheus":
        sys.stdout.write(export.to_prometheus())
    else:
        print(export.to_json())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Replay a workload under a named fault scenario and audit it.

    Exit codes: 0 — clean run (or no ``--check``); 1 — the gate failed
    (a privacy violation, an SLO bound breach, or a non-deterministic
    report); 2 — bad arguments.  ``--check`` is what the CI resilience
    job runs: privacy violations are always fatal, the SLO bounds are
    tunable per scenario.
    """
    import json
    from pathlib import Path

    from repro.resilience import SCENARIOS, ChaosWorkload, get_scenario, run_chaos

    if args.scenario not in SCENARIOS:
        print(f"unknown scenario: {args.scenario}", file=sys.stderr)
        print(f"available: {', '.join(sorted(SCENARIOS))}", file=sys.stderr)
        return 2
    plan = get_scenario(args.scenario, seed=args.seed)
    try:
        workload = ChaosWorkload(
            users=args.users,
            targets=args.targets,
            steps=args.steps,
            seed=args.workload_seed,
            anonymizer=args.anonymizer,
            continuous_knn=args.continuous_knn,
            shards=args.shards,
            parallel=args.parallel,
        )
    except ValueError as exc:
        print(f"bad workload: {exc}", file=sys.stderr)
        return 2

    report = run_chaos(plan, workload)
    slo = report.slo
    print(
        f"scenario {report.scenario} (seed {report.seed}): "
        f"{report.runtime['faults_injected']} faults injected, "
        f"{slo['queries_answered']}/{slo['queries_total']} queries answered "
        f"({slo['queries_degraded']} explicitly degraded), "
        f"match ratio {slo['match_ratio']}, "
        f"privacy violations {report.privacy_violations}"
    )
    print(f"trace digest {report.trace_digest}")

    failures: list[str] = []
    if args.check or args.verify_determinism:
        replay = run_chaos(plan, workload)
        if replay.to_json() != report.to_json():
            failures.append("report is not deterministic (replay diverged)")
    if args.check:
        if report.privacy_violations:
            failures.append(
                f"{report.privacy_violations} privacy violation(s) — a cloak "
                f"below its user's (k, A_min) was emitted under faults"
            )
        if float(slo["availability"]) < args.min_availability:
            failures.append(
                f"availability {slo['availability']} < "
                f"bound {args.min_availability}"
            )
        if float(slo["match_ratio"]) < args.min_match_ratio:
            failures.append(
                f"match ratio {slo['match_ratio']} < bound {args.min_match_ratio}"
            )

    if args.out:
        Path(args.out).write_text(report.to_json(indent=2) + "\n")
        print(f"wrote {args.out}")
    if not args.out and args.json:
        print(report.to_json(indent=2))
    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    if args.check:
        print("resilience gate OK")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    print(f"repro {repro.__version__} — Casper (VLDB 2006) reproduction")
    print("components: geometry, spatial (r-tree/grid/quadtree/kd-tree/"
          "brute), mobility, anonymizer (basic/adaptive + baselines), "
          "processor (NN/kNN/range/aggregate, 1-2-4 filters), continuous, "
          "server, workloads, evaluation")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Casper (VLDB 2006) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command")

    figures = sub.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument("names", nargs="*", help="figure names, e.g. fig13")
    figures.add_argument(
        "--no-charts", action="store_true", help="tables only, no ASCII charts"
    )
    figures.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="run figures across N worker processes (default: serial)",
    )
    figures.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="also capture per-figure telemetry snapshots to this JSON file",
    )
    figures.set_defaults(func=_cmd_figures)

    demo = sub.add_parser("demo", help="run a compact end-to-end demo")
    demo.set_defaults(func=_cmd_demo)

    from repro.anonymizer.policy import available_policies

    simulate = sub.add_parser("simulate", help="drive the full stack")
    simulate.add_argument("--ticks", type=int, default=5)
    simulate.add_argument("--users", type=int, default=1000)
    simulate.add_argument("--targets", type=int, default=500)
    simulate.add_argument("--queries", type=int, default=20)
    simulate.add_argument(
        "--anonymizer", choices=available_policies(), default="adaptive"
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(func=_cmd_simulate)

    lint = sub.add_parser(
        "lint", help="run the casperlint static analysis suite"
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    metrics = sub.add_parser(
        "metrics",
        help="run an instrumented example and print its telemetry",
    )
    metrics.add_argument(
        "--example", default="quickstart", metavar="NAME",
        help="examples/<NAME>.py to run (default: quickstart)",
    )
    metrics.add_argument(
        "--format", choices=("json", "prometheus"), default="json",
        help="output format (default: json)",
    )
    metrics.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run the example on an N-shard anonymizer (exported as "
        "CASPER_SHARDS; per-shard counters appear in the telemetry)",
    )
    metrics.add_argument(
        "--parallel", action="store_true",
        help="run each shard as its own worker process over the wire "
        "protocol (exported as CASPER_PARALLEL=1; adds per-worker "
        "round-trip and batch-size metrics)",
    )
    metrics.set_defaults(func=_cmd_metrics)

    chaos = sub.add_parser(
        "chaos",
        help="replay a workload under a fault scenario and audit it",
    )
    chaos.add_argument(
        "--scenario", default="drop-heavy", metavar="NAME",
        help="named fault scenario (see repro.resilience.SCENARIOS; "
        "default: drop-heavy)",
    )
    chaos.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's fault seed",
    )
    chaos.add_argument("--users", type=int, default=32)
    chaos.add_argument("--targets", type=int, default=48)
    chaos.add_argument("--steps", type=int, default=240)
    chaos.add_argument(
        "--workload-seed", type=int, default=0,
        help="seed of the replayed workload (independent of the fault seed)",
    )
    chaos.add_argument(
        "--anonymizer", choices=available_policies(), default="adaptive"
    )
    chaos.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="anonymizer shard count for the replayed workload "
        "(default 1 = the single-pyramid implementations)",
    )
    chaos.add_argument(
        "--continuous-knn", type=int, default=0, metavar="N",
        help="safe-region continuous kNN (k=3) queries registered on the "
        "monitor (default 0; the continuous-drift scenario is aimed at "
        "this path)",
    )
    chaos.add_argument(
        "--parallel", action="store_true",
        help="run the faulted deployment's shards as worker processes "
        "over the wire protocol (the baseline stays in-process, so "
        "matching answers also witness cross-runtime equivalence)",
    )
    chaos.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the full chaos report JSON here",
    )
    chaos.add_argument(
        "--json", action="store_true",
        help="print the full report JSON to stdout (implied off when --out)",
    )
    chaos.add_argument(
        "--check", action="store_true",
        help="gate mode (CI): fail on privacy violations, SLO bound "
        "breaches, or a non-deterministic report",
    )
    chaos.add_argument(
        "--min-availability", type=float, default=0.9, metavar="R",
        help="--check bound: minimum answered/queried ratio (default 0.9)",
    )
    chaos.add_argument(
        "--min-match-ratio", type=float, default=0.5, metavar="R",
        help="--check bound: minimum baseline-match ratio (default 0.5)",
    )
    chaos.add_argument(
        "--verify-determinism", action="store_true",
        help="re-run the scenario and require a byte-identical report",
    )
    chaos.set_defaults(func=_cmd_chaos)

    info = sub.add_parser("info", help="version and component inventory")
    info.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    if not hasattr(args, "func"):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
