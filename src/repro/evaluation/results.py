"""Result containers and table rendering for the experiment harness.

Every experiment function returns :class:`ExperimentResult` objects —
one per figure panel — that print the same series the paper plots, as
aligned text tables (the benchmark harness tees them into
``bench_output.txt`` for EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Series", "ExperimentResult"]


@dataclass
class Series:
    """One plotted line: a label and y-values aligned with the panel's
    x-values."""

    label: str
    values: list[float]

    def __post_init__(self) -> None:
        self.values = [float(v) for v in self.values]


@dataclass
class ExperimentResult:
    """One figure panel's data."""

    figure: str
    title: str
    x_label: str
    y_label: str
    x_values: list[object]
    series: list[Series] = field(default_factory=list)
    notes: str = ""

    def add_series(self, label: str, values: list[float]) -> None:
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} values for "
                f"{len(self.x_values)} x-values"
            )
        self.series.append(Series(label, list(values)))

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format_table(self) -> str:
        """Render the panel as an aligned text table."""
        headers = [self.x_label] + [s.label for s in self.series]
        rows = []
        for i, x in enumerate(self.x_values):
            row = [str(x)]
            for s in self.series:
                value = s.values[i]
                if value == 0:
                    row.append("0")
                elif abs(value) >= 1000:
                    row.append(f"{value:,.0f}")
                elif abs(value) >= 1:
                    row.append(f"{value:.3f}")
                else:
                    row.append(f"{value:.6f}")
            rows.append(row)
        widths = [
            max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
            for c in range(len(headers))
        ]
        lines = [
            f"== {self.figure}: {self.title} ==",
            f"   ({self.y_label})",
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        if self.notes:
            lines.append(f"   note: {self.notes}")
        return "\n".join(lines)

    def print(self) -> None:
        print(self.format_table())
        print()
