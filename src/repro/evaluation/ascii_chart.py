"""Terminal-friendly charts for experiment results.

The paper presents its evaluation as line charts; the harness renders
the same series as ASCII charts so a text console (or EXPERIMENTS.md)
can show the *shape* of each result next to the raw numbers.
"""

from __future__ import annotations

from repro.evaluation.results import ExperimentResult

__all__ = ["render_chart"]

#: Glyphs assigned to series in order.
_MARKERS = "o*x+#@%&"


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.2e}"


def render_chart(
    result: ExperimentResult, width: int = 60, height: int = 14
) -> str:
    """Render one panel as an ASCII line chart.

    X positions are the (categorical) x-values, evenly spaced; Y is
    linearly scaled to the data range.  NaN points are skipped.
    """
    if not result.series or not result.x_values:
        return f"== {result.figure}: {result.title} == (no data)"
    values = [
        v
        for s in result.series
        for v in s.values
        if v == v  # drop NaN
    ]
    if not values:
        return f"== {result.figure}: {result.title} == (all NaN)"
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0
    n = len(result.x_values)
    columns = [
        0 if n == 1 else round(i * (width - 1) / (n - 1)) for i in range(n)
    ]
    grid = [[" "] * width for _ in range(height)]
    for s_idx, series in enumerate(result.series):
        marker = _MARKERS[s_idx % len(_MARKERS)]
        for i, value in enumerate(series.values):
            if value != value:
                continue
            row = round((value - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][columns[i]] = marker

    lines = [f"== {result.figure}: {result.title} =="]
    top_label = _format_value(hi)
    bottom_label = _format_value(lo)
    pad = max(len(top_label), len(bottom_label))
    for r, row in enumerate(grid):
        if r == 0:
            label = top_label.rjust(pad)
        elif r == height - 1:
            label = bottom_label.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(row)}|")
    axis = " " * pad + " +" + "-" * width + "+"
    lines.append(axis)
    first_x, last_x = str(result.x_values[0]), str(result.x_values[-1])
    gap = max(width - len(first_x) - len(last_x), 1)
    lines.append(" " * (pad + 2) + first_x + " " * gap + last_x)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.label}"
        for i, s in enumerate(result.series)
    )
    lines.append(" " * (pad + 2) + f"x: {result.x_label}   y: {result.y_label}")
    lines.append(" " * (pad + 2) + legend)
    return "\n".join(lines)
