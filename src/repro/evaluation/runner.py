"""One-call experiment runner.

``run_experiments`` executes any subset of the paper's figures at the
active scale preset and returns the panels; ``format_report`` renders
them (tables + ASCII charts) as a Markdown-ish document — the engine
behind ``python -m repro figures``.

With ``parallel=N`` the figures run across ``N`` worker processes.
Every figure seeds its own RNGs internally, so the panels a figure
produces are identical whichever process runs it, and the runner
reassembles results in request order — the report is byte-identical to
a serial run (up to the wall-clock timing panels of fig10a/fig17, which
are nondeterministic in *any* mode).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable

from repro.evaluation.ascii_chart import render_chart
from repro.evaluation.experiments import (
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig16,
    run_fig17,
)
from repro.evaluation.experiments.common import ScalePreset, active_scale
from repro.evaluation.results import ExperimentResult

__all__ = ["FIGURES", "run_experiments", "format_report"]


def _fig10(scale: ScalePreset):
    return run_fig10(
        num_users=scale.num_users,
        num_cloaks=scale.num_cloaks,
        trace_ticks=scale.trace_ticks,
    )


def _fig11(scale: ScalePreset):
    return run_fig11(
        user_counts=scale.user_counts,
        num_cloaks=scale.num_cloaks,
        trace_ticks=scale.trace_ticks,
    )


def _fig12(scale: ScalePreset):
    return run_fig12(
        num_users=scale.num_users,
        num_cloaks=scale.num_cloaks,
        trace_ticks=scale.trace_ticks,
    )


def _fig13(scale: ScalePreset):
    return run_fig13(
        target_counts=scale.target_counts,
        num_users=scale.num_users,
        num_queries=scale.num_queries,
    )


def _fig14(scale: ScalePreset):
    return run_fig14(
        target_counts=scale.target_counts,
        num_users=scale.num_users,
        num_queries=scale.num_queries,
    )


def _fig15(scale: ScalePreset):
    return run_fig15(num_targets=scale.num_targets, num_queries=scale.num_queries)


def _fig16(scale: ScalePreset):
    return run_fig16(
        num_targets=scale.num_targets,
        num_users=scale.num_users,
        num_queries=scale.num_queries,
    )


def _fig17(scale: ScalePreset):
    users = 10_000 if scale.name == "paper" else scale.num_users
    targets = 10_000 if scale.name == "paper" else scale.num_targets
    return run_fig17(
        num_users=users, num_targets=targets, num_queries=scale.num_queries
    )


#: Figure name -> runner taking a scale preset.
FIGURES: dict[str, Callable[[ScalePreset], dict[str, ExperimentResult]]] = {
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
    "fig16": _fig16,
    "fig17": _fig17,
}


def _run_figure(task: tuple) -> tuple[str, dict[str, ExperimentResult], dict | None]:
    """Worker entry point: run one figure (must be picklable).

    ``task`` is ``(name, scale)`` or ``(name, scale, capture)``; with
    ``capture`` true the figure runs under a fresh observability
    session and its privacy-screened telemetry snapshot rides along as
    the third element of the result.
    """
    name, scale = task[0], task[1]
    capture = task[2] if len(task) > 2 else False
    if not capture:
        return name, FIGURES[name](scale), None
    from repro.observability import TelemetryExport, enabled

    with enabled() as session:
        panels = FIGURES[name](scale)
        export = TelemetryExport.from_observability(session)
    return name, panels, export.as_dict()


def run_experiments(
    names: list[str] | None = None,
    scale: ScalePreset | None = None,
    parallel: int = 1,
    telemetry: dict[str, dict] | None = None,
) -> dict[str, dict[str, ExperimentResult]]:
    """Run the named figures (all by default); returns
    ``{figure_name: {panel_key: result}}``.

    ``parallel`` > 1 distributes whole figures over that many worker
    processes; the returned mapping is in request order and its panels
    are identical to a serial run (figures seed their RNGs internally).

    Pass a dict as ``telemetry`` to also run every figure instrumented:
    it is filled with ``{figure_name: telemetry snapshot}`` (the
    :class:`~repro.observability.TelemetryExport` dict form, screened
    for location leaks).  The figure *panels* are unaffected — the
    equivalence tests pin them bit-identical either way.
    """
    if scale is None:
        scale = active_scale()
    if names is None:
        names = list(FIGURES)
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        raise ValueError(f"unknown figures: {unknown}; known: {list(FIGURES)}")
    if parallel < 1:
        raise ValueError("parallel must be >= 1")
    capture = telemetry is not None
    tasks = [(n, scale, capture) for n in names]
    if parallel > 1 and len(names) > 1:
        workers = min(parallel, len(names))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outputs = list(pool.map(_run_figure, tasks))
    else:
        outputs = [_run_figure(task) for task in tasks]
    finished = {name: panels for name, panels, _snap in outputs}
    if telemetry is not None:
        telemetry.update(
            {name: snap for name, _panels, snap in outputs if snap is not None}
        )
    return {name: finished[name] for name in names}


def format_report(
    results: dict[str, dict[str, ExperimentResult]],
    charts: bool = True,
) -> str:
    """Render experiment results as a text report."""
    blocks: list[str] = []
    for name, panels in results.items():
        blocks.append(f"# {name}")
        for key in sorted(panels):
            panel = panels[key]
            blocks.append(panel.format_table())
            if charts:
                blocks.append(render_chart(panel))
        blocks.append("")
    return "\n\n".join(blocks)


def main(
    names: list[str] | None = None,
    charts: bool = True,
    parallel: int = 1,
    telemetry_path: str | None = None,
) -> None:
    """Run and print (used by ``python -m repro figures``).

    ``telemetry_path`` additionally captures per-figure telemetry
    snapshots and writes them as one JSON document.
    """
    scale = active_scale()
    print(f"scale preset: {scale.name} "
          f"({scale.num_users} users, {scale.num_targets} targets)")
    start = time.perf_counter()
    snapshots: dict[str, dict] | None = {} if telemetry_path else None
    results = run_experiments(names, scale, parallel=parallel, telemetry=snapshots)
    print(format_report(results, charts=charts))
    if telemetry_path and snapshots is not None:
        import json
        from pathlib import Path

        Path(telemetry_path).write_text(
            json.dumps(snapshots, indent=2, sort_keys=True) + "\n"
        )
        print(f"telemetry snapshots: {telemetry_path} "
              f"({len(snapshots)} figures)")
    print(f"total experiment time: {time.perf_counter() - start:.1f} s")
