"""Evaluation harness: metrics containers and per-figure experiments."""

from repro.evaluation.results import ExperimentResult, Series

__all__ = ["ExperimentResult", "Series"]
