"""Shared machinery for the Section 6 experiments.

Every experiment is a pure function of explicit parameters; the module
also defines two parameter presets:

* ``SMALL`` — scaled-down defaults that complete in seconds on a laptop
  (the benchmark harness's default);
* ``PAPER`` — the paper's full-scale settings (50K users, 10K targets,
  pyramid height 9); select with ``CASPER_BENCH_SCALE=paper``.

Relative trends (basic vs adaptive, 1 vs 2 vs 4 filters) are preserved
at either scale; EXPERIMENTS.md records both the expectation and what we
measured.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.anonymizer import AdaptiveAnonymizer
from repro.errors import ProfileUnsatisfiableError
from repro.geometry import Rect
from repro.mobility import Trace, generate_trace
from repro.workloads import build_scenario

__all__ = [
    "ScalePreset",
    "SMALL",
    "PAPER",
    "active_scale",
    "make_anonymizer",
    "register_population",
    "replay_updates",
    "timed_cloaks",
]

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


@dataclass(frozen=True)
class ScalePreset:
    """Workload sizes for one scale."""

    name: str
    num_users: int
    num_targets: int
    num_queries: int
    num_cloaks: int
    trace_ticks: int
    user_counts: tuple[int, ...]  # Figure 11 sweep
    target_counts: tuple[int, ...]  # Figures 13-14 sweep


SMALL = ScalePreset(
    name="small",
    num_users=4_000,
    num_targets=2_000,
    num_queries=60,
    num_cloaks=400,
    trace_ticks=3,
    user_counts=(500, 1_000, 2_000, 4_000, 8_000),
    target_counts=(500, 1_000, 2_000, 4_000),
)

PAPER = ScalePreset(
    name="paper",
    num_users=50_000,
    num_targets=10_000,
    num_queries=200,
    num_cloaks=2_000,
    trace_ticks=5,
    user_counts=(1_000, 5_000, 10_000, 20_000, 50_000),
    target_counts=(1_000, 2_000, 4_000, 6_000, 8_000, 10_000),
)

#: Smoke-test sizes: every bench finishes in a couple of seconds.  The
#: figures lose statistical weight at this scale (some shape assertions
#: get noisy) — use for plumbing checks, not for EXPERIMENTS.md numbers.
TINY = ScalePreset(
    name="tiny",
    num_users=800,
    num_targets=500,
    num_queries=15,
    num_cloaks=80,
    trace_ticks=1,
    user_counts=(300, 600),
    target_counts=(300, 600),
)

_PRESETS = {"paper": PAPER, "small": SMALL, "tiny": TINY}


def active_scale() -> ScalePreset:
    """The preset selected by ``CASPER_BENCH_SCALE`` (default: small)."""
    name = os.environ.get("CASPER_BENCH_SCALE", "small").lower()
    try:
        return _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown CASPER_BENCH_SCALE {name!r}; "
            f"choose from {sorted(_PRESETS)}"
        ) from None


def make_anonymizer(kind: str, height: int, bounds: Rect = UNIT):
    """Instantiate any registered cloaking policy by name."""
    from repro.anonymizer.policy import get_policy

    return get_policy(kind).single(bounds, height, 8192, None)


def register_population(anonymizer, trace: Trace, profiles) -> None:
    """Register a trace's initial population, then zero the stats so the
    measured phase starts clean."""
    for uid in sorted(trace.initial):
        anonymizer.register(uid, trace.initial[uid], profiles[uid])
    anonymizer.stats.reset()


def replay_updates(anonymizer, trace: Trace) -> float:
    """Replay a trace's updates; returns the wall time spent."""
    start = time.perf_counter()
    for update in trace.all_updates():
        anonymizer.update(update.uid, update.point)
    return time.perf_counter() - start


def timed_cloaks(anonymizer, uids, repeat: int = 1) -> float:
    """Average seconds per cloak request over ``uids`` (unsatisfiable
    profiles — possible in tiny scaled-down populations — are skipped)."""
    done = 0
    start = time.perf_counter()
    for _ in range(repeat):
        for uid in uids:
            try:
                anonymizer.cloak(uid)
            except ProfileUnsatisfiableError:
                continue
            done += 1
    elapsed = time.perf_counter() - start
    return elapsed / done if done else 0.0


def standard_trace(num_users: int, ticks: int, seed: int = 0) -> Trace:
    """The shared movement trace for anonymizer experiments."""
    return generate_trace(num_users, ticks, seed=seed)


def cloaked_query_regions(
    num_users: int,
    num_queries: int,
    height: int = 9,
    k_range: tuple[int, int] = (1, 50),
    seed: int = 0,
) -> list[Rect]:
    """Query regions as the paper produces them: by cloaking users of the
    standard workload (k in [1-50], A_min in [.005-.01]% by default)
    through the adaptive anonymizer."""
    from repro.utils.rng import ensure_rng
    from repro.workloads import uniform_profiles

    trace = generate_trace(num_users, 0, seed=seed)
    profiles = uniform_profiles(num_users, UNIT, k_range=k_range, seed=seed)
    anonymizer = AdaptiveAnonymizer(UNIT, height)
    for uid in sorted(trace.initial):
        anonymizer.register(uid, trace.initial[uid], profiles[uid])
    rng = ensure_rng(seed + 17)
    regions: list[Rect] = []
    for uid in rng.choice(num_users, size=num_queries * 2, replace=False):
        try:
            regions.append(anonymizer.cloak(int(uid)).region)
        except ProfileUnsatisfiableError:
            continue
        if len(regions) == num_queries:
            break
    return regions


def scenario_profiles(num_users: int, k_range=(1, 50), seed: int = 0):
    """Profiles per the paper's default workload."""
    scenario = build_scenario(num_users, k_range=k_range, seed=seed)
    return scenario.profiles
