"""Figure 11 — scalability with the number of registered users.

Two panels over 1K..50K users (scaled presets available): (a) average
cloaking time, (b) average counter updates per location update, basic vs
adaptive.

Paper-shape expectations: basic's cloaking time *falls* as users grow
(denser cells satisfy k lower in the pyramid) while remaining above the
adaptive anonymizer; adaptive's update cost stays below basic's at every
population size.
"""

from __future__ import annotations

from repro.evaluation.experiments.common import (
    UNIT,
    make_anonymizer,
    register_population,
    replay_updates,
    standard_trace,
    timed_cloaks,
)
from repro.evaluation.results import ExperimentResult
from repro.utils.rng import ensure_rng
from repro.workloads import uniform_profiles

__all__ = ["run_fig11"]


def run_fig11(
    user_counts: tuple[int, ...] = (500, 1_000, 2_000, 4_000, 8_000),
    height: int = 9,
    num_cloaks: int = 400,
    trace_ticks: int = 3,
    seed: int = 0,
) -> dict[str, ExperimentResult]:
    """Run both Figure 11 panels; returns them keyed 'a' and 'b'."""
    panel_a = ExperimentResult(
        "Figure 11a", "Cloaking time vs number of users", "users",
        "avg cloaking time per request (seconds)", list(user_counts),
    )
    panel_b = ExperimentResult(
        "Figure 11b", "Maintenance cost vs number of users", "users",
        "avg counter updates per location update", list(user_counts),
    )
    results: dict[str, dict[str, list[float]]] = {
        kind: {"cloak": [], "update": []} for kind in ("basic", "adaptive")
    }
    for num_users in user_counts:
        trace = standard_trace(num_users, trace_ticks, seed=seed)
        profiles = uniform_profiles(num_users, UNIT, seed=seed)
        rng = ensure_rng(seed + 1)
        sample = [
            int(u)
            for u in rng.choice(
                num_users, size=min(num_cloaks, num_users), replace=False
            )
        ]
        for kind in ("basic", "adaptive"):
            anonymizer = make_anonymizer(kind, height)
            register_population(anonymizer, trace, profiles)
            results[kind]["cloak"].append(timed_cloaks(anonymizer, sample))
            anonymizer.stats.reset()
            replay_updates(anonymizer, trace)
            results[kind]["update"].append(
                anonymizer.stats.updates_per_location_update
            )
    for kind in ("basic", "adaptive"):
        panel_a.add_series(kind, results[kind]["cloak"])
        panel_b.add_series(kind, results[kind]["update"])
    return {"a": panel_a, "b": panel_b}
