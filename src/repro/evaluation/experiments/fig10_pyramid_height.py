"""Figure 10 — effect of the pyramid height.

Four panels: (a) average cloaking time per request, (b) average counter
updates per location update, (c) k-accuracy ``k'/k`` per user group,
(d) area-accuracy ``A'/A_min`` per user group; all versus pyramid
height 4..9.

Paper-shape expectations: the adaptive anonymizer's cloaking time beats
the basic one beyond ~6 levels; basic's update cost grows with height
while adaptive's saturates; both accuracy ratios approach 1 (optimal)
with taller pyramids, fastest for relaxed users.
"""

from __future__ import annotations

from statistics import mean

from repro.errors import ProfileUnsatisfiableError
from repro.evaluation.experiments.common import (
    UNIT,
    make_anonymizer,
    register_population,
    replay_updates,
    standard_trace,
    timed_cloaks,
)
from repro.evaluation.results import ExperimentResult
from repro.utils.rng import ensure_rng
from repro.workloads import profiles_for_k_range, uniform_profiles

__all__ = ["run_fig10", "DEFAULT_HEIGHTS"]

DEFAULT_HEIGHTS = (4, 5, 6, 7, 8, 9)

#: User groups for panel (c): the paper's relaxed-to-restrictive k ranges.
K_GROUPS = ((1, 10), (30, 50), (150, 200))

#: A_min groups (fractions of the space) for panel (d), k = 1.
AMIN_FRACTION_GROUPS = ((5e-6, 1e-5), (5e-5, 1e-4), (5e-4, 1e-3))


def run_fig10(
    num_users: int = 4_000,
    heights: tuple[int, ...] = DEFAULT_HEIGHTS,
    num_cloaks: int = 400,
    trace_ticks: int = 3,
    seed: int = 0,
) -> dict[str, ExperimentResult]:
    """Run all four Figure 10 panels; returns them keyed 'a'..'d'."""
    trace = standard_trace(num_users, trace_ticks, seed=seed)
    profiles = uniform_profiles(num_users, UNIT, seed=seed)
    rng = ensure_rng(seed + 1)
    sample = [int(u) for u in rng.choice(num_users, size=min(num_cloaks, num_users), replace=False)]

    panel_a = ExperimentResult(
        "Figure 10a", "Cloaking time vs pyramid height", "height",
        "avg cloaking time per request (seconds)", list(heights),
    )
    panel_b = ExperimentResult(
        "Figure 10b", "Maintenance cost vs pyramid height", "height",
        "avg counter updates per location update", list(heights),
    )
    for kind in ("basic", "adaptive"):
        cloak_times: list[float] = []
        update_costs: list[float] = []
        for height in heights:
            anonymizer = make_anonymizer(kind, height)
            register_population(anonymizer, trace, profiles)
            cloak_times.append(timed_cloaks(anonymizer, sample))
            anonymizer.stats.reset()
            replay_updates(anonymizer, trace)
            update_costs.append(anonymizer.stats.updates_per_location_update)
        panel_a.add_series(kind, cloak_times)
        panel_b.add_series(kind, update_costs)

    panel_c = ExperimentResult(
        "Figure 10c", "k-accuracy vs pyramid height", "height",
        "k'/k (1.0 optimal)", list(heights),
        notes="basic and adaptive produce the same regions; measured on basic",
    )
    for k_lo, k_hi in K_GROUPS:
        group_profiles = profiles_for_k_range(
            num_users, (k_lo, k_hi), seed=seed + 2, a_min=0.0
        )
        ratios_by_height: list[float] = []
        for height in heights:
            anonymizer = make_anonymizer("basic", height)
            register_population(anonymizer, trace, group_profiles)
            ratios = []
            for uid in sample:
                try:
                    region = anonymizer.cloak(uid)
                except ProfileUnsatisfiableError:
                    continue
                ratios.append(region.accuracy_k(group_profiles[uid]))
            ratios_by_height.append(mean(ratios) if ratios else float("nan"))
        panel_c.add_series(f"k in [{k_lo}-{k_hi}]", ratios_by_height)

    panel_d = ExperimentResult(
        "Figure 10d", "Area accuracy vs pyramid height", "height",
        "A'/A_min (1.0 optimal)", list(heights),
        notes="k = 1 for all users; A_min groups are fractions of the space",
    )
    from repro.anonymizer import PrivacyProfile

    for f_lo, f_hi in AMIN_FRACTION_GROUPS:
        amin_rng = ensure_rng(seed + 3)
        group_profiles = [
            # k = 1; uniform A_min inside the group's fraction band.
            PrivacyProfile(k=1, a_min=float(amin_rng.uniform(f_lo, f_hi)) * UNIT.area)
            for _ in range(num_users)
        ]
        ratios_by_height = []
        for height in heights:
            anonymizer = make_anonymizer("basic", height)
            register_population(anonymizer, trace, group_profiles)
            ratios = []
            for uid in sample:
                try:
                    region = anonymizer.cloak(uid)
                except ProfileUnsatisfiableError:
                    continue
                ratios.append(region.accuracy_area(group_profiles[uid]))
            ratios_by_height.append(mean(ratios) if ratios else float("nan"))
        panel_d.add_series(f"A_min in [{f_lo:.0e}-{f_hi:.0e}]", ratios_by_height)

    return {"a": panel_a, "b": panel_b, "c": panel_c, "d": panel_d}
