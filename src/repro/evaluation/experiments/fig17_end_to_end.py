"""Figure 17 — Casper end-to-end performance.

Total time from submitting a private NN query to receiving the result,
split into location-anonymizer time, privacy-aware query-processing time
and candidate-list transmission time (64-byte records over 100 Mbps),
for both public and private target data, across k-anonymity groups.
Adaptive anonymizer, four filters — the paper's configuration.

Paper-shape expectations: the anonymizer's share is negligible; query
processing dominates for relaxed profiles; transmission dominates (and
keeps growing) for strict profiles because strict cloaks yield large
candidate lists.
"""

from __future__ import annotations

from statistics import mean

from repro.errors import ProfileUnsatisfiableError
from repro.evaluation.experiments.common import UNIT
from repro.evaluation.results import ExperimentResult
from repro.mobility import generate_trace
from repro.server import Casper, TransmissionModel
from repro.utils.rng import ensure_rng
from repro.workloads import (
    uniform_points,
    uniform_private_regions,
    uniform_profiles,
)

__all__ = ["run_fig17"]

SMALL_K_GROUPS = ((1, 10), (10, 20), (20, 30), (30, 40), (40, 50))
LARGE_K_GROUPS = ((1, 10), (30, 50), (50, 100), (100, 150), (150, 200))


def _measure_group(
    k_group: tuple[int, int],
    num_users: int,
    num_targets: int,
    num_queries: int,
    height: int,
    data_cells_range: tuple[float, float],
    seed: int,
) -> dict[str, float]:
    """One k-group's mean per-query component times for both data kinds."""
    trace = generate_trace(num_users, 0, seed=seed)
    profiles = uniform_profiles(num_users, UNIT, k_range=k_group, seed=seed)
    casper = Casper(
        UNIT,
        pyramid_height=height,
        anonymizer="adaptive",
        transmission=TransmissionModel(record_bytes=64, bandwidth_mbps=100.0),
    )
    for uid in sorted(trace.initial):
        casper.register_user(uid, trace.initial[uid], profiles[uid])
    casper.add_public_targets(uniform_points(num_targets, UNIT, seed=seed + 1))
    # Replace the registered users' live cloaks with an explicit private
    # target workload of the paper's [1-64]-cell regions for the
    # private-data measurements (targets are a separate population).
    private_targets = uniform_private_regions(
        num_targets, UNIT, height, cells_range=data_cells_range, seed=seed + 2
    )
    for oid, region in private_targets.items():
        casper.server.store_private(f"target-{oid}", region)

    rng = ensure_rng(seed + 3)
    sample = [int(u) for u in rng.choice(num_users, size=num_queries, replace=False)]
    rows: dict[str, list[float]] = {
        "public anonymizer": [],
        "public processing": [],
        "public transmission": [],
        "private anonymizer": [],
        "private processing": [],
        "private transmission": [],
    }
    for uid in sample:
        try:
            pub = casper.query_nearest_public(uid, num_filters=4)
            priv = casper.query_nearest_private(uid, num_filters=4)
        except ProfileUnsatisfiableError:
            continue
        rows["public anonymizer"].append(pub.anonymizer_seconds)
        rows["public processing"].append(pub.processing_seconds)
        rows["public transmission"].append(pub.transmission_seconds)
        rows["private anonymizer"].append(priv.anonymizer_seconds)
        rows["private processing"].append(priv.processing_seconds)
        rows["private transmission"].append(priv.transmission_seconds)
    return {label: (mean(vals) if vals else float("nan")) for label, vals in rows.items()}


def run_fig17(
    num_users: int = 4_000,
    num_targets: int = 2_000,
    num_queries: int = 60,
    height: int = 9,
    small_groups: tuple[tuple[int, int], ...] = SMALL_K_GROUPS,
    large_groups: tuple[tuple[int, int], ...] = LARGE_K_GROUPS,
    data_cells_range: tuple[float, float] = (1, 64),
    seed: int = 0,
) -> dict[str, ExperimentResult]:
    """Run both Figure 17 panels; returns them keyed 'a' and 'b'."""
    panels: dict[str, ExperimentResult] = {}
    for key, groups, title in (
        ("a", small_groups, "End-to-end time, small k groups"),
        ("b", large_groups, "End-to-end time, large k groups"),
    ):
        labels = [f"[{lo}-{hi}]" for lo, hi in groups]
        panel = ExperimentResult(
            f"Figure 17{key}", title, "k range",
            "avg seconds per query, by component", labels,
            notes="adaptive anonymizer, 4 filters, 64 B records @ 100 Mbps",
        )
        component_rows: dict[str, list[float]] = {}
        for group in groups:
            measured = _measure_group(
                group,
                num_users,
                num_targets,
                num_queries,
                height,
                data_cells_range,
                seed,
            )
            for label, value in measured.items():
                component_rows.setdefault(label, []).append(value)
        for label, values in component_rows.items():
            panel.add_series(label, values)
        panels[key] = panel
    return panels
