"""One module per figure of the paper's Section 6 evaluation."""

from repro.evaluation.experiments.fig10_pyramid_height import run_fig10
from repro.evaluation.experiments.fig11_scalability import run_fig11
from repro.evaluation.experiments.fig12_privacy_profile import run_fig12
from repro.evaluation.experiments.fig13_public_targets import run_fig13
from repro.evaluation.experiments.fig14_private_targets import run_fig14
from repro.evaluation.experiments.fig15_query_region import run_fig15
from repro.evaluation.experiments.fig16_data_region import run_fig16
from repro.evaluation.experiments.fig17_end_to_end import run_fig17

__all__ = [
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_fig16",
    "run_fig17",
]
