"""Figure 16 — effect of the *data* region size (private targets).

Two panels over target cloaked regions of 4..256 cells for 1 / 2 / 4
filters: (a) average candidate-list size, (b) average query time.

Paper-shape expectations: four filters significantly shrinks the
candidate list at every data-region size while *increasing* query time
(pessimistic region search is the expensive part).
"""

from __future__ import annotations

import time

from repro.evaluation.experiments.common import UNIT, cloaked_query_regions
from repro.evaluation.results import ExperimentResult
from repro.processor import private_nn_over_private
from repro.spatial import RTreeIndex
from repro.workloads import uniform_private_regions

__all__ = ["run_fig16"]

FILTER_COUNTS = (1, 2, 4)
DEFAULT_DATA_CELLS = (4, 16, 64, 256)


def run_fig16(
    num_targets: int = 2_000,
    data_cells: tuple[int, ...] = DEFAULT_DATA_CELLS,
    num_users: int = 4_000,
    num_queries: int = 60,
    height: int = 9,
    seed: int = 0,
) -> dict[str, ExperimentResult]:
    """Run both Figure 16 panels; returns them keyed 'a' and 'b'."""
    queries = cloaked_query_regions(num_users, num_queries, height, seed=seed)
    panel_a = ExperimentResult(
        "Figure 16a", "Candidate list size vs data region size",
        "data cells", "avg candidate list size", list(data_cells),
    )
    panel_b = ExperimentResult(
        "Figure 16b", "Query time vs data region size",
        "data cells", "avg query processing time (seconds)", list(data_cells),
    )
    sizes: dict[int, list[float]] = {nf: [] for nf in FILTER_COUNTS}
    times: dict[int, list[float]] = {nf: [] for nf in FILTER_COUNTS}
    for cells in data_cells:
        regions = uniform_private_regions(
            num_targets, UNIT, height, cells_range=(cells, cells), seed=seed + cells
        )
        index = RTreeIndex()
        index.bulk_load(dict(regions))
        for nf in FILTER_COUNTS:
            total = 0
            start = time.perf_counter()
            for area in queries:
                total += len(private_nn_over_private(index, area, nf))
            elapsed = time.perf_counter() - start
            sizes[nf].append(total / len(queries))
            times[nf].append(elapsed / len(queries))
    for nf in FILTER_COUNTS:
        panel_a.add_series(f"{nf} filter{'s' if nf > 1 else ''}", sizes[nf])
        panel_b.add_series(f"{nf} filter{'s' if nf > 1 else ''}", times[nf])
    return {"a": panel_a, "b": panel_b}
