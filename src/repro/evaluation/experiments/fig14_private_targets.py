"""Figure 14 — scalability with the number of *private* target objects.

Two panels over target counts for 1 / 2 / 4 filters: (a) average
candidate-list size, (b) average query processing time.  Private targets
carry cloaked regions of [1-64] lowest-level cells.

Paper-shape expectations: candidate sizes behave as in Figure 13 (more
filters → smaller lists), but the *time* ordering flips — four filters
cost the most because pessimistic NN search over regions is expensive;
the paper argues the smaller candidate list still wins end-to-end
(Figure 17).
"""

from __future__ import annotations

import time

from repro.evaluation.experiments.common import UNIT, cloaked_query_regions
from repro.evaluation.results import ExperimentResult
from repro.processor import private_nn_over_private
from repro.spatial import RTreeIndex
from repro.workloads import uniform_private_regions

__all__ = ["run_fig14"]

FILTER_COUNTS = (1, 2, 4)


def run_fig14(
    target_counts: tuple[int, ...] = (500, 1_000, 2_000, 4_000),
    num_users: int = 4_000,
    num_queries: int = 60,
    height: int = 9,
    data_cells_range: tuple[float, float] = (1, 64),
    seed: int = 0,
) -> dict[str, ExperimentResult]:
    """Run both Figure 14 panels; returns them keyed 'a' and 'b'."""
    queries = cloaked_query_regions(num_users, num_queries, height, seed=seed)
    panel_a = ExperimentResult(
        "Figure 14a", "Candidate list size vs private targets", "targets",
        "avg candidate list size", list(target_counts),
    )
    panel_b = ExperimentResult(
        "Figure 14b", "Query time vs private targets", "targets",
        "avg query processing time (seconds)", list(target_counts),
    )
    sizes: dict[int, list[float]] = {nf: [] for nf in FILTER_COUNTS}
    times: dict[int, list[float]] = {nf: [] for nf in FILTER_COUNTS}
    for count in target_counts:
        regions = uniform_private_regions(
            count, UNIT, height, cells_range=data_cells_range, seed=seed + count
        )
        index = RTreeIndex()
        index.bulk_load(dict(regions))
        for nf in FILTER_COUNTS:
            total_size = 0
            start = time.perf_counter()
            for area in queries:
                total_size += len(private_nn_over_private(index, area, nf))
            elapsed = time.perf_counter() - start
            sizes[nf].append(total_size / len(queries))
            times[nf].append(elapsed / len(queries))
    for nf in FILTER_COUNTS:
        panel_a.add_series(f"{nf} filter{'s' if nf > 1 else ''}", sizes[nf])
        panel_b.add_series(f"{nf} filter{'s' if nf > 1 else ''}", times[nf])
    return {"a": panel_a, "b": panel_b}
