"""Figure 15 — effect of the cloaked query-region size (public data).

Two panels over query areas of 4..1024 lowest-level cells for 1 / 2 / 4
filters: (a) average candidate-list size, (b) average query time.

Paper-shape expectations: both grow with the region size; four filters
consistently wins on both metrics for public data.
"""

from __future__ import annotations

import time

from repro.evaluation.experiments.common import UNIT
from repro.evaluation.results import ExperimentResult
from repro.geometry import Rect
from repro.processor import private_nn_over_public
from repro.spatial import RTreeIndex
from repro.workloads import query_regions_of_cells, uniform_points

__all__ = ["run_fig15"]

FILTER_COUNTS = (1, 2, 4)
DEFAULT_CELL_SIZES = (4, 16, 64, 256, 1024)


def run_fig15(
    num_targets: int = 2_000,
    query_cells: tuple[int, ...] = DEFAULT_CELL_SIZES,
    num_queries: int = 60,
    height: int = 9,
    seed: int = 0,
) -> dict[str, ExperimentResult]:
    """Run both Figure 15 panels; returns them keyed 'a' and 'b'."""
    targets = uniform_points(num_targets, UNIT, seed=seed)
    index = RTreeIndex()
    index.bulk_load({oid: Rect.point(p) for oid, p in targets.items()})
    panel_a = ExperimentResult(
        "Figure 15a", "Candidate list size vs query region size",
        "query cells", "avg candidate list size", list(query_cells),
    )
    panel_b = ExperimentResult(
        "Figure 15b", "Query time vs query region size",
        "query cells", "avg query processing time (seconds)", list(query_cells),
    )
    sizes: dict[int, list[float]] = {nf: [] for nf in FILTER_COUNTS}
    times: dict[int, list[float]] = {nf: [] for nf in FILTER_COUNTS}
    for cells in query_cells:
        queries = query_regions_of_cells(
            num_queries, cells, UNIT, height, seed=seed + cells
        )
        for nf in FILTER_COUNTS:
            total = 0
            start = time.perf_counter()
            for area in queries:
                total += len(private_nn_over_public(index, area, nf))
            elapsed = time.perf_counter() - start
            sizes[nf].append(total / len(queries))
            times[nf].append(elapsed / len(queries))
    for nf in FILTER_COUNTS:
        panel_a.add_series(f"{nf} filter{'s' if nf > 1 else ''}", sizes[nf])
        panel_b.add_series(f"{nf} filter{'s' if nf > 1 else ''}", times[nf])
    return {"a": panel_a, "b": panel_b}
