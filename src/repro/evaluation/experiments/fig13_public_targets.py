"""Figure 13 — scalability with the number of *public* target objects.

Two panels over 1K..10K targets for 1 / 2 / 4 filters: (a) average
candidate-list size, (b) average query processing time.

Paper-shape expectations: more filters → smaller candidate lists (4
filters roughly halves 1 filter at 10K targets) *and* faster public-data
processing (the extra filter NN lookups are repaid by the smaller range
query).
"""

from __future__ import annotations

import time

from repro.evaluation.experiments.common import UNIT, cloaked_query_regions
from repro.evaluation.results import ExperimentResult
from repro.processor import private_nn_over_public
from repro.spatial import RTreeIndex
from repro.geometry import Rect
from repro.workloads import uniform_points

__all__ = ["run_fig13", "FILTER_COUNTS"]

FILTER_COUNTS = (1, 2, 4)


def run_fig13(
    target_counts: tuple[int, ...] = (500, 1_000, 2_000, 4_000),
    num_users: int = 4_000,
    num_queries: int = 60,
    height: int = 9,
    seed: int = 0,
) -> dict[str, ExperimentResult]:
    """Run both Figure 13 panels; returns them keyed 'a' and 'b'."""
    queries = cloaked_query_regions(num_users, num_queries, height, seed=seed)
    panel_a = ExperimentResult(
        "Figure 13a", "Candidate list size vs public targets", "targets",
        "avg candidate list size", list(target_counts),
    )
    panel_b = ExperimentResult(
        "Figure 13b", "Query time vs public targets", "targets",
        "avg query processing time (seconds)", list(target_counts),
    )
    sizes: dict[int, list[float]] = {nf: [] for nf in FILTER_COUNTS}
    times: dict[int, list[float]] = {nf: [] for nf in FILTER_COUNTS}
    for count in target_counts:
        targets = uniform_points(count, UNIT, seed=seed + count)
        index = RTreeIndex()
        index.bulk_load({oid: Rect.point(p) for oid, p in targets.items()})
        for nf in FILTER_COUNTS:
            total_size = 0
            start = time.perf_counter()
            for area in queries:
                total_size += len(private_nn_over_public(index, area, nf))
            elapsed = time.perf_counter() - start
            sizes[nf].append(total_size / len(queries))
            times[nf].append(elapsed / len(queries))
    for nf in FILTER_COUNTS:
        panel_a.add_series(f"{nf} filter{'s' if nf > 1 else ''}", sizes[nf])
        panel_b.add_series(f"{nf} filter{'s' if nf > 1 else ''}", times[nf])
    return {"a": panel_a, "b": panel_b}
