"""Figure 12 — effect of the k-anonymity privacy profile.

Two panels over k ranges [1-10]..[150-200]: (a) average cloaking time,
(b) average counter updates per location update, basic vs adaptive.

Paper-shape expectations: basic's cloaking time grows with stricter k
(more pyramid levels traversed); adaptive's falls for strict users (the
maintained cut sits high, so cloaking starts near where it ends);
basic's update cost is k-independent while adaptive's shrinks as users
get stricter.
"""

from __future__ import annotations

from repro.evaluation.experiments.common import (
    UNIT,
    make_anonymizer,
    register_population,
    replay_updates,
    standard_trace,
    timed_cloaks,
)
from repro.evaluation.results import ExperimentResult
from repro.utils.rng import ensure_rng
from repro.workloads import PAPER_K_GROUPS, uniform_profiles

__all__ = ["run_fig12"]


def run_fig12(
    num_users: int = 4_000,
    k_groups: tuple[tuple[int, int], ...] = PAPER_K_GROUPS,
    height: int = 9,
    num_cloaks: int = 400,
    trace_ticks: int = 3,
    seed: int = 0,
) -> dict[str, ExperimentResult]:
    """Run both Figure 12 panels; returns them keyed 'a' and 'b'."""
    labels = [f"[{lo}-{hi}]" for lo, hi in k_groups]
    panel_a = ExperimentResult(
        "Figure 12a", "Cloaking time vs k range", "k range",
        "avg cloaking time per request (seconds)", labels,
    )
    panel_b = ExperimentResult(
        "Figure 12b", "Maintenance cost vs k range", "k range",
        "avg counter updates per location update", labels,
    )
    trace = standard_trace(num_users, trace_ticks, seed=seed)
    rng = ensure_rng(seed + 1)
    sample = [
        int(u)
        for u in rng.choice(num_users, size=min(num_cloaks, num_users), replace=False)
    ]
    results: dict[str, dict[str, list[float]]] = {
        kind: {"cloak": [], "update": []} for kind in ("basic", "adaptive")
    }
    for k_lo, k_hi in k_groups:
        profiles = uniform_profiles(
            num_users, UNIT, k_range=(k_lo, k_hi), seed=seed
        )
        for kind in ("basic", "adaptive"):
            anonymizer = make_anonymizer(kind, height)
            register_population(anonymizer, trace, profiles)
            results[kind]["cloak"].append(timed_cloaks(anonymizer, sample))
            anonymizer.stats.reset()
            replay_updates(anonymizer, trace)
            results[kind]["update"].append(
                anonymizer.stats.updates_per_location_update
            )
    for kind in ("basic", "adaptive"):
        panel_a.add_series(kind, results[kind]["cloak"])
        panel_b.add_series(kind, results[kind]["update"])
    return {"a": panel_a, "b": panel_b}
