"""The resilience runtime — retries, crash recovery, degradation ladder.

One :class:`ResilienceRuntime` instance sits between a
:class:`~repro.server.casper.Casper` facade and its injected
:class:`~repro.resilience.faults.FaultInjector`, and owns every policy
decision the fault model forces:

* **channels** — location updates and candidate-list responses are
  serialized through their wire codecs and offered to the injector;
  undelivered messages are retried per the :class:`RetryPolicy`
  (exponential backoff over *virtual* seconds — nothing sleeps);
* **idempotence** — each applied update's per-user sequence number is
  remembered, so duplicated and reordered deliveries are recognised and
  ignored rather than replayed;
* **crash recovery** — the anonymizer's pyramid + user table is
  snapshotted every ``snapshot_every`` guarded operations; a crash
  restores the latest snapshot *and rolls the sequence table back with
  it* (the two are one atomic unit, or replays after a crash would be
  misjudged);
* **the degradation ladder** — when a fresh cloak is impossible the
  runtime tries, in order: a remembered cloak within the stale grace
  window (revalidated against the *live* population), a conservative
  parent-cell escalation from the remembered cells, and finally an
  explicit :class:`~repro.errors.DegradedModeError`.  Every rung is
  validated against the user's ``(k, A_min)`` at emission time —
  availability degrades, privacy never does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

from repro.anonymizer.adaptive import AdaptiveAnonymizer
from repro.anonymizer.basic import BasicAnonymizer
from repro.anonymizer.cells import CellId
from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.profile import PrivacyProfile
from repro.errors import (
    DegradedModeError,
    ProfileUnsatisfiableError,
    QueryDeliveryError,
    UnknownUserError,
    UpdateDeliveryError,
)
from repro.geometry import Point
from repro.observability import runtime as _telemetry
from repro.processor import CandidateList
from repro.resilience.faults import Delivery, FaultInjector, FaultPlan
from repro.resilience.messages import LocationUpdate, decode_update, encode_update
from repro.resilience.retry import RetryPolicy
from repro.server.codec import decode_candidate_list, encode_candidate_list
from repro.sharding import (
    ParallelShardedAnonymizer,
    ShardedAdaptiveAnonymizer,
    ShardedBasicAnonymizer,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.casper import Casper

__all__ = ["ResilienceConfig", "ResilienceRuntime", "Emission"]

Anonymizer = Union[
    BasicAnonymizer,
    AdaptiveAnonymizer,
    ShardedBasicAnonymizer,
    ShardedAdaptiveAnonymizer,
    ParallelShardedAnonymizer,
]

#: Integer counters a runtime maintains (``report()`` exports them all).
COUNTER_NAMES = (
    "retries",
    "updates_sent",
    "updates_delivered",
    "updates_abandoned",
    "duplicates_ignored",
    "corrupt_rejected",
    "recoveries",
    "shard_recoveries",
    "worker_crashes",
    "users_purged",
    "fallback_cloaks",
    "degraded_operations",
)


@dataclass(frozen=True, slots=True)
class ResilienceConfig:
    """Tuning knobs of the degradation machinery."""

    #: Guarded operations between anonymizer snapshots.  Smaller means
    #: less state lost per crash but more snapshot copying.
    snapshot_every: int = 25
    #: How many guarded operations a remembered cloak stays eligible for
    #: the stale rung (it is still revalidated against live counts).
    stale_grace_ops: int = 200
    #: Record every emitted cloak for the harness's privacy scan.
    record_emissions: bool = True

    def __post_init__(self) -> None:
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if self.stale_grace_ops < 0:
            raise ValueError("stale_grace_ops must be >= 0")


@dataclass(frozen=True, slots=True)
class Emission:
    """One cloak the resilient pipeline emitted, for the privacy scan.

    ``full_area`` marks the cold-start policy (the whole service area is
    stored while the population cannot satisfy ``k``) — by construction
    the most private choice, so the scan exempts it; every other
    emission must satisfy ``(k, A_min)`` outright.
    """

    mode: str  # "fresh" | "stale" | "escalated" | "cold_start"
    k: int
    a_min: float
    achieved_k: int
    area: float
    full_area: bool

    def violates_privacy(self) -> bool:
        """True when this cloak silently under-delivered the profile."""
        if self.full_area:
            return False
        return self.achieved_k < self.k or self.area < self.a_min - 1e-12


@dataclass(slots=True)
class _Remembered:
    region: CloakedRegion
    profile: PrivacyProfile
    op: int  # guarded-op stamp when the cloak was fresh


@dataclass(frozen=True, slots=True)
class _Ack:
    kind: str  # "applied" | "stale" | "recovered"
    seq: int  # receiver's applied sequence number for the user, after


@dataclass(slots=True)
class _Snapshot:
    state: object
    applied_seq: dict[str, int] = field(default_factory=dict)
    #: Per-shard deep copies (sharded anonymizers under a plan with
    #: ``shard_crash_period > 0`` only) — captured in the same pass as
    #: ``state``, so the fleet and its shards roll back as one unit.
    shard_states: tuple[object, ...] | None = None


class ResilienceRuntime:
    """Fault handling + graceful degradation for one Casper deployment.

    Construct with a :class:`FaultPlan` (and optional retry/config
    overrides), hand it to ``Casper(..., resilience=runtime)``; the
    facade calls :meth:`attach` and routes its update and query paths
    through here.
    """

    def __init__(
        self,
        plan: FaultPlan,
        retry: RetryPolicy | None = None,
        config: ResilienceConfig | None = None,
    ) -> None:
        self.plan = plan
        self.retry = retry if retry is not None else RetryPolicy()
        self.config = config if config is not None else ResilienceConfig()
        self.injector = FaultInjector(plan)
        self.counters: dict[str, int] = {name: 0 for name in COUNTER_NAMES}
        self.fallback_modes: dict[str, int] = {}
        self.virtual_backoff_seconds = 0.0
        self.emissions: list[Emission] = []
        self._casper: "Casper | None" = None
        self._anonymizer: Anonymizer | None = None
        self._applied_seq: dict[str, int] = {}
        self._last_cloaks: dict[object, _Remembered] = {}
        self._snapshot: _Snapshot | None = None
        self._ops = 0
        self._ops_since_snapshot = 0
        self._qid = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, casper: "Casper") -> None:
        """Bind to a facade and take the initial snapshot."""
        if self._casper is not None and self._casper is not casper:
            raise RuntimeError("a ResilienceRuntime serves exactly one Casper")
        self._casper = casper
        self._anonymizer = casper.anonymizer
        # A parallel anonymizer carries the wire-fault seam itself: the
        # injector then sees (and may drop, corrupt, reorder...) every
        # real frame on the parent<->worker pipes, not an emulation.
        attach_injector = getattr(self._anonymizer, "attach_injector", None)
        if attach_injector is not None and not self.plan.is_quiet:
            attach_injector(self.injector)
        self._take_snapshot()

    @property
    def anonymizer(self) -> Anonymizer:
        if self._anonymizer is None:
            raise RuntimeError("runtime not attached to a Casper facade")
        return self._anonymizer

    @property
    def casper(self) -> "Casper":
        if self._casper is None:
            raise RuntimeError("runtime not attached to a Casper facade")
        return self._casper

    # ------------------------------------------------------------------
    # Crash / state-loss guard
    # ------------------------------------------------------------------
    def guard(self, uid: object | None = None) -> None:
        """One guarded anonymizer operation: advance the crash schedule,
        maybe restore, maybe lose ``uid``'s state, refresh the snapshot
        on cadence."""
        injector = self.injector
        if injector.next_op():
            self._restore()
        else:
            victim = injector.next_shard_op(self._num_shards())
            worker_victim = injector.next_worker_op(self._num_shards())
            if victim is not None:
                self._crash_shard(victim)
            elif worker_victim is not None:
                self._crash_worker(worker_victim)
            elif uid is not None and injector.should_lose_user():
                self._lose_user(uid)
        self._ops += 1
        self._ops_since_snapshot += 1
        if self._ops_since_snapshot >= self.config.snapshot_every:
            self._take_snapshot()

    def _num_shards(self) -> int:
        return getattr(self.anonymizer, "num_shards", 1)

    def _take_snapshot(self) -> None:
        anonymizer = self.anonymizer
        shard_states: tuple[object, ...] | None = None
        if self.plan.shard_crash_period > 0 and hasattr(
            anonymizer, "snapshot_shard"
        ):
            shard_states = tuple(
                anonymizer.snapshot_shard(shard)
                for shard in range(self._num_shards())
            )
        self._snapshot = _Snapshot(
            anonymizer.snapshot(), dict(self._applied_seq), shard_states
        )
        self._ops_since_snapshot = 0

    def _restore(self) -> None:
        """Crash: restore the anonymizer and the sequence table as one
        atomic unit (they were captured together)."""
        snapshot = self._snapshot
        if snapshot is None:  # pragma: no cover - attach() always snapshots
            raise RuntimeError("crash before the initial snapshot")
        self.anonymizer.restore(snapshot.state)
        self._applied_seq = dict(snapshot.applied_seq)
        self._ops_since_snapshot = 0
        self.counters["recoveries"] += 1
        _telemetry.note_fault("crash", "anonymizer")
        _telemetry.note_recovery("restore")

    def _crash_shard(self, victim: int) -> None:
        """Single-shard crash: restore only the victim shard from the
        latest snapshot, keep every survivor's live state.

        The victim's surviving users roll their sequence entries back to
        the snapshot's values (their anonymizer state rolled back with
        them, so post-snapshot updates must be re-appliable); users the
        restore *purged* — registered or rehomed into the victim after
        the snapshot — lose their sequence entries entirely and heal via
        re-registration from their next self-describing update.  An
        unsharded anonymizer has no shard boundary to contain the blast
        radius, so the fault degenerates to a whole-process crash.
        """
        snapshot = self._snapshot
        anonymizer = self.anonymizer
        if snapshot is None:  # pragma: no cover - attach() always snapshots
            raise RuntimeError("shard crash before the initial snapshot")
        if snapshot.shard_states is None or not hasattr(
            anonymizer, "restore_shard"
        ):
            self._restore()
            return
        purged = anonymizer.restore_shard(
            victim, snapshot.shard_states[victim]
        )
        for uid in purged:
            self._applied_seq.pop(uid, None)
        self.counters["users_purged"] += len(purged)
        shard_of_user = anonymizer.shard_of_user
        for uid in list(self._applied_seq):
            if uid in anonymizer and shard_of_user(uid) == victim:
                rolled_back = snapshot.applied_seq.get(uid)
                if rolled_back is None:
                    self._applied_seq.pop(uid)
                else:
                    self._applied_seq[uid] = rolled_back
        self.counters["shard_recoveries"] += 1
        _telemetry.note_fault("shard_crash", "anonymizer")
        _telemetry.note_recovery("shard_restore")

    def _crash_worker(self, victim: int) -> None:
        """Shard-worker *process* crash: kill the victim's OS process
        mid-run and let the supervisor respawn and heal it over the
        wire (parent mirror bootstrap or survivor snapshot).

        Unlike :meth:`_crash_shard`, nothing rolls back: the heal
        source reflects every acknowledged mutation, so users keep
        their sequence numbers and the blast radius is availability
        (one stalled exchange) only.  An anonymizer without worker
        processes has no process boundary to kill, so the fault
        degenerates to a whole-process crash-and-restore.
        """
        crash_worker = getattr(self.anonymizer, "crash_worker", None)
        if crash_worker is None:
            self._restore()
            return
        crash_worker(victim)
        self.counters["worker_crashes"] += 1
        _telemetry.note_fault("worker_crash", "anonymizer")

    def _lose_user(self, uid: object) -> None:
        """Silent state loss: the anonymizer forgets one user entirely.

        Implemented as a full deregistration so the pyramid counters
        stay exact — an undercount is privacy-conservative, whereas
        counters that still include a forgotten user could let a cloak
        claim ``k`` with ``k - 1`` real users.
        """
        anonymizer = self.anonymizer
        if uid not in anonymizer:
            return
        anonymizer.deregister(uid)
        self.injector.record_state_loss("anonymizer", f"user {uid}")
        _telemetry.note_fault("state_loss", "anonymizer")

    # ------------------------------------------------------------------
    # Degradation ladder
    # ------------------------------------------------------------------
    def cloak_or_degrade(self, uid: object) -> tuple[CloakedRegion, str]:
        """A cloak for ``uid`` or an explicit degraded-mode error.

        Returns ``(region, mode)`` with ``mode`` the ladder rung that
        served it (``fresh`` / ``stale`` / ``escalated``).  Every rung's
        output satisfies the user's profile at emission time.
        """
        anonymizer = self.anonymizer
        try:
            region = anonymizer.cloak(uid)
        except (UnknownUserError, ProfileUnsatisfiableError) as exc:
            return self._degraded_cloak(uid, exc)
        profile = anonymizer.profile_of(uid)
        self._last_cloaks[uid] = _Remembered(region, profile, self._ops)
        self._emit(region, profile, "fresh")
        return region, "fresh"

    def _degraded_cloak(
        self, uid: object, cause: Exception
    ) -> tuple[CloakedRegion, str]:
        remembered = self._last_cloaks.get(uid)
        if remembered is not None:
            profile = remembered.profile
            if self._ops - remembered.op <= self.config.stale_grace_ops:
                revalidated = self._revalidate(remembered.region, profile)
                if revalidated is not None:
                    self._fallback(revalidated, profile, "stale")
                    return revalidated, "stale"
            escalated = self._escalate(remembered.region.cells, profile)
            if escalated is not None:
                self._fallback(escalated, profile, "escalated")
                return escalated, "escalated"
        self.counters["degraded_operations"] += 1
        raise DegradedModeError(
            f"no cloak satisfying the profile is available for user {uid!r} "
            f"({cause})"
        ) from cause

    def _revalidate(
        self, cloak: CloakedRegion, profile: PrivacyProfile
    ) -> CloakedRegion | None:
        """The stale rung: a remembered cloak is reusable only if the
        *live* population inside it still satisfies the profile."""
        count = self.anonymizer.users_in_rect(cloak.region)
        if profile.is_satisfied_by(count, cloak.area):
            return CloakedRegion(cloak.region, count, cloak.cells)
        return None

    def _escalate(
        self, cells: tuple[CellId, ...], profile: PrivacyProfile
    ) -> CloakedRegion | None:
        """The conservative rung: walk the pyramid upward from the
        remembered cells until some ancestor cell satisfies the profile
        against live counts.  Monotone in privacy — every step can only
        grow the region and its population."""
        anonymizer = self.anonymizer
        grid = anonymizer.grid
        cell = cells[0] if cells else CellId(0, 0, 0)
        while True:
            count = anonymizer.cell_count(cell)
            if profile.is_satisfied_by(count, grid.cell_area(cell.level)):
                return CloakedRegion(grid.cell_rect(cell), count, (cell,))
            if cell.is_root:
                return None
            cell = cell.parent()

    def storage_cloak(self, uid: object) -> CloakedRegion:
        """Cloak ``uid`` for server-side storage, degrading through the
        ladder and bottoming out at the seed's cold-start policy (store
        the whole service area while ``k`` is unsatisfiable)."""
        try:
            region, _mode = self.cloak_or_degrade(uid)
            return region
        except DegradedModeError:
            anonymizer = self.anonymizer
            region = CloakedRegion(anonymizer.bounds, anonymizer.num_users, cells=())
            try:
                profile = anonymizer.profile_of(uid)
            except UnknownUserError:
                profile = PrivacyProfile()
            self._fallback(region, profile, "cold_start")
            return region

    def _fallback(
        self, region: CloakedRegion, profile: PrivacyProfile, mode: str
    ) -> None:
        self.counters["fallback_cloaks"] += 1
        self.fallback_modes[mode] = self.fallback_modes.get(mode, 0) + 1
        _telemetry.note_fallback_cloak(mode)
        self._emit(region, profile, mode)

    def _emit(
        self, region: CloakedRegion, profile: PrivacyProfile, mode: str
    ) -> None:
        if not self.config.record_emissions:
            return
        self.emissions.append(
            Emission(
                mode=mode,
                k=profile.k,
                a_min=profile.a_min,
                achieved_k=region.achieved_k,
                area=region.area,
                full_area=region.region == self.anonymizer.bounds,
            )
        )

    def privacy_violations(self) -> list[Emission]:
        """Every recorded emission that silently under-delivered its
        profile — the list the chaos gate asserts is empty."""
        return [e for e in self.emissions if e.violates_privacy()]

    # ------------------------------------------------------------------
    # Update channel (client -> anonymizer)
    # ------------------------------------------------------------------
    def send_update(
        self, uid: str, seq: int, point: Point, profile: PrivacyProfile
    ) -> str:
        """Build and submit one :class:`LocationUpdate` (the facade-side
        entry point, so callers never import the wire format)."""
        return self.submit_update(LocationUpdate(uid, seq, point, profile))

    def submit_update(self, update: LocationUpdate) -> str:
        """Send one location update through the faulty channel, retrying
        until the receiver acknowledges a sequence number covering it.

        Returns the acknowledged outcome (``applied`` / ``stale`` /
        ``recovered``); raises :class:`UpdateDeliveryError` when the
        retry budget is exhausted without an acknowledgement.  The
        channel is *not* flushed between sends — a delayed old update
        resurfacing during a later one is exactly the reordering case
        the sequence numbers make safe.
        """
        channel = f"update:{update.uid}"
        payload = encode_update(update)
        self.counters["updates_sent"] += 1
        outcome: str | None = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self._count_retry("update", attempt)
            for delivery in self._transmit(channel, payload):
                ack = self._receive_update(delivery)
                if ack is not None and ack.seq >= update.seq and outcome is None:
                    outcome = ack.kind
            if outcome is not None:
                break
        if outcome is None:
            self.counters["updates_abandoned"] += 1
            self.counters["degraded_operations"] += 1
            raise UpdateDeliveryError(
                f"update seq={update.seq} for user {update.uid!r} undelivered "
                f"after {self.retry.max_attempts} attempts"
            )
        self.counters["updates_delivered"] += 1
        return outcome

    def _receive_update(self, delivery: Delivery) -> _Ack | None:
        """The anonymizer side of the update channel: verify, dedupe by
        sequence number, apply — or heal a lost user from the update's
        self-describing profile."""
        try:
            message = decode_update(delivery.payload)
        except ValueError:
            self.counters["corrupt_rejected"] += 1
            return None
        self.guard(message.uid)
        anonymizer = self.anonymizer
        last = self._applied_seq.get(message.uid, -1)
        if message.uid not in anonymizer:
            # Heal: the update carries the profile, so a user whose
            # state was lost (crash rollback, silent loss) re-registers
            # from the very next delivered update.
            anonymizer.register(message.uid, message.point, message.profile)
            self._applied_seq[message.uid] = max(last, message.seq)
            self.counters["recoveries"] += 1
            _telemetry.note_recovery("reregister")
            self.casper.refresh_stored_cloak(message.uid)
            kind = "recovered"
        elif message.seq <= last:
            # Duplicate or out-of-order replay of an older position:
            # already covered by newer state, acknowledge and ignore.
            self.counters["duplicates_ignored"] += 1
            kind = "stale"
        else:
            anonymizer.update(message.uid, message.point)
            if anonymizer.profile_of(message.uid) != message.profile:
                anonymizer.set_profile(message.uid, message.profile)
            self._applied_seq[message.uid] = message.seq
            self.casper.refresh_stored_cloak(message.uid)
            kind = "applied"
        return _Ack(kind, self._applied_seq[message.uid])

    # ------------------------------------------------------------------
    # Response channel (server -> client)
    # ------------------------------------------------------------------
    def deliver_candidates(self, candidates: CandidateList) -> CandidateList:
        """Ship a candidate list through the faulty response channel.

        The client accepts the first delivery that decodes intact (the
        codec's CRC rejects corrupted copies); the per-request channel
        is flushed when the request ends so stale copies never leak into
        the next query.  Raises :class:`QueryDeliveryError` when every
        attempt is lost or corrupt.
        """
        self._qid += 1
        channel = f"response:{self._qid}"
        payload = encode_candidate_list(candidates)
        try:
            for attempt in range(self.retry.max_attempts):
                if attempt:
                    self._count_retry("response", attempt)
                for delivery in self._transmit(channel, payload):
                    try:
                        return decode_candidate_list(delivery.payload)
                    except ValueError:
                        self.counters["corrupt_rejected"] += 1
            self.counters["degraded_operations"] += 1
            raise QueryDeliveryError(
                f"candidate list undeliverable after "
                f"{self.retry.max_attempts} attempts"
            )
        finally:
            self.injector.flush(channel)

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------
    def _transmit(self, channel: str, payload: bytes) -> list[Delivery]:
        """Offer a payload to the injector, mirroring any injected
        faults into telemetry (channel *class* only — bounded labels)."""
        before = len(self.injector.trace)
        deliveries = self.injector.transmit(channel, payload)
        if _telemetry.is_enabled():
            channel_class = channel.split(":", 1)[0]
            for event in self.injector.trace[before:]:
                _telemetry.note_fault(event.kind, channel_class)
        return deliveries

    def _count_retry(self, operation: str, attempt: int) -> None:
        self.counters["retries"] += 1
        _telemetry.note_retry(operation)
        self.virtual_backoff_seconds += self.retry.backoff(
            attempt - 1, self.injector.backoff_rng
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> dict[str, object]:
        """The runtime's deterministic contribution to a chaos report:
        counters, fault counts, the trace digest — no wall-clock values,
        so the same seed yields byte-identical JSON."""
        emissions_by_mode: dict[str, int] = {}
        for emission in self.emissions:
            emissions_by_mode[emission.mode] = (
                emissions_by_mode.get(emission.mode, 0) + 1
            )
        return {
            "plan": self.plan.name,
            "seed": self.plan.seed,
            "faults_injected": self.injector.faults_injected,
            "fault_counts": dict(self.injector.counts),
            "counters": dict(self.counters),
            "fallback_modes": dict(self.fallback_modes),
            "virtual_backoff_seconds": round(self.virtual_backoff_seconds, 9),
            "emissions_by_mode": emissions_by_mode,
            "privacy_violations": len(self.privacy_violations()),
            "trace_digest": self.injector.trace_digest(),
        }
