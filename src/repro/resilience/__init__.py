"""Fault injection and graceful degradation for the Casper pipeline.

The failure model of a real LBS deployment — dropped, duplicated,
delayed, reordered and corrupted messages; anonymizer crashes and silent
state loss — expressed as seeded, replayable inputs, plus the machinery
that keeps the system correct under them:

* :mod:`~repro.resilience.faults` — :class:`FaultPlan` /
  :class:`FaultInjector`: the deterministic fault source and its trace;
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`: exponential
  backoff with jitter over virtual time;
* :mod:`~repro.resilience.messages` — the CRC-verified location-update
  wire format with per-user sequence numbers;
* :mod:`~repro.resilience.runtime` — :class:`ResilienceRuntime`:
  retries, snapshot/restore crash recovery, and the degradation ladder
  (*degrade availability, never privacy*);
* :mod:`~repro.resilience.scenarios` — named fault scenarios CI gates on;
* :mod:`~repro.resilience.harness` — :func:`run_chaos`: replay a
  workload fault-free and faulted, audit privacy, diff the SLOs.

See ``docs/resilience.md`` for the operator-facing tour.
"""

from repro.resilience.faults import Delivery, FaultEvent, FaultInjector, FaultPlan
from repro.resilience.harness import ChaosReport, ChaosWorkload, run_chaos
from repro.resilience.messages import (
    UPDATE_RECORD_SIZE,
    LocationUpdate,
    decode_update,
    encode_update,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.runtime import Emission, ResilienceConfig, ResilienceRuntime
from repro.resilience.scenarios import CI_SCENARIOS, SCENARIOS, get_scenario

__all__ = [
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
    "Delivery",
    "RetryPolicy",
    "LocationUpdate",
    "UPDATE_RECORD_SIZE",
    "encode_update",
    "decode_update",
    "ResilienceConfig",
    "ResilienceRuntime",
    "Emission",
    "SCENARIOS",
    "CI_SCENARIOS",
    "get_scenario",
    "ChaosWorkload",
    "ChaosReport",
    "run_chaos",
]
