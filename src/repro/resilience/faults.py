"""Deterministic fault injection — the failure model of the pipeline.

Real LBS deployments lose messages, deliver them twice, hold them back,
reorder them, flip their bytes and restart their anonymizers.  This
module makes every one of those failure modes a *seeded, replayable
input*: a :class:`FaultPlan` declares the per-message probabilities and
the crash schedule, a :class:`FaultInjector` draws every decision from
``repro.utils.rng`` child streams, and the resulting
:class:`FaultEvent` trace is byte-for-byte reproducible from the seed —
the property the chaos CI gate asserts on every push.

The injector models the two message channels of Figure 1 that can
actually fail (the trusted in-process calls cannot):

* ``update:<uid>`` — location updates from a mobile client to the
  anonymizer (one logical channel per user, so a delayed old update can
  resurface during a later send: the reordering case the per-user
  sequence numbers exist for);
* ``response:<qid>`` — candidate-list payloads from the database server
  back to the client (one channel per request, flushed when the request
  completes, so retries of the same query race only against their own
  stale copies).

Delay and reorder are both implemented as *held-back deliveries*: a
held message is released by a later ``transmit`` on the same channel and
appended **after** the newer payload — which is exactly a reordering.
``reorder`` is the one-transmit hold, ``delay`` holds for
``delay_ticks`` transmits.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields

from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["FaultPlan", "FaultEvent", "FaultInjector", "Delivery"]

#: Every fault kind an injector can record, in documentation order.
FAULT_KINDS = (
    "drop",
    "duplicate",
    "delay",
    "reorder",
    "corrupt",
    "crash",
    "shard_crash",
    "worker_crash",
    "state_loss",
)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """The declarative failure model of one chaos run.

    All probabilities are per-message and independent; a single message
    can be duplicated *and* have one copy corrupted.  ``crash_period``
    and ``lose_user`` target the anonymizer instead of the wire:
    ``crash_period > 0`` crashes (and restores from the latest
    snapshot) every that-many guarded operations, ``lose_user`` is the
    per-operation probability that the anonymizer silently loses the
    operating user's state (detected at the next cloak, healed by the
    client's self-describing update).  ``shard_crash_period > 0``
    crashes a *single* randomly drawn shard of a sharded anonymizer
    every that-many guarded operations (survivor shards keep answering;
    an unsharded anonymizer degenerates it to a whole-process crash).
    ``worker_crash_period > 0`` kills a randomly drawn *shard worker
    process* of a parallel anonymizer every that-many guarded
    operations — the supervisor respawns and heals it over the wire; an
    in-process anonymizer degenerates it to a whole-process crash.
    """

    name: str = "custom"
    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_ticks: int = 2
    reorder: float = 0.0
    corrupt: float = 0.0
    crash_period: int = 0
    lose_user: float = 0.0
    shard_crash_period: int = 0
    worker_crash_period: int = 0

    def __post_init__(self) -> None:
        for f in ("drop", "duplicate", "delay", "reorder", "corrupt", "lose_user"):
            value = getattr(self, f)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{f} must be a probability in [0, 1], got {value}")
        if self.delay_ticks < 1:
            raise ValueError("delay_ticks must be >= 1")
        if self.crash_period < 0:
            raise ValueError("crash_period must be >= 0")
        if self.shard_crash_period < 0:
            raise ValueError("shard_crash_period must be >= 0")
        if self.worker_crash_period < 0:
            raise ValueError("worker_crash_period must be >= 0")

    @property
    def is_quiet(self) -> bool:
        """True when the plan can never inject anything."""
        worst = max(
            self.drop, self.duplicate, self.delay,
            self.reorder, self.corrupt, self.lose_user,
        )
        return (
            worst <= 0.0
            and self.crash_period == 0
            and self.shard_crash_period == 0
            and self.worker_crash_period == 0
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same failure model on a different random stream."""
        kwargs = {f.name: getattr(self, f.name) for f in fields(self)}
        kwargs["seed"] = seed
        return FaultPlan(**kwargs)


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One injected fault, as recorded in the deterministic trace."""

    index: int  # monotone injector-wide event counter
    kind: str  # one of FAULT_KINDS
    channel: str  # "update:<uid>" / "response:<qid>" / "anonymizer"
    detail: str = ""  # e.g. corrupted byte offset, crash op count

    def as_tuple(self) -> tuple[int, str, str, str]:
        return (self.index, self.kind, self.channel, self.detail)


@dataclass(slots=True)
class _HeldMessage:
    payload: bytes
    release_at: int  # channel-local transmit counter


@dataclass(slots=True)
class _Channel:
    transmits: int = 0
    held: list[_HeldMessage] = field(default_factory=list)


@dataclass(frozen=True, slots=True)
class Delivery:
    """One payload arriving at the receiver during a transmit."""

    payload: bytes
    #: True when this delivery is a held-back copy from an *earlier*
    #: transmit on the channel (a reordered or delayed message).
    late: bool = False


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan`.

    Five independent child RNG streams (wire decisions, crash schedule
    jitter-free counter, state-loss draws, shard-victim draws,
    worker-victim draws) are spawned from the plan's seed so adding
    wire traffic does not perturb crash timing and vice versa (child
    streams depend only on their index, so extending the list never
    changes the earlier streams).  Every decision appends to
    :attr:`trace`; the canonical JSON of the trace is the determinism
    witness.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        wire_rng, state_rng, backoff_rng, shard_rng, worker_rng = spawn_rngs(
            plan.seed, 5
        )
        self._wire_rng = wire_rng
        self._state_rng = state_rng
        #: Reserved for retry-jitter draws so backoff schedules share the
        #: plan's determinism without consuming wire/state stream draws.
        self.backoff_rng = backoff_rng
        self._shard_rng = shard_rng
        self._worker_rng = worker_rng
        self._channels: dict[str, _Channel] = {}
        self._ops = 0
        self._shard_ops = 0
        self._worker_ops = 0
        self.trace: list[FaultEvent] = []
        self.counts: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    # ------------------------------------------------------------------
    # Wire faults
    # ------------------------------------------------------------------
    def transmit(self, channel: str, payload: bytes) -> list[Delivery]:
        """Send ``payload`` on ``channel``; returns what arrives *now*.

        May return zero deliveries (dropped or held), several (a
        duplicate, or held-back messages released by this transmit), or
        corrupted bytes.  Held messages are appended after the current
        payload, which is what makes a release a reordering.
        """
        state = self._channels.setdefault(channel, _Channel())
        state.transmits += 1
        deliveries: list[Delivery] = []
        plan = self.plan
        # Fixed draw order per transmit keeps traces easy to reason
        # about; every branch below is a pure function of the stream.
        u_drop = float(self._wire_rng.random())
        u_dup = float(self._wire_rng.random())
        u_delay = float(self._wire_rng.random())
        u_reorder = float(self._wire_rng.random())
        u_corrupt = float(self._wire_rng.random())
        if u_drop < plan.drop:
            self._record("drop", channel)
        else:
            copies = [payload]
            if u_dup < plan.duplicate:
                self._record("duplicate", channel)
                copies.append(payload)
            if u_corrupt < plan.corrupt and len(payload) > 0:
                offset = int(self._wire_rng.integers(len(payload)))
                bit = 1 << int(self._wire_rng.integers(8))
                corrupted = bytearray(copies[0])
                corrupted[offset] ^= bit
                copies[0] = bytes(corrupted)
                self._record("corrupt", channel, f"byte {offset}")
            if u_delay < plan.delay:
                self._record("delay", channel, f"{plan.delay_ticks} transmits")
                hold_for = plan.delay_ticks
            elif u_reorder < plan.reorder:
                self._record("reorder", channel)
                hold_for = 1
            else:
                hold_for = 0
            if hold_for:
                for copy in copies:
                    state.held.append(
                        _HeldMessage(copy, state.transmits + hold_for)
                    )
            else:
                deliveries.extend(Delivery(copy) for copy in copies)
        # Release ripe held messages *after* the fresh payload: older
        # traffic arriving behind newer traffic is the reordering.
        still_held: list[_HeldMessage] = []
        for held in state.held:
            if held.release_at <= state.transmits:
                deliveries.append(Delivery(held.payload, late=True))
            else:
                still_held.append(held)
        state.held = still_held
        return deliveries

    def flush(self, channel: str) -> None:
        """Discard every held message on ``channel`` (request finished;
        stale copies of its traffic must not leak into the next one)."""
        state = self._channels.get(channel)
        if state is not None:
            state.held.clear()

    def pending(self, channel: str) -> int:
        state = self._channels.get(channel)
        return len(state.held) if state is not None else 0

    # ------------------------------------------------------------------
    # Anonymizer faults
    # ------------------------------------------------------------------
    def next_op(self) -> bool:
        """Advance the guarded-operation counter; True = crash now."""
        if self.plan.crash_period <= 0:
            self._ops += 1
            return False
        self._ops += 1
        if self._ops % self.plan.crash_period == 0:
            self._record("crash", "anonymizer", f"op {self._ops}")
            return True
        return False

    def next_shard_op(self, num_shards: int) -> int | None:
        """Advance the shard-crash schedule; the victim shard id when a
        single-shard crash fires now, else ``None``.

        The victim is drawn from the dedicated shard stream, so wire
        and whole-crash schedules are unperturbed by shard crashes.
        """
        if self.plan.shard_crash_period <= 0:
            self._shard_ops += 1
            return None
        self._shard_ops += 1
        if self._shard_ops % self.plan.shard_crash_period == 0:
            victim = int(self._shard_rng.integers(num_shards))
            self._record(
                "shard_crash",
                "anonymizer",
                f"shard {victim} op {self._shard_ops}",
            )
            return victim
        return None

    def next_worker_op(self, num_workers: int) -> int | None:
        """Advance the worker-crash schedule; the victim worker id when
        a shard-worker process crash fires now, else ``None``.

        The victim is drawn from the dedicated worker stream, so wire,
        whole-crash and shard-crash schedules are unperturbed.
        """
        if self.plan.worker_crash_period <= 0:
            self._worker_ops += 1
            return None
        self._worker_ops += 1
        if self._worker_ops % self.plan.worker_crash_period == 0:
            victim = int(self._worker_rng.integers(num_workers))
            self._record(
                "worker_crash",
                "anonymizer",
                f"worker {victim} op {self._worker_ops}",
            )
            return victim
        return None

    def should_lose_user(self) -> bool:
        """Draw the per-operation state-loss decision."""
        if self.plan.lose_user <= 0.0:
            return False
        return float(self._state_rng.random()) < self.plan.lose_user

    def record_state_loss(self, channel: str, detail: str = "") -> None:
        self._record("state_loss", channel, detail)

    # ------------------------------------------------------------------
    # Trace
    # ------------------------------------------------------------------
    def _record(self, kind: str, channel: str, detail: str = "") -> None:
        self.trace.append(FaultEvent(len(self.trace), kind, channel, detail))
        self.counts[kind] += 1

    @property
    def faults_injected(self) -> int:
        return len(self.trace)

    def trace_json(self) -> str:
        """Canonical JSON of the fault trace (the determinism witness)."""
        return json.dumps(
            [event.as_tuple() for event in self.trace],
            separators=(",", ":"),
        )

    def trace_digest(self) -> str:
        """SHA-256 of :meth:`trace_json` — compact equality witness."""
        return hashlib.sha256(self.trace_json().encode("utf-8")).hexdigest()
