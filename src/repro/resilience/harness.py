"""The chaos harness: replay one workload twice and diff the outcomes.

``run_chaos`` builds two identical Casper deployments from the same
seeded workload — one fault-free **baseline**, one with a
:class:`~repro.resilience.runtime.ResilienceRuntime` executing the given
:class:`~repro.resilience.faults.FaultPlan` — drives both through the
same scripted sequence of movements, snapshot queries and continuous-
monitor flushes, and reports:

* **privacy** — every cloak the faulted pipeline emitted, audited
  against its user's ``(k, A_min)`` (the count that must be zero under
  every scenario: faults degrade availability, never privacy);
* **SLOs** — how many queries were answered vs explicitly degraded, and
  how many answers still match the fault-free baseline;
* **determinism** — the fault-trace digest; the whole report contains
  only seed-derived values (counts, ratios, virtual backoff), so the
  same scenario + seed reproduces it byte-for-byte.

Everything uses string user/object ids: the resilient wire formats
carry ids as UTF-8 and the baseline must produce comparable answers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.anonymizer import PrivacyProfile
from repro.errors import DegradedModeError, UpdateDeliveryError
from repro.geometry import Point, Rect
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.resilience.runtime import ResilienceConfig, ResilienceRuntime
from repro.utils.rng import spawn_rngs

__all__ = ["ChaosWorkload", "ChaosReport", "run_chaos"]


@dataclass(frozen=True, slots=True)
class ChaosWorkload:
    """The seeded workload a chaos run replays."""

    users: int = 32
    targets: int = 48
    steps: int = 240
    seed: int = 0
    anonymizer: str = "adaptive"  # any registered policy name
    pyramid_height: int = 6
    bounds: Rect = field(default=Rect(0.0, 0.0, 1024.0, 1024.0))
    #: Continuous NN queries registered on the monitor (0 disables it).
    continuous_queries: int = 6
    #: Safe-region continuous kNN queries (k=3) registered on the
    #: monitor, drawn from the *end* of the sorted user list so they can
    #: coexist with the NN queries on small populations.
    continuous_knn: int = 0
    #: Steps between monitor flushes.
    flush_every: int = 40
    #: Anonymizer shard count (1 = the single-pyramid implementations).
    shards: int = 1
    #: Run the *faulted* deployment's shards as worker processes over
    #: the wire protocol.  The baseline stays in-process, so the diff
    #: doubles as a cross-runtime equivalence check.
    parallel: bool = False

    def __post_init__(self) -> None:
        if self.users < 2 or self.targets < 1 or self.steps < 1:
            raise ValueError("workload needs >= 2 users, >= 1 target, >= 1 step")
        from repro.anonymizer.policy import get_policy

        get_policy(self.anonymizer)  # raises ValueError for unknown names
        if self.continuous_queries > self.users:
            raise ValueError("more continuous queries than users")
        if self.continuous_knn < 0 or self.continuous_knn > self.users:
            raise ValueError("continuous_knn must be in [0, users]")
        if self.flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")


@dataclass(frozen=True, slots=True)
class ChaosReport:
    """The deterministic outcome of one chaos run."""

    scenario: str
    seed: int
    workload: dict[str, object]
    runtime: dict[str, object]
    slo: dict[str, object]
    privacy_violations: int
    trace_digest: str

    @property
    def ok(self) -> bool:
        """The hard gate: no silent privacy violation ever."""
        return self.privacy_violations == 0

    def to_json(self, indent: int | None = None) -> str:
        """Canonical JSON — byte-identical for identical seeds."""
        payload = {
            "scenario": self.scenario,
            "seed": self.seed,
            "workload": self.workload,
            "runtime": self.runtime,
            "slo": self.slo,
            "privacy_violations": self.privacy_violations,
            "trace_digest": self.trace_digest,
        }
        if indent is None:
            return json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return json.dumps(payload, sort_keys=True, indent=indent)


@dataclass(frozen=True, slots=True)
class _Op:
    """One scripted workload step."""

    kind: str  # "move" | "nn" | "range"
    uid: str
    point: Point | None = None  # move destination
    radius: float = 0.0  # range radius


def _script(workload: ChaosWorkload) -> tuple[
    dict[str, tuple[Point, PrivacyProfile]], dict[str, Point], list[_Op]
]:
    """Generate the deterministic cast and op sequence for a workload."""
    rng_users, rng_targets, rng_ops = spawn_rngs(workload.seed, 3)
    bounds = workload.bounds

    def random_point(rng: np.random.Generator) -> Point:
        x = bounds.x_min + float(rng.random()) * bounds.width
        y = bounds.y_min + float(rng.random()) * bounds.height
        return Point(x, y)

    users: dict[str, tuple[Point, PrivacyProfile]] = {}
    for i in range(workload.users):
        k = 2 + int(rng_users.integers(6))
        a_min = 0.0 if rng_users.random() < 0.5 else bounds.area / 4096.0
        users[f"u{i:03d}"] = (random_point(rng_users), PrivacyProfile(k, a_min))
    targets = {
        f"t{i:03d}": random_point(rng_targets) for i in range(workload.targets)
    }
    uids = sorted(users)
    ops: list[_Op] = []
    for _step in range(workload.steps):
        uid = uids[int(rng_ops.integers(len(uids)))]
        draw = float(rng_ops.random())
        if draw < 0.5:
            ops.append(_Op("move", uid, point=random_point(rng_ops)))
        elif draw < 0.8:
            ops.append(_Op("nn", uid))
        else:
            radius = bounds.width * (0.02 + 0.1 * float(rng_ops.random()))
            ops.append(_Op("range", uid, radius=radius))
    return users, targets, ops


def _build_deployment(
    workload: ChaosWorkload,
    users: dict[str, tuple[Point, PrivacyProfile]],
    targets: dict[str, Point],
    runtime: ResilienceRuntime | None,
) -> tuple["Casper", dict[str, "MobileClient"], "ContinuousQueryMonitor | None"]:
    # Imported here: repro.server imports repro.resilience.runtime only
    # under TYPE_CHECKING, and this module must not complete the cycle
    # at import time either.
    from repro.continuous.monitor import ContinuousQueryMonitor
    from repro.server.casper import Casper
    from repro.server.client import MobileClient

    casper = Casper(
        workload.bounds,
        pyramid_height=workload.pyramid_height,
        anonymizer=workload.anonymizer,  # type: ignore[arg-type]
        resilience=runtime,
        shards=workload.shards,
        # Only the faulted deployment runs the process pool: the
        # baseline replays in-process, so matching answers also witness
        # the two runtimes' byte-for-byte equivalence.
        parallel=workload.parallel and runtime is not None,
    )
    clients = {
        uid: MobileClient(casper, uid, point, profile)
        for uid, (point, profile) in sorted(users.items())
    }
    casper.add_public_targets(dict(sorted(targets.items())))
    monitor: ContinuousQueryMonitor | None = None
    if workload.continuous_queries or workload.continuous_knn:
        monitor = ContinuousQueryMonitor(casper)
        for uid in sorted(users)[: workload.continuous_queries]:
            monitor.register_nn(f"cq-{uid}", uid)
        if workload.continuous_knn:
            for uid in sorted(users)[-workload.continuous_knn:]:
                monitor.register_knn(f"ck-{uid}", uid, k=3)
    return casper, clients, monitor


@dataclass(slots=True)
class _RunOutcome:
    """Raw per-deployment results, diffed by :func:`run_chaos`."""

    answers: list[object] = field(default_factory=list)
    monitor_answers: dict[str, tuple[str, ...]] = field(default_factory=dict)
    update_failures: int = 0
    degraded_queries: int = 0
    monitor_degraded_max: int = 0
    flushes: int = 0
    safe_region_counters: dict[str, int] = field(default_factory=dict)


def _run_one(
    workload: ChaosWorkload,
    users: dict[str, tuple[Point, PrivacyProfile]],
    targets: dict[str, Point],
    ops: list[_Op],
    runtime: ResilienceRuntime | None,
) -> _RunOutcome:
    """Drive one deployment through the script; returns raw outcomes."""
    casper, clients, monitor = _build_deployment(workload, users, targets, runtime)
    try:
        outcome = _drive(workload, users, ops, casper, clients, monitor)
    finally:
        # Reap worker processes even when an op raises: a chaos run must
        # never leak OS processes, least of all a failing one.
        casper.close()
    return outcome


def _drive(
    workload: ChaosWorkload,
    users: dict[str, tuple[Point, PrivacyProfile]],
    ops: list[_Op],
    casper: "Casper",
    clients: dict[str, "MobileClient"],
    monitor: "ContinuousQueryMonitor | None",
) -> _RunOutcome:
    outcome = _RunOutcome()
    for step, op in enumerate(ops, start=1):
        if op.kind == "move":
            assert op.point is not None
            try:
                clients[op.uid].move_to(op.point)
            except UpdateDeliveryError:
                outcome.update_failures += 1
            outcome.answers.append(None)
        elif op.kind == "nn":
            try:
                result = casper.query_nearest_public(op.uid)
                outcome.answers.append(str(result.answer))
            except DegradedModeError:
                outcome.degraded_queries += 1
                outcome.answers.append("<degraded>")
        else:
            try:
                result = casper.query_range_public(op.uid, op.radius)
                outcome.answers.append(
                    tuple(sorted(str(o) for o in result.answer))
                )
            except DegradedModeError:
                outcome.degraded_queries += 1
                outcome.answers.append("<degraded>")
        if monitor is not None and step % workload.flush_every == 0:
            monitor.flush()
            outcome.flushes += 1
            outcome.monitor_degraded_max = max(
                outcome.monitor_degraded_max, len(monitor.last_degraded)
            )
    if monitor is not None:
        monitor.flush()
        outcome.flushes += 1
        outcome.monitor_degraded_max = max(
            outcome.monitor_degraded_max, len(monitor.last_degraded)
        )
        query_ids = [
            f"cq-{uid}"
            for uid in sorted(users)[: workload.continuous_queries]
        ]
        if workload.continuous_knn:
            query_ids += [
                f"ck-{uid}"
                for uid in sorted(users)[-workload.continuous_knn:]
            ]
        for query_id in query_ids:
            outcome.monitor_answers[query_id] = tuple(
                sorted(str(o) for o in monitor.answer_of(query_id))
            )
        outcome.safe_region_counters = dict(monitor.counters)
    # Whatever the faults did, the surviving state must be internally
    # consistent — a corrupted pyramid would be a resilience bug even if
    # no query happened to observe it.
    casper.anonymizer.check_invariants()
    return outcome


def run_chaos(
    plan: FaultPlan,
    workload: ChaosWorkload | None = None,
    retry: RetryPolicy | None = None,
    config: ResilienceConfig | None = None,
) -> ChaosReport:
    """Replay ``workload`` fault-free and under ``plan``; diff and audit."""
    workload = workload if workload is not None else ChaosWorkload()
    users, targets, ops = _script(workload)
    baseline = _run_one(workload, users, targets, ops, None)
    runtime = ResilienceRuntime(plan, retry=retry, config=config)
    faulted = _run_one(workload, users, targets, ops, runtime)

    query_ops = sum(1 for op in ops if op.kind != "move")
    move_ops = len(ops) - query_ops
    matching = sum(
        1
        for base, fault in zip(baseline.answers, faulted.answers)
        if base is not None and fault != "<degraded>" and base == fault
    )
    answered = query_ops - faulted.degraded_queries
    monitor_matching = sum(
        1
        for query_id, base in baseline.monitor_answers.items()
        if faulted.monitor_answers.get(query_id) == base
    )
    slo: dict[str, object] = {
        "ops_total": len(ops),
        "moves_total": move_ops,
        "queries_total": query_ops,
        "queries_answered": answered,
        "queries_degraded": faulted.degraded_queries,
        "answers_matching_baseline": matching,
        "match_ratio": round(matching / query_ops, 6) if query_ops else 1.0,
        "availability": round(answered / query_ops, 6) if query_ops else 1.0,
        "update_failures": faulted.update_failures,
        "monitor_flushes": faulted.flushes,
        "monitor_degraded_max": faulted.monitor_degraded_max,
        "monitor_queries_matching_baseline": monitor_matching,
        "monitor_queries_total": (
            workload.continuous_queries + workload.continuous_knn
        ),
        "monitor_knn_queries_total": workload.continuous_knn,
        "safe_region_counters": dict(faulted.safe_region_counters),
    }
    violations = runtime.privacy_violations()
    return ChaosReport(
        scenario=plan.name,
        seed=plan.seed,
        workload={
            "users": workload.users,
            "targets": workload.targets,
            "steps": workload.steps,
            "seed": workload.seed,
            "anonymizer": workload.anonymizer,
            "pyramid_height": workload.pyramid_height,
            "continuous_queries": workload.continuous_queries,
            "continuous_knn": workload.continuous_knn,
            "flush_every": workload.flush_every,
            "shards": workload.shards,
            "parallel": workload.parallel,
        },
        runtime=runtime.report(),
        slo=slo,
        privacy_violations=len(violations),
        trace_digest=runtime.injector.trace_digest(),
    )
