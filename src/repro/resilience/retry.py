"""Retry policies — exponential backoff with deterministic jitter.

The reproduction has no real network, so a backoff never *sleeps*: the
delay a real client would wait is accounted as **virtual seconds** in
the resilience counters (pure float arithmetic over a seeded stream,
hence reproducible).  What the policy really controls is how many times
a sender re-offers a message to the fault injector before declaring the
operation degraded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["RetryPolicy"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff with decorrelation jitter.

    Attempt ``n`` (0-based) waits
    ``min(max_delay, base_delay * multiplier**n) * (1 + jitter * u)``
    virtual seconds, with ``u`` uniform in ``[0, 1)`` from the caller's
    seeded stream.  ``max_attempts`` counts total tries, so
    ``max_attempts=1`` means "no retries".
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff(self, attempt: int, rng: np.random.Generator) -> float:
        """Virtual seconds to wait after failed attempt ``attempt``."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        base = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        return base * (1.0 + self.jitter * float(rng.random()))

    def schedule(self, rng: np.random.Generator) -> Iterator[float]:
        """The full backoff sequence (one delay per retry, i.e.
        ``max_attempts - 1`` values)."""
        for attempt in range(self.max_attempts - 1):
            yield self.backoff(attempt, rng)

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Single-shot: one attempt, no backoff."""
        return cls(max_attempts=1, base_delay=0.0, jitter=0.0)
