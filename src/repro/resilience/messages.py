"""Wire format for the client → anonymizer location-update channel.

Mirrors the 64-byte discipline of ``repro.server.codec`` (one logical
record = 64 bytes, so the Figure 17 transmission model prices update
traffic the same way it prices candidate records), but lives on the
*trusted* side: an update carries the user's exact location, which per
the system model may travel only between the mobile device and the
location anonymizer.

Record layout (little-endian, 64 bytes)::

    ========  =====  ==========================================
    offset    size   field
    ========  =====  ==========================================
    0         4      magic ``b"CUPD"``
    4         2      format version (currently 1)
    6         2      flags (reserved, 0)
    8         4      sequence number (uint32, per-user, monotone)
    12        20     user id, UTF-8, NUL-padded
    32        16     x, y as f64
    48        4      profile k (uint32)
    52        8      profile A_min as f64
    60        4      CRC-32 of bytes [0, 60)
    ========  =====  ==========================================

The trailing CRC makes *any* single-byte corruption detectable, so a
flipped coordinate can never be silently applied — the receiver rejects
the record and the client's retry loop re-sends it.  The update is
self-describing (it carries the privacy profile), which is what lets an
anonymizer that lost a user's state re-register them from the next
update alone — the crash-recovery heal path.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.anonymizer import PrivacyProfile
from repro.geometry import Point

__all__ = ["UPDATE_RECORD_SIZE", "LocationUpdate", "encode_update", "decode_update"]

UPDATE_RECORD_SIZE = 64
_MAGIC = b"CUPD"
_VERSION = 1
_STRUCT = struct.Struct("<4sHHI20sddIdI")
assert _STRUCT.size == UPDATE_RECORD_SIZE
_CRC_OFFSET = UPDATE_RECORD_SIZE - 4


@dataclass(frozen=True, slots=True)
class LocationUpdate:
    """One location report from a mobile client."""

    uid: str
    seq: int
    point: Point
    profile: PrivacyProfile


def encode_update(update: LocationUpdate) -> bytes:
    """Serialize one location update to exactly 64 bytes."""
    uid_bytes = update.uid.encode("utf-8")
    if len(uid_bytes) > 20:
        raise ValueError(
            f"user id too long for the update wire format: {update.uid!r}"
        )
    if not 0 <= update.seq < 2**32:
        raise ValueError(f"sequence number out of uint32 range: {update.seq}")
    body = _STRUCT.pack(
        _MAGIC,
        _VERSION,
        0,
        update.seq,
        uid_bytes,
        update.point.x,
        update.point.y,
        update.profile.k,
        update.profile.a_min,
        0,
    )
    crc = zlib.crc32(body[:_CRC_OFFSET])
    return body[:_CRC_OFFSET] + struct.pack("<I", crc)


def decode_update(payload: bytes) -> LocationUpdate:
    """Deserialize and *verify* one update record.

    Raises ``ValueError`` on any length, magic, version or CRC mismatch
    — a corrupted update is rejected, never partially applied.
    """
    if len(payload) != UPDATE_RECORD_SIZE:
        raise ValueError(
            f"update record must be {UPDATE_RECORD_SIZE} bytes, got {len(payload)}"
        )
    magic, version, _flags, seq, uid_bytes, x, y, k, a_min, crc = _STRUCT.unpack(
        payload
    )
    if magic != _MAGIC:
        raise ValueError("bad update-record magic")
    if version != _VERSION:
        raise ValueError(f"unsupported update-record version {version}")
    if crc != zlib.crc32(payload[:_CRC_OFFSET]):
        raise ValueError("update record failed its CRC check (corrupt payload)")
    uid = uid_bytes.rstrip(b"\x00").decode("utf-8")
    return LocationUpdate(uid, seq, Point(x, y), PrivacyProfile(k, a_min))
