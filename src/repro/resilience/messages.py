"""Re-export shim: the location-update wire format now lives in
:mod:`repro.messages` (one home for every cross-plane message type,
including the shard-routing envelope).  Import from there in new code;
this module stays for compatibility.
"""

from __future__ import annotations

from repro.messages import (
    UPDATE_RECORD_SIZE,
    LocationUpdate,
    decode_update,
    encode_update,
)

__all__ = ["UPDATE_RECORD_SIZE", "LocationUpdate", "encode_update", "decode_update"]
