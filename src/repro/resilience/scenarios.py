"""Named fault scenarios — the chaos harness's canned failure models.

Each scenario is a :class:`~repro.resilience.faults.FaultPlan` with a
fixed default seed, so ``python -m repro chaos --scenario drop-heavy``
is reproducible out of the box; CI's nightly matrix re-runs the same
scenarios under a sweep of seeds (``FaultPlan.with_seed``).

The three the CI ``resilience`` job gates on every push:

* ``drop-heavy`` — heavy message loss with some duplication: exercises
  the retry budget and idempotent re-application;
* ``crash-restart`` — periodic anonymizer crashes plus silent per-user
  state loss: exercises snapshot restore, the sequence-table rollback
  and the heal-by-update path;
* ``reorder`` — delays, reorders and duplicates: exercises the held-
  message release machinery and sequence-number deduplication;
* ``shard-crash`` — periodic single-shard crashes with light message
  loss: exercises per-shard snapshot restore, survivor availability and
  the purge-then-re-register heal path (run with a sharded workload;
  unsharded deployments degenerate it to whole-process crashes);
* ``worker-crash`` — periodic shard-worker *process* kills with light
  message loss: exercises the supervisor's respawn-and-heal over the
  real wire (run with ``--parallel``; in-process deployments degenerate
  it to whole-process crashes);
* ``continuous-drift`` — moderate loss, reordering and delay plus
  periodic worker kills, aimed at the safe-region continuous-kNN
  monitor (run with ``--continuous-knn``): validity regions computed
  from stale-but-audited cloaks must still suppress correctly, and the
  gate requires zero privacy violations — faults degrade availability,
  never answers (in-process deployments degenerate the worker kills to
  whole-process crashes).
"""

from __future__ import annotations

from repro.resilience.faults import FaultPlan

__all__ = ["SCENARIOS", "CI_SCENARIOS", "get_scenario"]

SCENARIOS: dict[str, FaultPlan] = {
    plan.name: plan
    for plan in (
        FaultPlan(name="calm", seed=7),
        FaultPlan(name="drop-heavy", seed=11, drop=0.25, duplicate=0.05),
        FaultPlan(
            name="crash-restart", seed=13, crash_period=40, lose_user=0.02
        ),
        FaultPlan(
            name="reorder",
            seed=17,
            reorder=0.20,
            delay=0.10,
            delay_ticks=3,
            duplicate=0.10,
        ),
        FaultPlan(name="corrupt-wire", seed=19, corrupt=0.15, drop=0.05),
        FaultPlan(
            name="shard-crash",
            seed=29,
            shard_crash_period=35,
            drop=0.05,
        ),
        FaultPlan(
            name="worker-crash",
            seed=31,
            worker_crash_period=35,
            drop=0.05,
        ),
        FaultPlan(
            name="continuous-drift",
            seed=37,
            drop=0.10,
            reorder=0.10,
            delay=0.05,
            delay_ticks=2,
            worker_crash_period=45,
        ),
        FaultPlan(
            name="flaky-everything",
            seed=23,
            drop=0.10,
            duplicate=0.10,
            delay=0.05,
            delay_ticks=2,
            reorder=0.10,
            corrupt=0.05,
            crash_period=60,
            lose_user=0.01,
        ),
    )
}

#: The subset every push's CI ``resilience`` job runs.
CI_SCENARIOS = (
    "drop-heavy",
    "crash-restart",
    "reorder",
    "shard-crash",
    "continuous-drift",
)


def get_scenario(name: str, seed: int | None = None) -> FaultPlan:
    """Look up a named scenario, optionally re-seeded."""
    try:
        plan = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown fault scenario {name!r}; known: {known}") from None
    return plan if seed is None else plan.with_seed(seed)
