"""Immutable 2-D points and primitive point operations.

Everything in Casper's geometry happens in the plane: user locations,
target objects, pyramid cells, cloaked regions.  ``Point`` is deliberately
a tiny frozen dataclass rather than a numpy array so that single-point
operations stay allocation-cheap and hashable (points are used as
dictionary keys in the anonymizer's hash table and in test oracles).
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from dataclasses import dataclass

__all__ = ["Point", "EPSILON"]

#: Absolute tolerance used by geometric predicates throughout the package.
#: The service area in the experiments is the unit square, so 1e-12 is far
#: below any meaningful coordinate difference while staying well above
#: double-precision noise accumulated by the constructions we perform.
EPSILON = 1e-12


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the plane with float coordinates."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance; avoids the sqrt for comparisons."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def midpoint(self, other: "Point") -> "Point":
        """The point halfway between ``self`` and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def almost_equals(self, other: "Point", tol: float = EPSILON) -> bool:
        """Coordinate-wise equality within ``tol``."""
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol

    def as_tuple(self) -> tuple[float, float]:
        """The point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
