"""Line segments and the perpendicular-bisector construction of Algorithm 2.

The *middle point step* of the privacy-aware NN algorithm needs, for an
edge :math:`e_{ij} = v_i v_j` of the cloaked region and the two filter
targets :math:`t_i, t_j`, the point :math:`m_{ij}` on the edge that is
equidistant from both targets.  Geometrically :math:`m_{ij}` is the
intersection of the perpendicular bisector of the segment
:math:`t_i t_j` with the edge.  :func:`bisector_intersection` computes it
robustly, including the degenerate configurations that arise in practice
(equal targets, bisector parallel to the edge, intersection outside the
edge because of floating-point jitter).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.point import EPSILON, Point

__all__ = ["Segment", "bisector_intersection", "equidistant_point_on_segment"]


@dataclass(frozen=True, slots=True)
class Segment:
    """A directed line segment from ``a`` to ``b``."""

    a: Point
    b: Point

    def length(self) -> float:
        return self.a.distance_to(self.b)

    def midpoint(self) -> Point:
        return self.a.midpoint(self.b)

    def point_at(self, t: float) -> Point:
        """The point ``a + t * (b - a)``; ``t`` in ``[0, 1]`` stays on the
        segment."""
        return Point(
            self.a.x + t * (self.b.x - self.a.x),
            self.a.y + t * (self.b.y - self.a.y),
        )

    def contains_point(self, p: Point, tol: float = 1e-9) -> bool:
        """True when ``p`` lies on the segment within ``tol``."""
        return self.distance_to_point(p) <= tol

    def distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the nearest point of the segment."""
        return p.distance_to(self.closest_point_to(p))

    def closest_point_to(self, p: Point) -> Point:
        """The point of the segment nearest to ``p``."""
        dx = self.b.x - self.a.x
        dy = self.b.y - self.a.y
        denom = dx * dx + dy * dy
        if denom <= EPSILON:
            return self.a
        t = ((p.x - self.a.x) * dx + (p.y - self.a.y) * dy) / denom
        t = min(max(t, 0.0), 1.0)
        return self.point_at(t)


def bisector_intersection(edge: Segment, ti: Point, tj: Point) -> Point | None:
    """Intersect the perpendicular bisector of ``ti tj`` with ``edge``.

    Returns the paper's point :math:`m_{ij}`, or ``None`` when it does not
    exist:

    * ``ti`` and ``tj`` coincide — every point is equidistant, and the
      paper treats :math:`m_{ij}` as absent (``d_m = 0``);
    * the bisector is parallel to (and off) the edge's supporting line;
    * the intersection falls strictly outside the closed edge.

    The bisector of :math:`t_i t_j` is the locus of points ``p`` with
    ``|p - ti| = |p - tj|``.  We solve for the parameter ``t`` of the edge
    point ``e(t) = vi + t (vj - vi)`` satisfying that equation; it is
    linear in ``t``.
    """
    vi, vj = edge.a, edge.b
    # Signed "which target is closer" potential: f(p) = |p-ti|^2 - |p-tj|^2
    # is linear in p, so f(e(t)) is linear in t and m_ij is its root.
    fi = vi.squared_distance_to(ti) - vi.squared_distance_to(tj)
    fj = vj.squared_distance_to(ti) - vj.squared_distance_to(tj)
    if abs(fi - fj) <= EPSILON:
        # f is constant along the edge: either the whole edge is
        # equidistant (fi == 0) or the bisector never meets it.
        if abs(fi) <= EPSILON:
            return edge.midpoint()
        return None
    t = fi / (fi - fj)
    if t < -EPSILON or t > 1.0 + EPSILON:
        return None
    t = min(max(t, 0.0), 1.0)
    return edge.point_at(t)


def equidistant_point_on_segment(
    edge: Segment, ti: Point, tj: Point
) -> tuple[Point | None, float]:
    """The middle point :math:`m_{ij}` and the distance :math:`d_m`.

    Convenience wrapper for Algorithm 2 line 14: when :math:`m_{ij}`
    exists, :math:`d_m` is its (common) distance to both targets; when it
    does not, the paper sets :math:`d_m = 0`.
    """
    if ti.almost_equals(tj):
        return None, 0.0
    m = bisector_intersection(edge, ti, tj)
    if m is None:
        return None, 0.0
    # By construction |m - ti| == |m - tj| up to rounding; use the max to
    # stay conservative (inclusiveness over minimality at the 1e-15 scale).
    return m, max(m.distance_to(ti), m.distance_to(tj))


def orientation(a: Point, b: Point, c: Point) -> float:
    """Twice the signed area of triangle ``abc``; positive when ``c`` is to
    the left of the directed line ``a -> b``."""
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)


def segments_intersect(s1: Segment, s2: Segment) -> bool:
    """True when two closed segments share at least one point."""
    d1 = orientation(s2.a, s2.b, s1.a)
    d2 = orientation(s2.a, s2.b, s1.b)
    d3 = orientation(s1.a, s1.b, s2.a)
    d4 = orientation(s1.a, s1.b, s2.b)
    if ((d1 > 0 and d2 < 0) or (d1 < 0 and d2 > 0)) and (
        (d3 > 0 and d4 < 0) or (d3 < 0 and d4 > 0)
    ):
        return True

    def on_segment(s: Segment, p: Point) -> bool:
        return (
            min(s.a.x, s.b.x) - EPSILON <= p.x <= max(s.a.x, s.b.x) + EPSILON
            and min(s.a.y, s.b.y) - EPSILON <= p.y <= max(s.a.y, s.b.y) + EPSILON
        )

    if abs(d1) <= EPSILON and on_segment(s2, s1.a):
        return True
    if abs(d2) <= EPSILON and on_segment(s2, s1.b):
        return True
    if abs(d3) <= EPSILON and on_segment(s1, s2.a):
        return True
    if abs(d4) <= EPSILON and on_segment(s1, s2.b):
        return True
    return False


def project_point_to_line(p: Point, a: Point, b: Point) -> Point:
    """Orthogonal projection of ``p`` onto the infinite line through
    ``a`` and ``b`` (``a != b``)."""
    dx = b.x - a.x
    dy = b.y - a.y
    denom = dx * dx + dy * dy
    if denom <= EPSILON:
        raise ValueError("line is degenerate: a == b")
    t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / denom
    return Point(a.x + t * dx, a.y + t * dy)


def unit_vector(a: Point, b: Point) -> tuple[float, float]:
    """The unit direction from ``a`` to ``b``; raises on zero length."""
    dx = b.x - a.x
    dy = b.y - a.y
    norm = math.hypot(dx, dy)
    if norm <= EPSILON:
        raise ValueError("cannot normalise zero-length vector")
    return dx / norm, dy / norm
