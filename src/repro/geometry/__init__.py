"""Geometry kernel: points, rectangles, segments, bisector constructions.

This package is dependency-free (pure Python + ``math``) and provides the
exact geometric primitives that the Casper anonymizer and privacy-aware
query processor are built from.
"""

from repro.geometry.point import EPSILON, Point
from repro.geometry.rect import Edge, Rect
from repro.geometry.segment import (
    Segment,
    bisector_intersection,
    equidistant_point_on_segment,
    orientation,
    project_point_to_line,
    segments_intersect,
    unit_vector,
)

__all__ = [
    "EPSILON",
    "Point",
    "Rect",
    "Edge",
    "Segment",
    "bisector_intersection",
    "equidistant_point_on_segment",
    "orientation",
    "project_point_to_line",
    "segments_intersect",
    "unit_vector",
]
