"""Axis-aligned rectangles.

Rectangles are the universal currency of this reproduction: pyramid cells,
cloaked spatial regions, R-tree bounding boxes, the extended search area
``A_EXT`` of Algorithm 2, and private target regions are all ``Rect``
instances.

Vertex numbering follows the paper's Figure 5: a cloaked area ``A`` has
vertices :math:`v_1` (top-left), :math:`v_2` (top-right), :math:`v_3`
(bottom-left) and :math:`v_4` (bottom-right), and four edges
:math:`e_{12}` (top), :math:`e_{13}` (left), :math:`e_{24}` (right) and
:math:`e_{34}` (bottom).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.point import EPSILON, Point

__all__ = ["Rect", "Edge"]


@dataclass(frozen=True, slots=True)
class Edge:
    """One side of a rectangle: two vertices plus its outward direction.

    ``direction`` is one of ``"top"``, ``"bottom"``, ``"left"``,
    ``"right"`` and names the side of the rectangle the edge lies on,
    which is also the direction in which Algorithm 2 expands ``A_EXT``
    for this edge.
    """

    vi: Point
    vj: Point
    direction: str

    def length(self) -> float:
        """Length of the edge."""
        return self.vi.distance_to(self.vj)


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``.

    Degenerate rectangles (zero width and/or height) are permitted; they
    represent exact point locations stored uniformly with cloaked regions.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_min > self.x_max or self.y_min > self.y_max:
            raise ValueError(
                f"invalid rect: ({self.x_min}, {self.y_min}, "
                f"{self.x_max}, {self.y_max})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_points(a: Point, b: Point) -> "Rect":
        """The bounding rectangle of two points."""
        return Rect(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @staticmethod
    def from_center(center: Point, width: float, height: float) -> "Rect":
        """A rectangle of the given size centred on ``center``."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        return Rect(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )

    @staticmethod
    def point(p: Point) -> "Rect":
        """A degenerate rectangle covering exactly the point ``p``."""
        return Rect(p.x, p.y, p.x, p.y)

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def is_degenerate(self) -> bool:
        """True when the rectangle has zero area."""
        return self.width <= 0.0 or self.height <= 0.0

    # ------------------------------------------------------------------
    # Vertices and edges (paper's Figure 5 numbering)
    # ------------------------------------------------------------------
    @property
    def top_left(self) -> Point:
        return Point(self.x_min, self.y_max)

    @property
    def top_right(self) -> Point:
        return Point(self.x_max, self.y_max)

    @property
    def bottom_left(self) -> Point:
        return Point(self.x_min, self.y_min)

    @property
    def bottom_right(self) -> Point:
        return Point(self.x_max, self.y_min)

    def vertices(self) -> tuple[Point, Point, Point, Point]:
        """The vertices ``(v1, v2, v3, v4)`` in the paper's order:
        top-left, top-right, bottom-left, bottom-right."""
        return (self.top_left, self.top_right, self.bottom_left, self.bottom_right)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """All four corners (alias of :meth:`vertices`)."""
        return self.vertices()

    def edges(self) -> tuple[Edge, Edge, Edge, Edge]:
        """The four edges with their outward expansion directions."""
        v1, v2, v3, v4 = self.vertices()
        return (
            Edge(v1, v2, "top"),
            Edge(v1, v3, "left"),
            Edge(v2, v4, "right"),
            Edge(v3, v4, "bottom"),
        )

    def farthest_corner_from(self, p: Point) -> Point:
        """The corner of this rectangle farthest from ``p``.

        This is the "furthest corner" used by the private-data variant of
        Algorithm 2 (Section 5.2.1): the pessimistic position of a cloaked
        target as seen from a query-region vertex.
        """
        x = self.x_min if abs(p.x - self.x_min) >= abs(p.x - self.x_max) else self.x_max
        y = self.y_min if abs(p.y - self.y_min) >= abs(p.y - self.y_max) else self.y_max
        return Point(x, y)

    def nearest_point_to(self, p: Point) -> Point:
        """The point of this (closed) rectangle nearest to ``p``."""
        return Point(
            min(max(p.x, self.x_min), self.x_max),
            min(max(p.y, self.y_min), self.y_max),
        )

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def min_distance_to_point(self, p: Point) -> float:
        """Minimum distance from ``p`` to any point of the rectangle
        (zero when ``p`` is inside)."""
        dx = max(self.x_min - p.x, 0.0, p.x - self.x_max)
        dy = max(self.y_min - p.y, 0.0, p.y - self.y_max)
        return math.hypot(dx, dy)

    def max_distance_to_point(self, p: Point) -> float:
        """Maximum distance from ``p`` to any point of the rectangle,
        attained at :meth:`farthest_corner_from`."""
        dx = max(abs(p.x - self.x_min), abs(p.x - self.x_max))
        dy = max(abs(p.y - self.y_min), abs(p.y - self.y_max))
        return math.hypot(dx, dy)

    def min_distance_to_rect(self, other: "Rect") -> float:
        """Minimum distance between two rectangles (zero on overlap)."""
        dx = max(other.x_min - self.x_max, 0.0, self.x_min - other.x_max)
        dy = max(other.y_min - self.y_max, 0.0, self.y_min - other.y_max)
        return math.hypot(dx, dy)

    def max_distance_to_rect(self, other: "Rect") -> float:
        """Maximum distance between any point of ``self`` and any point of
        ``other``."""
        dx = max(self.x_max - other.x_min, other.x_max - self.x_min)
        dy = max(self.y_max - other.y_min, other.y_max - self.y_min)
        return math.hypot(max(dx, 0.0), max(dy, 0.0))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, p: Point, tol: float = EPSILON) -> bool:
        """True when ``p`` lies in the closed rectangle (within ``tol``)."""
        return (
            self.x_min - tol <= p.x <= self.x_max + tol
            and self.y_min - tol <= p.y <= self.y_max + tol
        )

    def contains_rect(self, other: "Rect", tol: float = EPSILON) -> bool:
        """True when ``other`` is fully inside the closed rectangle."""
        return (
            self.x_min - tol <= other.x_min
            and self.y_min - tol <= other.y_min
            and other.x_max <= self.x_max + tol
            and other.y_max <= self.y_max + tol
        )

    def intersects(self, other: "Rect", tol: float = EPSILON) -> bool:
        """True when the closed rectangles share at least one point."""
        return (
            self.x_min <= other.x_max + tol
            and other.x_min <= self.x_max + tol
            and self.y_min <= other.y_max + tol
            and other.y_min <= self.y_max + tol
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        """The smallest rectangle covering both operands."""
        return Rect(
            min(self.x_min, other.x_min),
            min(self.y_min, other.y_min),
            max(self.x_max, other.x_max),
            max(self.y_max, other.y_max),
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap rectangle, or ``None`` when disjoint."""
        x_min = max(self.x_min, other.x_min)
        y_min = max(self.y_min, other.y_min)
        x_max = min(self.x_max, other.x_max)
        y_max = min(self.y_max, other.y_max)
        if x_min > x_max or y_min > y_max:
            return None
        return Rect(x_min, y_min, x_max, y_max)

    def overlap_area(self, other: "Rect") -> float:
        """Area of the overlap with ``other`` (zero when disjoint)."""
        overlap = self.intersection(other)
        return 0.0 if overlap is None else overlap.area

    def overlap_fraction(self, other: "Rect") -> float:
        """Fraction of ``self``'s area that lies inside ``other``.

        Degenerate ``self`` (a point) yields 1.0 when contained, else 0.0 —
        the natural limit used by the probabilistic candidate policies.
        """
        if self.area <= 0.0:
            return 1.0 if other.contains_rect(self) else 0.0
        return self.overlap_area(other) / self.area

    def expanded(
        self,
        left: float = 0.0,
        right: float = 0.0,
        bottom: float = 0.0,
        top: float = 0.0,
    ) -> "Rect":
        """A copy grown outward by the given per-side amounts.

        This implements the per-edge ``max_d`` expansion of Algorithm 2's
        extended-area step; negative amounts shrink the rectangle and raise
        ``ValueError`` when they would invert it.
        """
        return Rect(
            self.x_min - left,
            self.y_min - bottom,
            self.x_max + right,
            self.y_max + top,
        )

    def expanded_uniform(self, amount: float) -> "Rect":
        """A copy grown by ``amount`` on every side (Minkowski sum with a
        square); used by private range queries."""
        return self.expanded(amount, amount, amount, amount)

    def clipped_to(self, bounds: "Rect") -> "Rect":
        """This rectangle clipped to ``bounds``; raises when disjoint."""
        clipped = self.intersection(bounds)
        if clipped is None:
            raise ValueError(f"{self} does not intersect bounds {bounds}")
        return clipped

    def as_tuple(self) -> tuple[float, float, float, float]:
        """The rectangle as ``(x_min, y_min, x_max, y_max)``."""
        return (self.x_min, self.y_min, self.x_max, self.y_max)
