"""Spatial indexes: R-tree, uniform grid, PR quadtree, brute force.

All implement the :class:`~repro.spatial.index.SpatialIndex` contract and
are interchangeable behind the privacy-aware query processor.
"""

from repro.spatial.bruteforce import BruteForceIndex
from repro.spatial.grid import GridIndex
from repro.spatial.index import SpatialIndex
from repro.spatial.kdtree import KDTreeIndex
from repro.spatial.quadtree import QuadTreeIndex
from repro.spatial.rtree import RTreeIndex

__all__ = [
    "SpatialIndex",
    "BruteForceIndex",
    "GridIndex",
    "KDTreeIndex",
    "QuadTreeIndex",
    "RTreeIndex",
]
