"""A bulk-built kd-tree index for point data.

A fourth interchangeable index behind the privacy-aware query processor.
The kd-tree stores *points* only (degenerate rectangles); attempting to
index a true rectangle raises, which keeps the structure honest instead
of silently degrading.  Mutations are handled with a logarithmic-ish
rebuild schedule: deletions tombstone, insertions go to a small overflow
buffer, and the tree rebuilds itself when either grows past a fraction
of the indexed size — the classic "static structure + amortized
rebuild" design.
"""

from __future__ import annotations

import heapq

from repro.geometry import Point, Rect
from repro.spatial.index import SpatialIndex

__all__ = ["KDTreeIndex"]


class _KDNode:
    __slots__ = ("oid", "point", "axis", "left", "right")

    def __init__(self, oid: object, point: Point, axis: int) -> None:
        self.oid = oid
        self.point = point
        self.axis = axis
        self.left: _KDNode | None = None
        self.right: _KDNode | None = None


class KDTreeIndex(SpatialIndex):
    """Point kd-tree with amortized rebuilds.

    ``rebuild_fraction`` controls how much churn (overflow inserts +
    tombstoned deletes, as a fraction of the tree size) is tolerated
    before a full rebuild.
    """

    def __init__(self, rebuild_fraction: float = 0.25) -> None:
        super().__init__()
        if not 0.0 < rebuild_fraction <= 1.0:
            raise ValueError("rebuild_fraction must be in (0, 1]")
        self.rebuild_fraction = rebuild_fraction
        self._root: _KDNode | None = None
        self._tombstones: set[object] = set()
        self._overflow: dict[object, Point] = {}
        self._tree_size = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _clear_impl(self) -> None:
        self._root = None
        self._tombstones.clear()
        self._overflow.clear()
        self._tree_size = 0

    def _insert_impl(self, oid: object, rect: Rect) -> None:
        if rect.width > 0 or rect.height > 0:
            raise ValueError("KDTreeIndex stores points only")
        self._overflow[oid] = rect.center
        self._maybe_rebuild()

    def _remove_impl(self, oid: object, rect: Rect) -> None:
        if oid in self._overflow:
            del self._overflow[oid]
            return
        self._tombstones.add(oid)
        self._maybe_rebuild()

    def bulk_load(self, entries: dict[object, Rect]) -> None:
        self.clear()
        for oid, rect in entries.items():
            if rect.width > 0 or rect.height > 0:
                raise ValueError("KDTreeIndex stores points only")
        self._entries.update(entries)
        for oid in entries:
            self._assign_seq(oid)
        self._rebuild()

    def _maybe_rebuild(self) -> None:
        churn = len(self._overflow) + len(self._tombstones)
        if churn > max(8, self.rebuild_fraction * max(self._tree_size, 1)):
            self._rebuild()

    def _rebuild(self) -> None:
        items = [(oid, rect.center) for oid, rect in self._entries.items()]
        self._root = self._build(items, 0)
        self._tree_size = len(items)
        self._tombstones.clear()
        self._overflow.clear()

    def _build(self, items: list[tuple[object, Point]], axis: int) -> _KDNode | None:
        if not items:
            return None
        items.sort(key=lambda it: (it[1].x if axis == 0 else it[1].y))
        mid = len(items) // 2
        oid, point = items[mid]
        node = _KDNode(oid, point, axis)
        node.left = self._build(items[:mid], 1 - axis)
        node.right = self._build(items[mid + 1 :], 1 - axis)
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _live(self, oid: object) -> bool:
        return oid not in self._tombstones

    def _range_impl(self, region: Rect) -> list[object]:
        result = [
            oid
            for oid, point in self._overflow.items()
            if region.contains_point(point)
        ]
        if self._root is None:
            return result
        stack: list[tuple[_KDNode, float, float, float, float]] = [
            (self._root, float("-inf"), float("-inf"), float("inf"), float("inf"))
        ]
        while stack:
            node, x0, y0, x1, y1 = stack.pop()
            if x0 > region.x_max or x1 < region.x_min:
                continue
            if y0 > region.y_max or y1 < region.y_min:
                continue
            if self._live(node.oid) and region.contains_point(node.point):
                result.append(node.oid)
            if node.axis == 0:
                if node.left is not None:
                    stack.append((node.left, x0, y0, node.point.x, y1))
                if node.right is not None:
                    stack.append((node.right, node.point.x, y0, x1, y1))
            else:
                if node.left is not None:
                    stack.append((node.left, x0, y0, x1, node.point.y))
                if node.right is not None:
                    stack.append((node.right, x0, node.point.y, x1, y1))
        return result

    def _k_nearest_impl(self, point: Point, k: int) -> list[object]:
        # Max-heap of the best k as (-dist, -seq, oid): equal-distance
        # points rank by insertion order, matching the oracle.
        best: list[tuple[float, int, object]] = []

        def consider(oid: object, p: Point) -> None:
            cand = (-p.distance_to(point), -self._seq[oid], oid)
            if len(best) < k:
                heapq.heappush(best, cand)
            elif cand > best[0]:
                heapq.heapreplace(best, cand)

        def visit(node: _KDNode | None) -> None:
            if node is None:
                return
            if self._live(node.oid):
                consider(node.oid, node.point)
            coord = point.x if node.axis == 0 else point.y
            split = node.point.x if node.axis == 0 else node.point.y
            near, far = (
                (node.left, node.right) if coord < split else (node.right, node.left)
            )
            visit(near)
            plane_dist = abs(coord - split)
            # <= rather than <: a far-side point at exactly the current
            # worst distance can still win its tie on insertion order.
            if len(best) < k or plane_dist <= -best[0][0]:
                visit(far)

        visit(self._root)
        for oid, p in self._overflow.items():
            consider(oid, p)
        ordered = sorted(best, key=lambda item: (-item[0], -item[1]))
        return [oid for _neg, _seq, oid in ordered]

    def _k_nearest_by_max_distance_impl(self, point: Point, k: int) -> list[object]:
        # Points are degenerate rectangles: min- and max-distance
        # coincide, so the pruned kNN answers pessimistic kNN directly —
        # including its insertion-order tie-break for coincident points.
        return self._k_nearest_impl(point, k)
