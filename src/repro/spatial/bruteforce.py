"""Brute-force reference index.

Linear scans over the entry dictionary — the correctness oracle that the
accelerated indexes are property-tested against, and a perfectly adequate
index for small datasets.
"""

from __future__ import annotations

import heapq

from repro.geometry import Point, Rect
from repro.spatial.index import SpatialIndex

__all__ = ["BruteForceIndex"]


class BruteForceIndex(SpatialIndex):
    """O(n) implementation of every query; O(1) maintenance."""

    def _insert_impl(self, oid: object, rect: Rect) -> None:
        pass  # the base-class entry dict is the whole data structure

    def _remove_impl(self, oid: object, rect: Rect) -> None:
        pass

    def _clear_impl(self) -> None:
        pass

    def _range_impl(self, region: Rect) -> list[object]:
        return [oid for oid, rect in self._entries.items() if rect.intersects(region)]

    def _k_nearest_impl(self, point: Point, k: int) -> list[object]:
        # Explicit (distance, insertion order) key: this is the ordering
        # the accelerated indexes are contractually required to match.
        scored = heapq.nsmallest(
            k,
            self._entries.items(),
            key=lambda item: (
                item[1].min_distance_to_point(point),
                self._seq[item[0]],
            ),
        )
        return [oid for oid, _rect in scored]
