"""Uniform grid index.

A fixed ``n x n`` bucket grid over a bounded service area.  Rect entries
are registered in every bucket they overlap; nearest-neighbor search
expands outward ring by ring from the query point's bucket, which is the
classic structure used by scalable location servers (SINA-style shared
grids) and matches the pyramid's lowest level used by the anonymizer.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

from repro.errors import OutOfBoundsError
from repro.geometry import Point, Rect
from repro.spatial.index import SpatialIndex

__all__ = ["GridIndex"]


class GridIndex(SpatialIndex):
    """Bucketed uniform grid over ``bounds`` with ``resolution**2`` cells."""

    def __init__(self, bounds: Rect, resolution: int = 64) -> None:
        super().__init__()
        if resolution < 1:
            raise ValueError("resolution must be at least 1")
        if bounds.area <= 0:
            raise ValueError("bounds must have positive area")
        self.bounds = bounds
        self.resolution = resolution
        self._cell_w = bounds.width / resolution
        self._cell_h = bounds.height / resolution
        self._buckets: dict[tuple[int, int], set[object]] = {}

    # ------------------------------------------------------------------
    # Cell arithmetic
    # ------------------------------------------------------------------
    def _clamp_index(self, ix: int, iy: int) -> tuple[int, int]:
        return (
            min(max(ix, 0), self.resolution - 1),
            min(max(iy, 0), self.resolution - 1),
        )

    def cell_of_point(self, p: Point) -> tuple[int, int]:
        """Bucket coordinates containing ``p`` (clamped to the border)."""
        if not self.bounds.contains_point(p, tol=1e-9):
            # bounds are public service-area config; the point is not —
            # exception strings travel (RE_ERROR replies, caller logs)
            raise OutOfBoundsError(f"point outside grid bounds {self.bounds}")
        ix = int((p.x - self.bounds.x_min) / self._cell_w)
        iy = int((p.y - self.bounds.y_min) / self._cell_h)
        return self._clamp_index(ix, iy)

    def _cells_of_rect(self, rect: Rect) -> list[tuple[int, int]]:
        ix0 = int((rect.x_min - self.bounds.x_min) / self._cell_w)
        iy0 = int((rect.y_min - self.bounds.y_min) / self._cell_h)
        ix1 = int((rect.x_max - self.bounds.x_min) / self._cell_w)
        iy1 = int((rect.y_max - self.bounds.y_min) / self._cell_h)
        ix0, iy0 = self._clamp_index(ix0, iy0)
        ix1, iy1 = self._clamp_index(ix1, iy1)
        return [
            (ix, iy) for ix in range(ix0, ix1 + 1) for iy in range(iy0, iy1 + 1)
        ]

    def cell_rect(self, ix: int, iy: int) -> Rect:
        """The spatial extent of bucket ``(ix, iy)``."""
        x0 = self.bounds.x_min + ix * self._cell_w
        y0 = self.bounds.y_min + iy * self._cell_h
        return Rect(x0, y0, x0 + self._cell_w, y0 + self._cell_h)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _insert_impl(self, oid: object, rect: Rect) -> None:
        for cell in self._cells_of_rect(rect):
            self._buckets.setdefault(cell, set()).add(oid)

    def _remove_impl(self, oid: object, rect: Rect) -> None:
        for cell in self._cells_of_rect(rect):
            bucket = self._buckets.get(cell)
            if bucket is not None:
                bucket.discard(oid)
                if not bucket:
                    del self._buckets[cell]

    def _clear_impl(self) -> None:
        self._buckets.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _range_impl(self, region: Rect) -> list[object]:
        seen: set[object] = set()
        for cell in self._cells_of_rect(region):
            for oid in self._buckets.get(cell, ()):
                if oid not in seen and self._entries[oid].intersects(region):
                    seen.add(oid)
        return list(seen)

    def _k_nearest_impl(self, point: Point, k: int) -> list[object]:
        # Expand outward ring by ring; a candidate found at ring r is only
        # confirmed once the ring's guaranteed minimum distance exceeds
        # the candidate's distance.
        p = Point(
            min(max(point.x, self.bounds.x_min), self.bounds.x_max),
            min(max(point.y, self.bounds.y_min), self.bounds.y_max),
        )
        cx, cy = self.cell_of_point(p)
        # Max-heap of the best k as (-dist, -seq, oid): equal-distance
        # entries rank by insertion order, matching the oracle.
        best: list[tuple[float, int, object]] = []
        seen: set[object] = set()
        max_ring = self.resolution  # worst case covers the whole grid

        for ring in range(0, max_ring + 1):
            # Distance below which nothing outside the scanned square can
            # lie: (ring) cell widths from the query cell's border.  The
            # stop is strict: an unscanned entry at exactly the current
            # worst distance could still win its tie on insertion order.
            if len(best) == k:
                guaranteed = (ring - 1) * min(self._cell_w, self._cell_h)
                if -best[0][0] < guaranteed:
                    break
            for ix, iy in self._ring_cells(cx, cy, ring):
                for oid in self._buckets.get((ix, iy), ()):
                    if oid in seen:
                        continue
                    seen.add(oid)
                    dist = self._entries[oid].min_distance_to_point(point)
                    cand = (-dist, -self._seq[oid], oid)
                    if len(best) < k:
                        heapq.heappush(best, cand)
                    elif cand > best[0]:
                        heapq.heapreplace(best, cand)
        ordered = sorted(best, key=lambda item: (-item[0], -item[1]))
        return [oid for _neg, _seq, oid in ordered]

    def _ring_cells(self, cx: int, cy: int, ring: int) -> Iterator[tuple[int, int]]:
        """Bucket coordinates at Chebyshev distance ``ring`` from (cx, cy)."""
        if ring == 0:
            if 0 <= cx < self.resolution and 0 <= cy < self.resolution:
                yield (cx, cy)
            return
        lo_x, hi_x = cx - ring, cx + ring
        lo_y, hi_y = cy - ring, cy + ring
        for ix in range(lo_x, hi_x + 1):
            for iy in (lo_y, hi_y):
                if 0 <= ix < self.resolution and 0 <= iy < self.resolution:
                    yield (ix, iy)
        for iy in range(lo_y + 1, hi_y):
            for ix in (lo_x, hi_x):
                if 0 <= ix < self.resolution and 0 <= iy < self.resolution:
                    yield (ix, iy)
