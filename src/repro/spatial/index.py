"""The ``SpatialIndex`` contract shared by every index implementation.

The privacy-aware query processor (Section 5) is explicitly independent of
the underlying nearest-neighbor and range algorithms — "it can be employed
using R-tree or any other methods".  We honour that by programming the
processor against this abstract interface and providing four concrete
implementations: an R-tree, a uniform grid, a PR quadtree and a
brute-force reference.

Indexed entries are ``(oid, Rect)`` pairs.  Point data (public targets)
is stored as degenerate rectangles, so public and private (cloaked)
targets flow through the identical machinery.
"""

from __future__ import annotations

import abc
import heapq
from collections.abc import Iterator

from repro.errors import EmptyDatasetError
from repro.geometry import Point, Rect

__all__ = ["SpatialIndex"]


class SpatialIndex(abc.ABC):
    """Abstract dynamic spatial index over ``(oid, Rect)`` entries.

    Implementations must keep :attr:`_entries` (oid -> Rect) up to date;
    the base class supplies bookkeeping, validation, and generic
    (non-accelerated) fallbacks that subclasses override when they can do
    better.

    Tie-breaking contract: whenever two entries are at exactly the same
    distance from a query point, every query ranks them by *insertion
    order* (tracked in :attr:`_seq`; re-inserting an oid assigns a fresh
    sequence number).  The brute-force oracle gets this for free from
    dict iteration order; the accelerated indexes implement it
    explicitly, which is what makes their answers byte-identical to the
    oracle's even under coincident coordinates.
    """

    def __init__(self) -> None:
        self._entries: dict[object, Rect] = {}
        self._seq: dict[object, int] = {}
        self._next_seq = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, oid: object, rect: Rect) -> None:
        """Add an entry; replaces any existing entry with the same oid."""
        if oid in self._entries:
            self.remove(oid)
        self._entries[oid] = rect
        self._assign_seq(oid)
        try:
            self._insert_impl(oid, rect)
        except Exception:
            del self._entries[oid]
            del self._seq[oid]
            raise

    def _assign_seq(self, oid: object) -> None:
        """Give ``oid`` the next insertion-order sequence number."""
        self._seq[oid] = self._next_seq
        self._next_seq += 1

    def insert_point(self, oid: object, point: Point) -> None:
        """Convenience: add a point entry as a degenerate rectangle."""
        self.insert(oid, Rect.point(point))

    def remove(self, oid: object) -> None:
        """Remove an entry; raises ``KeyError`` for unknown oids."""
        rect = self._entries.pop(oid)
        self._seq.pop(oid, None)
        self._remove_impl(oid, rect)

    def bulk_load(self, entries: dict[object, Rect]) -> None:
        """Replace the index contents with ``entries`` in one pass.

        The default implementation just inserts sequentially; indexes with
        a packing algorithm (STR for the R-tree) override it.
        """
        self.clear()
        for oid, rect in entries.items():
            self.insert(oid, rect)

    def clear(self) -> None:
        """Drop all entries."""
        self._entries.clear()
        self._seq.clear()
        self._clear_impl()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, oid: object) -> bool:
        return oid in self._entries

    def rect_of(self, oid: object) -> Rect:
        """The stored rectangle of ``oid``."""
        return self._entries[oid]

    def items(self) -> Iterator[tuple[object, Rect]]:
        """Iterate over all ``(oid, rect)`` entries."""
        return iter(self._entries.items())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_search(self, region: Rect) -> list[object]:
        """All oids whose rectangle intersects the closed ``region``."""
        return self._range_impl(region)

    def nearest(self, point: Point) -> object:
        """The oid minimising min-distance from ``point`` to its rect.

        Ties are broken arbitrarily; raises :class:`EmptyDatasetError`
        when the index is empty.
        """
        result = self.k_nearest(point, 1)
        return result[0]

    def k_nearest(self, point: Point, k: int) -> list[object]:
        """The ``k`` entries with smallest min-distance, nearest first."""
        if not self._entries:
            raise EmptyDatasetError("spatial index is empty")
        if k <= 0:
            raise ValueError("k must be positive")
        return self._k_nearest_impl(point, min(k, len(self._entries)))

    def nearest_by_max_distance(self, point: Point) -> object:
        """The oid minimising the *max*-distance from ``point`` to its rect.

        This is the pessimistic nearest-neighbor used by the filter step of
        private queries over private data (Section 5.2.1): the candidate
        whose farthest corner is closest.
        """
        return self.k_nearest_by_max_distance(point, 1)[0]

    def k_nearest_by_max_distance(self, point: Point, k: int) -> list[object]:
        """The ``k`` entries with smallest *max*-distance, best first.

        The k-th element's max-distance is the pessimistic kNN bound
        :math:`d_v^k` used by private kNN queries over private data: k
        targets are guaranteed within that distance of ``point`` no
        matter where inside their cloaks they really are.  Subclasses
        override :meth:`_k_nearest_by_max_distance_impl` with a pruned
        branch-and-bound search; the fallback is a heap-based scan.
        """
        if not self._entries:
            raise EmptyDatasetError("spatial index is empty")
        if k <= 0:
            raise ValueError("k must be positive")
        return self._k_nearest_by_max_distance_impl(
            point, min(k, len(self._entries))
        )

    def _k_nearest_by_max_distance_impl(self, point: Point, k: int) -> list[object]:
        scored = heapq.nsmallest(
            k,
            self._entries.items(),
            key=lambda item: (
                item[1].max_distance_to_point(point),
                self._seq[item[0]],
            ),
        )
        return [oid for oid, _rect in scored]

    # ------------------------------------------------------------------
    # Implementation hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _insert_impl(self, oid: object, rect: Rect) -> None: ...

    @abc.abstractmethod
    def _remove_impl(self, oid: object, rect: Rect) -> None: ...

    @abc.abstractmethod
    def _clear_impl(self) -> None: ...

    @abc.abstractmethod
    def _range_impl(self, region: Rect) -> list[object]: ...

    @abc.abstractmethod
    def _k_nearest_impl(self, point: Point, k: int) -> list[object]: ...
