"""A from-scratch dynamic R-tree with best-first kNN and STR bulk loading.

This is the "traditional location-based database server" index that the
privacy-aware query processor plugs into: Guttman-style insertion with
quadratic node splitting, deletion with tree condensation and orphan
re-insertion, Sort-Tile-Recursive (STR) packing for bulk loads, recursive
range search, and best-first (priority queue) k-nearest-neighbor search
using min-distance lower bounds — plus a branch-and-bound variant of the
pessimistic max-distance NN needed for private filter selection.
"""

from __future__ import annotations

import heapq
import itertools
import math

from repro.geometry import Point, Rect
from repro.spatial.index import SpatialIndex

__all__ = ["RTreeIndex"]


class _Node:
    """One R-tree node.

    Leaves hold ``(oid, rect)`` entry tuples; internal nodes hold child
    ``_Node`` objects.  ``mbr`` is the minimum bounding rectangle of the
    contents and is kept tight by the maintenance paths.
    """

    __slots__ = ("leaf", "children", "entries", "mbr", "parent")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.children: list[_Node] = []
        self.entries: list[tuple[object, Rect]] = []
        self.mbr: Rect | None = None
        self.parent: _Node | None = None

    def rects(self) -> list[Rect]:
        if self.leaf:
            return [rect for _oid, rect in self.entries]
        return [child.mbr for child in self.children if child.mbr is not None]

    def recompute_mbr(self) -> None:
        rects = self.rects()
        if not rects:
            self.mbr = None
            return
        mbr = rects[0]
        for rect in rects[1:]:
            mbr = mbr.union(rect)
        self.mbr = mbr

    def count(self) -> int:
        return len(self.entries) if self.leaf else len(self.children)


def _enlargement(mbr: Rect, rect: Rect) -> float:
    """Area growth of ``mbr`` needed to also cover ``rect``."""
    return mbr.union(rect).area - mbr.area


class RTreeIndex(SpatialIndex):
    """Dynamic R-tree over ``(oid, Rect)`` entries.

    Parameters
    ----------
    max_entries:
        Node capacity ``M``; a split occurs at ``M + 1``.
    min_entries:
        Minimum fill ``m``; defaults to ``ceil(0.4 * M)`` as Guttman
        recommends.
    """

    def __init__(self, max_entries: int = 16, min_entries: int | None = None) -> None:
        super().__init__()
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries if min_entries is not None else math.ceil(0.4 * max_entries)
        )
        if not 1 <= self.min_entries <= self.max_entries // 2:
            raise ValueError("min_entries must be in [1, max_entries // 2]")
        self._root = _Node(leaf=True)
        self._leaf_of: dict[object, _Node] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _clear_impl(self) -> None:
        self._root = _Node(leaf=True)
        self._leaf_of = {}

    def _insert_impl(self, oid: object, rect: Rect) -> None:
        leaf = self._choose_leaf(self._root, rect)
        leaf.entries.append((oid, rect))
        self._leaf_of[oid] = leaf
        leaf.mbr = rect if leaf.mbr is None else leaf.mbr.union(rect)
        self._handle_overflow_and_adjust(leaf)

    def _remove_impl(self, oid: object, rect: Rect) -> None:
        leaf = self._leaf_of.pop(oid)
        leaf.entries = [(eid, erect) for eid, erect in leaf.entries if eid != oid]
        leaf.recompute_mbr()
        self._condense(leaf)

    def bulk_load(self, entries: dict[object, Rect]) -> None:
        """Pack ``entries`` with Sort-Tile-Recursive for a near-optimal tree."""
        self.clear()
        self._entries.update(entries)
        for oid in entries:
            self._assign_seq(oid)
        items = list(entries.items())
        if not items:
            return
        leaves = self._str_pack_leaves(items)
        for leaf in leaves:
            for oid, _rect in leaf.entries:
                self._leaf_of[oid] = leaf
        level = leaves
        while len(level) > 1:
            level = self._str_pack_level(level)
        self._root = level[0]

    def _str_pack_leaves(self, items: list[tuple[object, Rect]]) -> list[_Node]:
        cap = self.max_entries
        num_leaves = math.ceil(len(items) / cap)
        num_slices = math.ceil(math.sqrt(num_leaves))
        per_slice = num_slices * cap
        items = sorted(items, key=lambda it: it[1].center.x)
        leaves: list[_Node] = []
        for s in range(0, len(items), per_slice):
            strip = sorted(items[s : s + per_slice], key=lambda it: it[1].center.y)
            for b in range(0, len(strip), cap):
                node = _Node(leaf=True)
                node.entries = strip[b : b + cap]
                node.recompute_mbr()
                leaves.append(node)
        return leaves

    def _str_pack_level(self, nodes: list[_Node]) -> list[_Node]:
        cap = self.max_entries
        num_parents = math.ceil(len(nodes) / cap)
        num_slices = math.ceil(math.sqrt(num_parents))
        per_slice = num_slices * cap
        nodes = sorted(nodes, key=lambda n: n.mbr.center.x)
        parents: list[_Node] = []
        for s in range(0, len(nodes), per_slice):
            strip = sorted(nodes[s : s + per_slice], key=lambda n: n.mbr.center.y)
            for b in range(0, len(strip), cap):
                parent = _Node(leaf=False)
                parent.children = strip[b : b + cap]
                for child in parent.children:
                    child.parent = parent
                parent.recompute_mbr()
                parents.append(parent)
        return parents

    def _choose_leaf(self, node: _Node, rect: Rect) -> _Node:
        while not node.leaf:
            node = min(
                node.children,
                key=lambda child: (
                    _enlargement(child.mbr, rect),
                    child.mbr.area,
                ),
            )
        return node

    def _handle_overflow_and_adjust(self, node: _Node) -> None:
        while node is not None:
            if node.count() > self.max_entries:
                self._split(node)
            else:
                self._tighten_upward(node)
                return
            node = node.parent if node.parent is not None else None
            if node is None:
                return

    def _tighten_upward(self, node: _Node) -> None:
        while node is not None:
            node.recompute_mbr()
            node = node.parent

    def _split(self, node: _Node) -> None:
        """Quadratic split of an overflowing node in place."""
        if node.leaf:
            seeds_pool: list[tuple[object, Rect]] = node.entries
            rect_of = lambda item: item[1]  # noqa: E731 - tiny local accessor
        else:
            seeds_pool = node.children  # type: ignore[assignment]
            rect_of = lambda item: item.mbr  # noqa: E731

        # Pick the two seeds wasting the most area when paired.
        worst = float("-inf")
        seed_a, seed_b = 0, 1
        for i, j in itertools.combinations(range(len(seeds_pool)), 2):
            ri, rj = rect_of(seeds_pool[i]), rect_of(seeds_pool[j])
            waste = ri.union(rj).area - ri.area - rj.area
            if waste > worst:
                worst, seed_a, seed_b = waste, i, j

        group_a = [seeds_pool[seed_a]]
        group_b = [seeds_pool[seed_b]]
        mbr_a = rect_of(seeds_pool[seed_a])
        mbr_b = rect_of(seeds_pool[seed_b])
        remaining = [
            item for idx, item in enumerate(seeds_pool) if idx not in (seed_a, seed_b)
        ]
        total = len(seeds_pool)
        while remaining:
            # Force-assign when one group must take everything left to
            # reach minimum fill.
            if len(group_a) + len(remaining) == self.min_entries:
                group_a.extend(remaining)
                for item in remaining:
                    mbr_a = mbr_a.union(rect_of(item))
                break
            if len(group_b) + len(remaining) == self.min_entries:
                group_b.extend(remaining)
                for item in remaining:
                    mbr_b = mbr_b.union(rect_of(item))
                break
            # PickNext: the item with the greatest preference difference.
            best_idx = max(
                range(len(remaining)),
                key=lambda idx: abs(
                    _enlargement(mbr_a, rect_of(remaining[idx]))
                    - _enlargement(mbr_b, rect_of(remaining[idx]))
                ),
            )
            item = remaining.pop(best_idx)
            grow_a = _enlargement(mbr_a, rect_of(item))
            grow_b = _enlargement(mbr_b, rect_of(item))
            if grow_a < grow_b or (grow_a == grow_b and len(group_a) <= len(group_b)):
                group_a.append(item)
                mbr_a = mbr_a.union(rect_of(item))
            else:
                group_b.append(item)
                mbr_b = mbr_b.union(rect_of(item))
        assert len(group_a) + len(group_b) == total

        sibling = _Node(leaf=node.leaf)
        if node.leaf:
            node.entries = group_a
            sibling.entries = group_b
            for oid, _rect in sibling.entries:
                self._leaf_of[oid] = sibling
        else:
            node.children = group_a
            sibling.children = group_b
            for child in sibling.children:
                child.parent = sibling
        node.recompute_mbr()
        sibling.recompute_mbr()

        parent = node.parent
        if parent is None:
            new_root = _Node(leaf=False)
            new_root.children = [node, sibling]
            node.parent = new_root
            sibling.parent = new_root
            new_root.recompute_mbr()
            self._root = new_root
        else:
            parent.children.append(sibling)
            sibling.parent = parent
            parent.recompute_mbr()

    def _condense(self, node: _Node) -> None:
        """Remove underfull nodes bottom-up, re-inserting orphans."""
        orphans: list[tuple[object, Rect]] = []
        while node.parent is not None:
            parent = node.parent
            if node.count() < self.min_entries:
                parent.children.remove(node)
                if node.leaf:
                    orphans.extend(node.entries)
                else:
                    orphans.extend(self._collect_entries(node))
            else:
                node.recompute_mbr()
            parent.recompute_mbr()
            node = parent
        # Shrink a root with a single internal child.
        while not self._root.leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._root.parent = None
        if not self._root.leaf and not self._root.children:
            self._root = _Node(leaf=True)
        self._root.recompute_mbr()
        for oid, rect in orphans:
            self._insert_impl(oid, rect)

    def _collect_entries(self, node: _Node) -> list[tuple[object, Rect]]:
        if node.leaf:
            return list(node.entries)
        collected: list[tuple[object, Rect]] = []
        for child in node.children:
            collected.extend(self._collect_entries(child))
        return collected

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _range_impl(self, region: Rect) -> list[object]:
        result: list[object] = []
        if self._root.mbr is None:
            return result
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not node.mbr.intersects(region):
                continue
            if node.leaf:
                result.extend(
                    oid for oid, rect in node.entries if rect.intersects(region)
                )
            else:
                stack.extend(node.children)
        return result

    def _k_nearest_impl(self, point: Point, k: int) -> list[object]:
        # Best-first search: pop the frontier element with the smallest
        # min-distance; leaf entries popped in this order are exact NNs.
        # Heap keys are (distance, kind, tie): nodes (kind 0) pop before
        # equal-distance entries (kind 1), so by the time an entry is
        # accepted every entry at the same distance is already on the
        # heap, and equal-distance entries pop in insertion order (their
        # tie key is the base-class sequence number) — matching the
        # brute-force oracle exactly even for coincident points.
        counter = itertools.count()
        heap: list[tuple[float, int, int, object]] = []
        if self._root.mbr is not None:
            heapq.heappush(heap, (0.0, 0, next(counter), self._root))
        result: list[object] = []
        while heap and len(result) < k:
            _dist, kind, _tie, payload = heapq.heappop(heap)
            if kind == 1:
                result.append(payload)
                continue
            node: _Node = payload
            if node.leaf:
                for oid, rect in node.entries:
                    heapq.heappush(
                        heap,
                        (
                            rect.min_distance_to_point(point),
                            1,
                            self._seq[oid],
                            oid,
                        ),
                    )
            else:
                for child in node.children:
                    if child.mbr is not None:
                        heapq.heappush(
                            heap,
                            (
                                child.mbr.min_distance_to_point(point),
                                0,
                                next(counter),
                                child,
                            ),
                        )
        return result

    def _k_nearest_by_max_distance_impl(self, point: Point, k: int) -> list[object]:
        """Branch-and-bound pessimistic kNN (k smallest max-distances).

        For any entry inside a node, its max-distance is at least the
        min-distance from the query point to the node MBR, so best-first
        expansion by node min-distance with pruning against the current
        k-th best max-distance is exact.  Ties break by insertion order,
        like every other query.
        """
        counter = itertools.count()
        heap: list[tuple[float, int, _Node]] = []
        if self._root.mbr is not None:
            heapq.heappush(heap, (0.0, next(counter), self._root))
        # Max-heap of the best k so far, as (-dist, -seq, oid).
        best: list[tuple[float, int, object]] = []
        while heap:
            lower, _tie, node = heapq.heappop(heap)
            if len(best) == k and lower > -best[0][0]:
                break
            if node.leaf:
                for oid, rect in node.entries:
                    cand = (-rect.max_distance_to_point(point), -self._seq[oid], oid)
                    if len(best) < k:
                        heapq.heappush(best, cand)
                    elif cand > best[0]:
                        heapq.heapreplace(best, cand)
            else:
                for child in node.children:
                    if child.mbr is None:
                        continue
                    child_lower = child.mbr.min_distance_to_point(point)
                    if len(best) < k or child_lower <= -best[0][0]:
                        heapq.heappush(heap, (child_lower, next(counter), child))
        ordered = sorted(best, key=lambda item: (-item[0], -item[1]))
        return [oid for _neg, _seq, oid in ordered]

    # ------------------------------------------------------------------
    # Diagnostics (used by structural tests)
    # ------------------------------------------------------------------
    def check_invariants(self, strict_fill: bool = False) -> None:
        """Assert structural R-tree invariants; raises AssertionError.

        ``strict_fill`` additionally enforces the ``min_entries`` fill
        factor, which holds after pure dynamic insertion but not after an
        STR bulk load (the tail node of each tile may be underfull — that
        is standard for STR packing and harmless).
        """
        seen: set[object] = set()

        def visit(node: _Node, depth: int, is_root: bool) -> int:
            if not is_root:
                assert node.count() >= 1, "empty non-root node"
                if strict_fill:
                    assert node.count() >= self.min_entries, "underfull node"
            assert node.count() <= self.max_entries, "overfull node"
            if node.leaf:
                for oid, rect in node.entries:
                    assert oid not in seen, f"duplicate oid {oid!r}"
                    seen.add(oid)
                    assert node.mbr.contains_rect(rect), "leaf MBR too small"
                    assert self._leaf_of[oid] is node, "leaf_of map stale"
                return depth
            depths = set()
            for child in node.children:
                assert child.parent is node, "broken parent link"
                assert node.mbr.contains_rect(child.mbr), "node MBR too small"
                depths.add(visit(child, depth + 1, False))
            assert len(depths) == 1, "leaves at different depths"
            return depths.pop()

        if self._root.mbr is not None:
            visit(self._root, 0, True)
        assert seen == set(self._entries), "entry set mismatch"
