"""A point-region (PR) quadtree index.

The quadtree recursively quarters the bounded service area until each
leaf holds at most ``leaf_capacity`` entries.  It is included both as a
third index behind the privacy-aware query processor (the paper's claim
of index independence is benchmarked across R-tree / grid / quadtree) and
because its subdivision discipline mirrors the pyramid structure of the
location anonymizer.

Rect entries are stored in the smallest node that fully contains them
(the classic MX-CIF placement), so cloaked private targets index cleanly.
"""

from __future__ import annotations

import heapq
import itertools

from repro.errors import OutOfBoundsError
from repro.geometry import Point, Rect
from repro.spatial.index import SpatialIndex

__all__ = ["QuadTreeIndex"]


class _QNode:
    __slots__ = ("rect", "entries", "children", "depth")

    def __init__(self, rect: Rect, depth: int) -> None:
        self.rect = rect
        self.entries: list[tuple[object, Rect]] = []
        self.children: list[_QNode] | None = None
        self.depth = depth

    def quadrants(self) -> tuple[Rect, Rect, Rect, Rect]:
        cx, cy = self.rect.center.x, self.rect.center.y
        r = self.rect
        return (
            Rect(r.x_min, cy, cx, r.y_max),  # NW
            Rect(cx, cy, r.x_max, r.y_max),  # NE
            Rect(r.x_min, r.y_min, cx, cy),  # SW
            Rect(cx, r.y_min, r.x_max, cy),  # SE
        )


class QuadTreeIndex(SpatialIndex):
    """MX-CIF quadtree over a bounded area."""

    def __init__(
        self, bounds: Rect, leaf_capacity: int = 8, max_depth: int = 16
    ) -> None:
        super().__init__()
        if bounds.area <= 0:
            raise ValueError("bounds must have positive area")
        if leaf_capacity < 1 or max_depth < 1:
            raise ValueError("leaf_capacity and max_depth must be positive")
        self.bounds = bounds
        self.leaf_capacity = leaf_capacity
        self.max_depth = max_depth
        self._root = _QNode(bounds, 0)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _clear_impl(self) -> None:
        self._root = _QNode(self.bounds, 0)

    def _insert_impl(self, oid: object, rect: Rect) -> None:
        if not self.bounds.contains_rect(rect, tol=1e-9):
            raise OutOfBoundsError(f"rect {rect} outside quadtree bounds")
        self._insert_into(self._root, oid, rect)

    def _insert_into(self, node: _QNode, oid: object, rect: Rect) -> None:
        while True:
            if node.children is not None:
                child = self._child_containing(node, rect)
                if child is None:
                    node.entries.append((oid, rect))
                    return
                node = child
                continue
            node.entries.append((oid, rect))
            if (
                len(node.entries) > self.leaf_capacity
                and node.depth < self.max_depth
            ):
                self._subdivide(node)
            return

    def _child_containing(self, node: _QNode, rect: Rect) -> "_QNode | None":
        for child in node.children:
            if child.rect.contains_rect(rect, tol=0.0):
                return child
        return None

    def _subdivide(self, node: _QNode) -> None:
        node.children = [
            _QNode(q, node.depth + 1) for q in node.quadrants()
        ]
        staying: list[tuple[object, Rect]] = []
        for oid, rect in node.entries:
            child = self._child_containing(node, rect)
            if child is None:
                staying.append((oid, rect))
            else:
                self._insert_into(child, oid, rect)
        node.entries = staying

    def _remove_impl(self, oid: object, rect: Rect) -> None:
        node = self._root
        while True:
            for idx, (eid, _erect) in enumerate(node.entries):
                if eid == oid:
                    node.entries.pop(idx)
                    return
            if node.children is None:
                raise KeyError(oid)
            child = self._child_containing(node, rect)
            if child is None:
                raise KeyError(oid)
            node = child

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _range_impl(self, region: Rect) -> list[object]:
        result: list[object] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(region):
                continue
            result.extend(
                oid for oid, rect in node.entries if rect.intersects(region)
            )
            if node.children is not None:
                stack.extend(node.children)
        return result

    def _k_nearest_impl(self, point: Point, k: int) -> list[object]:
        # Same frontier discipline as the R-tree: nodes (kind 0) pop
        # before equal-distance entries (kind 1), and equal-distance
        # entries pop in insertion order via the base-class sequence
        # number, matching the brute-force oracle under coincident
        # coordinates.
        counter = itertools.count()
        heap: list[tuple[float, int, int, object]] = [
            (0.0, 0, next(counter), self._root)
        ]
        result: list[object] = []
        while heap and len(result) < k:
            _dist, kind, _tie, payload = heapq.heappop(heap)
            if kind == 1:
                result.append(payload)
                continue
            node: _QNode = payload
            for oid, rect in node.entries:
                heapq.heappush(
                    heap,
                    (rect.min_distance_to_point(point), 1, self._seq[oid], oid),
                )
            if node.children is not None:
                for child in node.children:
                    heapq.heappush(
                        heap,
                        (
                            child.rect.min_distance_to_point(point),
                            0,
                            next(counter),
                            child,
                        ),
                    )
        return result

    def _k_nearest_by_max_distance_impl(self, point: Point, k: int) -> list[object]:
        """Branch-and-bound pessimistic kNN: entries stored in a node are
        contained in its rect, so the node's min-distance lower-bounds
        every entry's max-distance and prunes exactly as in the R-tree.
        Equal max-distances break by insertion order (the base-class
        sequence number), matching the oracle."""
        counter = itertools.count()
        heap: list[tuple[float, int, _QNode]] = [(0.0, next(counter), self._root)]
        best: list[tuple[float, int, object]] = []  # (-dist, -seq, oid) max-heap
        while heap:
            lower, _tie, node = heapq.heappop(heap)
            if len(best) == k and lower > -best[0][0]:
                break
            for oid, rect in node.entries:
                cand = (-rect.max_distance_to_point(point), -self._seq[oid], oid)
                if len(best) < k:
                    heapq.heappush(best, cand)
                elif cand > best[0]:
                    heapq.heapreplace(best, cand)
            if node.children is not None:
                for child in node.children:
                    child_lower = child.rect.min_distance_to_point(point)
                    if len(best) < k or child_lower <= -best[0][0]:
                        heapq.heappush(heap, (child_lower, next(counter), child))
        ordered = sorted(best, key=lambda item: (-item[0], -item[1]))
        return [oid for _neg, _seq, oid in ordered]
