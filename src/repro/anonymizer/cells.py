"""Pyramid cell arithmetic.

Both location anonymizers hierarchically decompose the service area into
a complete pyramid [Tanimoto & Pavlidis 1975]: level ``h`` contains
``4**h`` grid cells, the root (level 0) is the whole space.  A cell is
addressed ``CellId(level, ix, iy)`` with ``0 <= ix, iy < 2**level``;
``iy`` grows upward.

The neighbour notion is the paper's (Section 4.1): two cells are
neighbours only when they share a parent *and* a row (horizontal
neighbour) or a column (vertical neighbour) — so each cell has exactly
one of each, reachable by flipping the low bit of one coordinate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import OutOfBoundsError
from repro.geometry import Point, Rect

__all__ = ["CellId", "CellGrid", "branch_pairs"]


@dataclass(frozen=True, slots=True)
class CellId:
    """A pyramid cell address: ``(level, ix, iy)``."""

    level: int
    ix: int
    iy: int

    def __post_init__(self) -> None:
        side = 1 << self.level
        if self.level < 0 or not (0 <= self.ix < side and 0 <= self.iy < side):
            raise ValueError(f"invalid cell id {self}")

    @classmethod
    def _trusted(cls, level: int, ix: int, iy: int) -> "CellId":
        """Construct without re-validating — for internal arithmetic
        whose results are valid by construction (hierarchy walks,
        clamped point location).  The public constructor keeps its
        ``__post_init__`` check; anything built from external input must
        go through it.
        """
        cell = object.__new__(cls)
        object.__setattr__(cell, "level", level)
        object.__setattr__(cell, "ix", ix)
        object.__setattr__(cell, "iy", iy)
        return cell

    # ------------------------------------------------------------------
    # Hierarchy
    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        return self.level == 0

    def parent(self) -> "CellId":
        """The covering cell one level up; raises at the root."""
        if self.level == 0:
            raise ValueError("root cell has no parent")
        return CellId._trusted(self.level - 1, self.ix >> 1, self.iy >> 1)

    def children(self) -> tuple["CellId", "CellId", "CellId", "CellId"]:
        """The four covered cells one level down."""
        level = self.level + 1
        x, y = self.ix << 1, self.iy << 1
        return (
            CellId._trusted(level, x, y),
            CellId._trusted(level, x + 1, y),
            CellId._trusted(level, x, y + 1),
            CellId._trusted(level, x + 1, y + 1),
        )

    def ancestor(self, level: int) -> "CellId":
        """The ancestor at the given (shallower or equal) level."""
        if not 0 <= level <= self.level:
            raise ValueError(f"level {level} not an ancestor level of {self}")
        shift = self.level - level
        return CellId._trusted(level, self.ix >> shift, self.iy >> shift)

    def is_ancestor_of(self, other: "CellId") -> bool:
        """True when ``other`` lies inside this cell (or equals it)."""
        return other.level >= self.level and other.ancestor(self.level) == self

    # ------------------------------------------------------------------
    # Neighbours (paper semantics: same parent only)
    # ------------------------------------------------------------------
    def horizontal_neighbor(self) -> "CellId":
        """The same-parent sibling in the same row; raises at the root."""
        if self.level == 0:
            raise ValueError("root cell has no neighbors")
        return CellId._trusted(self.level, self.ix ^ 1, self.iy)

    def vertical_neighbor(self) -> "CellId":
        """The same-parent sibling in the same column; raises at the root."""
        if self.level == 0:
            raise ValueError("root cell has no neighbors")
        return CellId._trusted(self.level, self.ix, self.iy ^ 1)

    def siblings(self) -> tuple["CellId", "CellId", "CellId"]:
        """The other three cells sharing this cell's parent."""
        h = self.horizontal_neighbor()
        v = self.vertical_neighbor()
        d = CellId._trusted(self.level, self.ix ^ 1, self.iy ^ 1)
        return (h, v, d)


def branch_pairs(
    a: CellId, b: CellId, ancestor_level: int
) -> Iterator[tuple[CellId, CellId]]:
    """The ``(a-branch, b-branch)`` cell pairs at every level strictly
    below ``ancestor_level``, deepest first.

    These are exactly the counters a location update from cell ``a`` to
    cell ``b`` must touch (decrement the first of each pair, increment
    the second).  Shared by the single-pyramid and sharded basic
    anonymizers so both walk byte-identical update paths.
    """
    for level in range(a.level, ancestor_level, -1):
        yield a, b
        if level - 1 > ancestor_level:
            a = a.parent()
            b = b.parent()


class CellGrid:
    """Maps between space and pyramid cells for a fixed service area."""

    def __init__(self, bounds: Rect, height: int) -> None:
        """``height`` is the deepest pyramid level (the paper's ``H``);
        a pyramid "with 9 levels" in the experiments is ``height=9``
        (levels 0..9 exist, level 9 is the lowest)."""
        if height < 0:
            raise ValueError("height must be non-negative")
        if bounds.area <= 0:
            raise ValueError("bounds must have positive area")
        self.bounds = bounds
        self.height = height

    # ------------------------------------------------------------------
    # Geometry of cells
    # ------------------------------------------------------------------
    def cell_area(self, level: int) -> float:
        """Area of any cell at ``level``."""
        return self.bounds.area / float(4**level)

    def cell_rect(self, cell: CellId) -> Rect:
        """The spatial extent of ``cell``."""
        side = 1 << cell.level
        w = self.bounds.width / side
        h = self.bounds.height / side
        x0 = self.bounds.x_min + cell.ix * w
        y0 = self.bounds.y_min + cell.iy * h
        return Rect(x0, y0, x0 + w, y0 + h)

    def pair_rect(self, a: CellId, b: CellId) -> Rect:
        """The union rectangle of two sibling cells (Algorithm 1's
        combined cloaked region)."""
        return self.cell_rect(a).union(self.cell_rect(b))

    # ------------------------------------------------------------------
    # Point location
    # ------------------------------------------------------------------
    def cell_of(self, point: Point, level: int | None = None) -> CellId:
        """The cell containing ``point`` at ``level`` (default: lowest).

        Points on shared cell borders belong to the cell on their
        upper-right side, except on the space's outer border where they
        are clamped inward — every in-bounds point maps to exactly one
        cell.
        """
        if level is None:
            level = self.height
        if not 0 <= level <= self.height:
            raise ValueError(f"level {level} outside pyramid of height {self.height}")
        if not self.bounds.contains_point(point, tol=1e-12):
            # the offending coordinates stay out of the message: exception
            # strings travel (RE_ERROR wire replies, logs at the caller)
            raise OutOfBoundsError("point outside service area")
        side = 1 << level
        fx = (point.x - self.bounds.x_min) / self.bounds.width
        fy = (point.y - self.bounds.y_min) / self.bounds.height
        ix = min(max(int(fx * side), 0), side - 1)
        iy = min(max(int(fy * side), 0), side - 1)
        # Clamping guarantees validity, so the trusted path is exact.
        return CellId._trusted(level, ix, iy)

    def path_to_root(self, cell: CellId) -> list[CellId]:
        """``cell`` and all its ancestors, deepest first, root last."""
        path = [cell]
        while not path[-1].is_root:
            path.append(path[-1].parent())
        return path

    def common_ancestor_level(self, a: CellId, b: CellId) -> int:
        """The deepest level at which ``a`` and ``b`` share an ancestor.

        Both cells must be at the same level.  A location update that
        moves a user from cell ``a`` to cell ``b`` must touch counters on
        both branches strictly below this level.
        """
        if a.level != b.level:
            raise ValueError("cells must be at the same level")
        level, ix_a, iy_a, ix_b, iy_b = a.level, a.ix, a.iy, b.ix, b.iy
        while ix_a != ix_b or iy_a != iy_b:
            ix_a >>= 1
            iy_a >>= 1
            ix_b >>= 1
            iy_b >>= 1
            level -= 1
        return level
