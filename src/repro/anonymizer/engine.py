"""The shared pyramid-engine chassis of every cloaking policy.

Historically each anonymizer variant (basic/adaptive × single/sharded)
carried its own copy of the cross-cutting mechanics: grid construction,
maintenance-statistics accounting, and the telemetry-instrumented
memoized cloak call.  :class:`PyramidEngine` is now the one home for
that state; a concrete anonymizer composes it with a maintenance mixin
(:mod:`repro.anonymizer.policies`) that supplies only what actually
differs between cloaking algorithms — cell maintenance on update and
the split/merge decisions.

The engine deliberately owns *no* pyramid storage: the scalar arrays,
the structure-of-arrays backend and the sharded Morton slices all stay
with their hosts, reached through the small hook surface the
maintenance mixins define.  That keeps the refactor bit-exact — the
equivalence suites compare those storages byte for byte.
"""

from __future__ import annotations

from typing import Callable

from repro.anonymizer.cache import CloakCache, Epoch
from repro.anonymizer.cells import CellGrid, CellId
from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.profile import PrivacyProfile
from repro.anonymizer.stats import MaintenanceStats
from repro.geometry import Rect
from repro.observability import runtime as _telemetry
from repro.utils.timer import monotonic

__all__ = ["PyramidEngine"]


class PyramidEngine:
    """Shared state and instrumented cloaking for pyramid anonymizers.

    Subclasses call :meth:`_init_engine` from their constructor and set
    :attr:`label` to the policy name recorded with every cloak.
    """

    #: Telemetry label attached to cloak latency samples — the policy
    #: name ("basic", "adaptive", ...), shared by single and sharded
    #: deployments of the same policy.
    label = "pyramid"

    grid: CellGrid
    stats: MaintenanceStats

    def _init_engine(self, bounds: Rect, height: int) -> None:
        self.grid = CellGrid(bounds, height)
        self.stats = MaintenanceStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> Rect:
        return self.grid.bounds

    @property
    def height(self) -> int:
        return self.grid.height

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def _cloak_via(
        self,
        cache: CloakCache,
        count: Callable[[CellId], int],
        gen: Callable[[CellId], int],
        epoch: Epoch,
        profile: PrivacyProfile,
        start: CellId,
        shard: int | None = None,
    ) -> CloakedRegion:
        """Run Algorithm 1 through ``cache`` with telemetry attached.

        This is the one definition of the cloak fast path: request
        accounting, the memoized :meth:`CloakCache.cloak` call, and —
        only while an observability run is active — the timed latency
        sample plus (for sharded hosts, which pass ``shard``) the
        per-shard routing record.
        """
        self.stats.cloak_requests += 1
        obs = _telemetry.active()
        if obs is None:
            return cache.cloak(self.grid, count, gen, epoch, profile, start)
        t0 = monotonic()
        region = cache.cloak(self.grid, count, gen, epoch, profile, start)
        _telemetry.record_cloak(
            obs, self.label, monotonic() - t0, region.area,
            profile.a_min, region.achieved_k, profile.k,
        )
        if shard is not None:
            _telemetry.record_shard_cloak(obs, shard, self._route_of(region))
        return region

    def _route_of(self, region: CloakedRegion) -> str:
        """Routing class of a cloak answer; sharded hosts override."""
        raise NotImplementedError

    def _instrumented_cloak(
        self, compute: Callable[[], CloakedRegion], profile: PrivacyProfile
    ) -> CloakedRegion:
        """Run an arbitrary cloak computation with the same accounting
        and telemetry as :meth:`_cloak_via` — the seam for policies that
        do not go through the pyramid's memoizing cache (the ported
        related-work baselines)."""
        self.stats.cloak_requests += 1
        obs = _telemetry.active()
        if obs is None:
            return compute()
        t0 = monotonic()
        region = compute()
        _telemetry.record_cloak(
            obs, self.label, monotonic() - t0, region.area,
            profile.a_min, region.achieved_k, profile.k,
        )
        return region
