"""Maintenance-cost accounting for the location anonymizers.

Figures 10b, 11b and 12b report the *average number of (counter) updates
per location update* for the basic and adaptive anonymizers.  The
anonymizers increment these counters on every structural operation so the
experiment harness can read the exact quantities the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MaintenanceStats"]


@dataclass
class MaintenanceStats:
    """Cumulative maintenance counters.

    ``counter_updates`` counts individual cell-counter increments or
    decrements (the paper's "updates").  Cell splits and merges of the
    adaptive anonymizer contribute their touched cells to
    ``counter_updates`` as well, so the comparison between basic and
    adaptive includes the adaptive structure's restructuring overhead, as
    in the paper's discussion of Figure 10b.
    """

    location_updates: int = 0
    counter_updates: int = 0
    cell_changes: int = 0
    splits: int = 0
    merges: int = 0
    registrations: int = 0
    deregistrations: int = 0
    cloak_requests: int = 0

    @property
    def updates_per_location_update(self) -> float:
        """The paper's Figure 10b/11b/12b metric."""
        if self.location_updates == 0:
            return 0.0
        return self.counter_updates / self.location_updates

    def reset(self) -> None:
        """Zero all counters (e.g. after a warm-up phase)."""
        self.location_updates = 0
        self.counter_updates = 0
        self.cell_changes = 0
        self.splits = 0
        self.merges = 0
        self.registrations = 0
        self.deregistrations = 0
        self.cloak_requests = 0
