"""Cloak-result memoization with generation-counter invalidation.

Algorithm 1 is a pure function of the start cell, the privacy profile's
``(k, A_min)``, and the pyramid counters it reads on the way up.  Under
real workloads those inputs repeat constantly — every user in the same
lowest-level cell with the same profile produces the *same* cloak, and a
continuous monitor re-cloaks every registered user on every flush — so
both anonymizers memoize ``bottom_up_cloak`` behind this cache.

Correctness rests on two counters:

* every pyramid cell has a **generation** that its owning anonymizer
  bumps whenever the cell's population count changes (any counter delta
  along a register/update/deregister path, and any adaptive split/merge
  that materialises or dissolves the cell).  A cache entry records the
  generation of every cell Algorithm 1 read; the entry is served only
  while all of those generations are unchanged, so a stale cloak can
  never escape.
* the anonymizer-wide **mutation epoch** increments on any mutation at
  all.  A cache entry revalidated at the current epoch skips the
  per-cell check entirely, making the common case — many cloaks between
  mutations, e.g. co-located users cloaking back to back — a single
  dict probe.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.anonymizer.cells import CellGrid, CellId
from repro.anonymizer.cloak import CloakedRegion, bottom_up_cloak
from repro.anonymizer.profile import PrivacyProfile
from repro.observability import runtime as _telemetry

__all__ = ["CloakCache", "Epoch"]

CountFn = Callable[[CellId], int]
GenFn = Callable[[CellId], int]

# Single-shard anonymizers use a plain integer mutation epoch; the
# sharded runtime passes a composite ``(shard epoch, boundary epoch)``
# tuple so a mutation confined to one shard does not evict the fast
# path of every other shard's cache.  The cache only ever compares
# epochs for equality, so any equatable value works.
Epoch = int | tuple[int, int]


class _Entry:
    __slots__ = ("region", "snapshot", "epoch")

    def __init__(
        self,
        region: CloakedRegion,
        snapshot: tuple[tuple[CellId, int], ...],
        epoch: int | tuple[int, int],
    ) -> None:
        self.region = region
        self.snapshot = snapshot
        self.epoch = epoch


class CloakCache:
    """LRU cache of :func:`bottom_up_cloak` results.

    Keys are ``(start cell, k, A_min)``; values remember the cloak and a
    ``(cell, generation)`` snapshot of every pyramid counter the
    computation read.  ``capacity=0`` disables caching entirely (every
    call recomputes — used by benchmarks to measure the uncached path).
    """

    def __init__(
        self, capacity: int = 8192, shard_label: str | None = None
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        # Sharded runtimes tag their caches (shard id or "spine") so
        # cache-event telemetry stays attributable per shard; the
        # single-pyramid anonymizers emit the unlabelled stream.
        self.shard_label = shard_label
        self._entries: OrderedDict[
            tuple[CellId, int, float], _Entry
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every cached cloak (counters are kept)."""
        self._entries.clear()

    def cloak(
        self,
        grid: CellGrid,
        count: CountFn,
        gen: GenFn,
        epoch: int | tuple[int, int],
        profile: PrivacyProfile,
        start: CellId,
    ) -> CloakedRegion:
        """Return ``bottom_up_cloak(grid, count, profile, start)``,
        memoized.

        ``gen`` maps a cell to its current generation and ``epoch`` is
        the anonymizer's mutation epoch.  Unsatisfiable profiles
        propagate their exception and are never cached.
        """
        if self.capacity == 0:
            return bottom_up_cloak(grid, count, profile, start)
        obs = _telemetry.active()
        key = (start, profile.k, profile.a_min)
        entry = self._entries.get(key)
        if entry is not None:
            if entry.epoch == epoch or all(
                gen(cell) == g for cell, g in entry.snapshot
            ):
                entry.epoch = epoch
                self.hits += 1
                self._entries.move_to_end(key)
                if obs is not None:
                    _telemetry.record_cache_event(obs, "hit", self.shard_label)
                return entry.region
            del self._entries[key]
            self.invalidations += 1
            if obs is not None:
                _telemetry.record_cache_event(
                    obs, "invalidation", self.shard_label
                )
        self.misses += 1
        if obs is not None:
            _telemetry.record_cache_event(obs, "miss", self.shard_label)
        reads: list[tuple[CellId, int]] = []

        def recording(cell: CellId) -> int:
            reads.append((cell, gen(cell)))
            return count(cell)

        region = bottom_up_cloak(grid, recording, profile, start)
        self._entries[key] = _Entry(region, tuple(reads), epoch)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            if obs is not None:
                _telemetry.record_cache_event(obs, "eviction", self.shard_label)
        return region

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
