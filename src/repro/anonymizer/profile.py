"""User privacy profiles.

A Casper privacy profile is the tuple ``(k, A_min)`` of Section 3: the
user wants to be indistinguishable among at least ``k`` users, inside a
cloaked region of area at least ``A_min``.  ``k = 1`` and ``A_min = 0``
is the fully relaxed profile (no privacy demanded); larger values are
stricter.  Users may change their profile at any time (the *flexibility*
requirement of Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidProfileError

__all__ = ["PrivacyProfile", "PUBLIC_PROFILE"]


@dataclass(frozen=True, slots=True)
class PrivacyProfile:
    """The ``(k, A_min)`` privacy requirement of one user.

    Parameters
    ----------
    k:
        Minimum anonymity set size; at least 1.
    a_min:
        Minimum cloaked-region area, in squared space units (the
        experiments express it as a fraction of the service area and
        convert); non-negative.
    """

    k: int = 1
    a_min: float = 0.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise InvalidProfileError(f"k must be >= 1, got {self.k}")
        if self.a_min < 0:
            raise InvalidProfileError(f"a_min must be >= 0, got {self.a_min}")

    def is_satisfied_by(self, count: int, area: float) -> bool:
        """True when a region holding ``count`` users with ``area`` meets
        this profile."""
        return count >= self.k and area >= self.a_min - 1e-15

    def is_public(self) -> bool:
        """True for the fully relaxed profile — the data may be stored as
        an exact location (Section 5's *public data*)."""
        return self.k <= 1 and self.a_min <= 0.0

    def at_least_as_relaxed_as(self, other: "PrivacyProfile") -> bool:
        """Partial order: this profile is satisfied whenever ``other`` is."""
        return self.k <= other.k and self.a_min <= other.a_min

    def relaxation_key(self) -> tuple[float, int]:
        """A total-order proxy for "most relaxed user" tracking.

        The adaptive anonymizer keeps, per cell, the user most likely to
        be satisfiable at a deeper pyramid level.  Smaller ``a_min``
        admits deeper levels directly; ties break on smaller ``k``.
        Sorting ascending by this key puts the most relaxed profile
        first.
        """
        return (self.a_min, self.k)


#: The profile of data that requires no protection at all.
PUBLIC_PROFILE = PrivacyProfile(k=1, a_min=0.0)
