"""Spatio-temporal cloaking baseline (Gruteser & Grunwald, MobiSys 2003).

The paper's related work: "For each user location update, the spatial
space is recursively divided in a KD-tree-like format till a suitable
subspace is found.  Such technique lacks scalability as it deals with
each single movement of each user individually" and it "assumes that all
users have the same k-anonymity requirements".

We reproduce exactly that contract: a global ``k`` shared by everyone,
no maintained index — every cloak request recursively halves the space
(alternating x / y cuts, KD-style), counting the live population on each
side with a linear scan, and stops at the last subspace still holding at
least ``k`` users.  The per-request linear scans are the scalability
weakness the ablation benchmark surfaces.
"""

from __future__ import annotations

from repro.anonymizer.cloak import CloakedRegion
from repro.errors import ProfileUnsatisfiableError, UnknownUserError
from repro.geometry import Point, Rect

__all__ = ["IntervalCloak"]


class IntervalCloak:
    """Gruteser–Grunwald quadrant/KD cloaking with a uniform ``k``."""

    def __init__(self, bounds: Rect, k: int, min_side: float = 1e-6) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if bounds.area <= 0:
            raise ValueError("bounds must have positive area")
        self.bounds = bounds
        self.k = k
        self.min_side = min_side
        self._positions: dict[object, Point] = {}

    # ------------------------------------------------------------------
    # Population maintenance (no structure: a bare position table)
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return len(self._positions)

    def register(self, uid: object, point: Point) -> None:
        self._positions[uid] = point

    def update(self, uid: object, point: Point) -> int:
        """Location update; returns 0 — this baseline maintains nothing,
        all its cost sits in :meth:`cloak`."""
        if uid not in self._positions:
            raise UnknownUserError(uid)
        self._positions[uid] = point
        return 0

    def deregister(self, uid: object) -> None:
        if uid not in self._positions:
            raise UnknownUserError(uid)
        del self._positions[uid]

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def cloak(self, uid: object) -> CloakedRegion:
        """KD-subdivide around ``uid`` until the next cut would break
        ``k``-anonymity; returns the last valid subspace."""
        try:
            location = self._positions[uid]
        except KeyError:
            raise UnknownUserError(uid) from None
        region = self.bounds
        members = list(self._positions.values())
        if len(members) < self.k:
            raise ProfileUnsatisfiableError(
                f"population {len(members)} below k={self.k}"
            )
        vertical_cut = True
        while True:
            if vertical_cut:
                mid = (region.x_min + region.x_max) / 2.0
                if location.x < mid:
                    half = Rect(region.x_min, region.y_min, mid, region.y_max)
                else:
                    half = Rect(mid, region.y_min, region.x_max, region.y_max)
            else:
                mid = (region.y_min + region.y_max) / 2.0
                if location.y < mid:
                    half = Rect(region.x_min, region.y_min, region.x_max, mid)
                else:
                    half = Rect(region.x_min, mid, region.x_max, region.y_max)
            inside = [p for p in members if half.contains_point(p, tol=0.0)]
            if len(inside) < self.k or min(half.width, half.height) < self.min_side:
                return CloakedRegion(region, len(members), ())
            region = half
            members = inside
            vertical_cut = not vertical_cut
