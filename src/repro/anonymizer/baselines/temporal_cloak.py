"""Temporal cloaking baseline (Gruteser & Grunwald, MobiSys 2003).

Besides spatial cloaking, the original paper proposes *temporal*
cloaking: instead of enlarging the reported region, the middleware
delays (or backdates) the report until at least ``k`` distinct users
have visited the reported cell — trading answer freshness for
anonymity.  Casper deliberately avoids this trade (location-based
queries need fresh positions); this baseline exists so the ablation
suite can quantify the delay such a scheme would impose under the same
movement workloads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ProfileUnsatisfiableError
from repro.geometry import Point, Rect

__all__ = ["TemporalCloak", "TemporalCloakResult"]


@dataclass(frozen=True, slots=True)
class TemporalCloakResult:
    """A temporally cloaked report.

    ``delay`` is how stale the report had to be made: the age of the
    oldest visit inside the window that accumulates ``k`` distinct
    visitors for the cell.
    """

    region: Rect
    delay: float
    visitors: int


class TemporalCloak:
    """Per-cell visit history with k-visitor temporal cloaking."""

    def __init__(
        self,
        bounds: Rect,
        k: int,
        resolution: int = 32,
        history_horizon: float = float("inf"),
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        if bounds.area <= 0:
            raise ValueError("bounds must have positive area")
        self.bounds = bounds
        self.k = k
        self.resolution = resolution
        self.history_horizon = history_horizon
        # cell -> deque of (time, uid) visits, oldest first.
        self._visits: dict[tuple[int, int], deque[tuple[float, object]]] = {}
        self._clock = 0.0

    # ------------------------------------------------------------------
    # Observation stream
    # ------------------------------------------------------------------
    def _cell_of(self, point: Point) -> tuple[int, int]:
        fx = (point.x - self.bounds.x_min) / self.bounds.width
        fy = (point.y - self.bounds.y_min) / self.bounds.height
        ix = min(max(int(fx * self.resolution), 0), self.resolution - 1)
        iy = min(max(int(fy * self.resolution), 0), self.resolution - 1)
        return ix, iy

    def cell_rect(self, cell: tuple[int, int]) -> Rect:
        w = self.bounds.width / self.resolution
        h = self.bounds.height / self.resolution
        x0 = self.bounds.x_min + cell[0] * w
        y0 = self.bounds.y_min + cell[1] * h
        return Rect(x0, y0, x0 + w, y0 + h)

    def observe(self, uid: object, point: Point, time: float) -> None:
        """Record that ``uid`` was seen at ``point`` at ``time``.

        Times must be non-decreasing (a replayable update stream).
        """
        if time < self._clock:
            raise ValueError("observations must be time-ordered")
        self._clock = time
        cell = self._cell_of(point)
        history = self._visits.setdefault(cell, deque())
        history.append((time, uid))
        cutoff = time - self.history_horizon
        while history and history[0][0] < cutoff:
            history.popleft()

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def cloak(self, point: Point, now: float | None = None) -> TemporalCloakResult:
        """Temporally cloak a report from ``point``.

        Walks the cell's visit history backwards until ``k`` distinct
        visitors are covered; the report must then be delayed by the age
        of the window.  Raises when the history never accumulated ``k``
        visitors.
        """
        if now is None:
            now = self._clock
        cell = self._cell_of(point)
        history = self._visits.get(cell, deque())
        seen: set[object] = set()
        for time, uid in reversed(history):
            seen.add(uid)
            if len(seen) >= self.k:
                return TemporalCloakResult(
                    region=self.cell_rect(cell),
                    delay=max(now - time, 0.0),
                    visitors=len(seen),
                )
        raise ProfileUnsatisfiableError(
            f"cell has only {len(seen)} distinct visitors, k={self.k}"
        )
