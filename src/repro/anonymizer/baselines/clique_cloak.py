"""CliqueCloak baseline (Gedik & Liu, ICDCS 2005).

The paper's related work describes it as: each user has her own
``k``-anonymity requirement; pending requests are combined by building a
constraint graph and finding a clique whose members can share one cloaked
region — the members' minimum bounding rectangle.  Its two weaknesses,
which the ablation benchmark reproduces, are (1) the clique search is
expensive, limiting it to small ``k`` (the original evaluation used
k in [5, 10]), and (2) the MBR leaks information: some users must lie on
the rectangle's boundary.

Model implemented here (faithful to the published message-perturbation
engine at the granularity this reproduction needs):

* each request carries ``(uid, point, k, tolerance)`` where ``tolerance``
  is the maximum cloaking box half-width the user accepts;
* two pending requests are *compatible* (graph edge) when each lies
  within the other's tolerance box;
* a request is served when a clique of size ``max(k of members)`` exists
  among it and its compatible neighbours; served members are removed and
  share the clique's MBR;
* unserved requests stay pending (and would expire in the original —
  ``drop_pending`` models that).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymizer.cloak import CloakedRegion
from repro.geometry import Point, Rect

__all__ = ["CliqueCloak", "CliqueRequest"]


@dataclass(frozen=True, slots=True)
class CliqueRequest:
    """A pending anonymization request."""

    uid: object
    point: Point
    k: int
    tolerance: float

    def accepts(self, other: "Point") -> bool:
        """True when ``other`` lies within this request's tolerance box."""
        return (
            abs(other.x - self.point.x) <= self.tolerance
            and abs(other.y - self.point.y) <= self.tolerance
        )


class CliqueCloak:
    """Clique-graph message perturbation engine."""

    def __init__(self, bounds: Rect, max_clique_candidates: int = 24) -> None:
        """``max_clique_candidates`` caps the neighbourhood examined by
        the exponential clique search — the original engine bounds its
        search similarly to stay real-time."""
        self.bounds = bounds
        self.max_clique_candidates = max_clique_candidates
        self._pending: dict[object, CliqueRequest] = {}

    # ------------------------------------------------------------------
    # Request stream
    # ------------------------------------------------------------------
    @property
    def num_pending(self) -> int:
        return len(self._pending)

    def submit(self, request: CliqueRequest) -> dict[object, CloakedRegion] | None:
        """Add a request; returns the served group's regions when the new
        request completes a clique, else ``None`` (request stays pending).
        """
        if request.k < 1:
            raise ValueError("k must be >= 1")
        self._pending[request.uid] = request
        clique = self._find_clique(request)
        if clique is None:
            return None
        mbr = self._mbr(clique)
        served = {}
        for member in clique:
            served[member.uid] = CloakedRegion(mbr, len(clique), ())
            del self._pending[member.uid]
        return served

    def drop_pending(self, uid: object) -> None:
        """Expire a pending request (the original engine's deadline)."""
        self._pending.pop(uid, None)

    # ------------------------------------------------------------------
    # Clique machinery
    # ------------------------------------------------------------------
    def _compatible(self, a: CliqueRequest, b: CliqueRequest) -> bool:
        return a.accepts(b.point) and b.accepts(a.point)

    def _find_clique(self, seed: CliqueRequest) -> list[CliqueRequest] | None:
        """Search for a serving clique containing ``seed``.

        A set S ∋ seed serves its members when it is a clique in the
        compatibility graph and ``|S| >= max(k of S)``.  We enumerate
        cliques over the (capped) neighbourhood of the seed,
        smallest-first, so the returned group is minimal.
        """
        neighbors = [
            r
            for r in self._pending.values()
            if r.uid != seed.uid and self._compatible(seed, r)
        ]
        # Nearest candidates first: compatible users close to the seed
        # are most likely to form small cliques.
        neighbors.sort(key=lambda r: r.point.squared_distance_to(seed.point))
        neighbors = neighbors[: self.max_clique_candidates]

        best: list[CliqueRequest] | None = None

        def extend(clique: list[CliqueRequest], pool: list[CliqueRequest]) -> None:
            nonlocal best
            need = max(r.k for r in clique)
            if len(clique) >= need:
                if best is None or len(clique) < len(best):
                    best = list(clique)
                return
            if best is not None and len(clique) >= len(best):
                return  # cannot improve
            for idx, candidate in enumerate(pool):
                if all(self._compatible(candidate, member) for member in clique):
                    clique.append(candidate)
                    extend(clique, pool[idx + 1 :])
                    clique.pop()

        extend([seed], neighbors)
        return best

    @staticmethod
    def _mbr(clique: list[CliqueRequest]) -> Rect:
        xs = [r.point.x for r in clique]
        ys = [r.point.y for r in clique]
        return Rect(min(xs), min(ys), max(xs), max(ys))
