"""Baseline location anonymizers from the paper's related work."""

from repro.anonymizer.baselines.clique_cloak import CliqueCloak, CliqueRequest
from repro.anonymizer.baselines.interval_cloak import IntervalCloak
from repro.anonymizer.baselines.temporal_cloak import (
    TemporalCloak,
    TemporalCloakResult,
)

__all__ = [
    "CliqueCloak",
    "CliqueRequest",
    "IntervalCloak",
    "TemporalCloak",
    "TemporalCloakResult",
]
