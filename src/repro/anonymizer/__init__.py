"""The Casper location anonymizer (Section 4) and baseline competitors.

Two pyramid-based anonymizers (basic: complete pyramid; adaptive:
incomplete pyramid with cell splitting/merging) share the bottom-up
cloaking of Algorithm 1 and the ``(k, A_min)`` privacy-profile model.
Both are engine + policy compositions: shared state and mechanics live
in :class:`~repro.anonymizer.engine.PyramidEngine`, and what differs —
cell maintenance, split/merge decisions — is a
:class:`~repro.anonymizer.policy.CloakingPolicy` registered by name
(see :mod:`repro.anonymizer.policies`, which also hosts the
related-work baseline cloakers on the same protocol).
"""

from repro.anonymizer.adaptive import AdaptiveAnonymizer
from repro.anonymizer.basic import BasicAnonymizer
from repro.anonymizer.cache import CloakCache
from repro.anonymizer.cells import CellGrid, CellId
from repro.anonymizer.cloak import CloakedRegion, bottom_up_cloak
from repro.anonymizer.engine import PyramidEngine
from repro.anonymizer.policy import (
    CloakingPolicy,
    PolicySpec,
    available_policies,
    get_policy,
    register_policy,
)
from repro.anonymizer.profile import PUBLIC_PROFILE, PrivacyProfile
from repro.anonymizer.stats import MaintenanceStats

# Re-exported so the trusted side has one import surface for the only
# telemetry object allowed to cross the privacy boundary (the CSP001
# ``safe_imports`` allowlist names it next to ``CloakedRegion``).
from repro.observability.export import TelemetryExport

__all__ = [
    "AdaptiveAnonymizer",
    "BasicAnonymizer",
    "CellGrid",
    "CellId",
    "CloakCache",
    "CloakedRegion",
    "CloakingPolicy",
    "PolicySpec",
    "PyramidEngine",
    "available_policies",
    "bottom_up_cloak",
    "get_policy",
    "register_policy",
    "PrivacyProfile",
    "PUBLIC_PROFILE",
    "MaintenanceStats",
    "TelemetryExport",
]
