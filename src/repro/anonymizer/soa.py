"""Structure-of-arrays pyramid state (Morton-indexed, numpy-backed).

The scalar anonymizers keep one python object per user and walk one
``CellId`` at a time; that caps update throughput far below the paper's
"millions of users" regime.  This module holds the vectorized state the
anonymizers switch to with ``vectorized=True`` (the default):

* :class:`PyramidSoA` — per-level flat ``int64`` arrays mapping the
  Morton (Z-order) index of a cell to its occupancy count and its
  cloak-cache generation.  Morton indexing makes every hierarchy walk a
  bit shift (``parent = m >> 2``) and keeps the four children of any
  cell contiguous (``4p .. 4p+3``), so batched ancestor-chain deltas
  are ``np.add.at`` scatters and the child-sum invariant is one
  ``reshape(-1, 4).sum(axis=1)`` per level.
* :class:`UserTable` — a contiguous slot-indexed table of every
  registered user's ``(x, y, k, A_min, lowest-level Morton cell)``, the
  "hash table" of Section 4.1 flattened into parallel arrays so
  occupancy scans and profile gates are vectorized reductions.

Everything here replicates the scalar reference semantics *exactly*
(same truncation, same epsilons, same cost accounting); the
differential-equivalence suite (``tests/test_vectorized_equivalence.py``)
diffs the two implementations operation by operation.  See
``docs/vectorization.md`` for the layout and the testing story.
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np
import numpy.typing as npt

from repro.anonymizer.cells import CellGrid, CellId
from repro.geometry import EPSILON, Rect

# Morton codes now live in :mod:`repro.morton` (one definition shared
# with the shard router); re-exported here for compatibility.
from repro.morton import (  # noqa: F401
    cell_of_morton,
    morton_decode,
    morton_encode,
    morton_of_cell,
    morton_of_xy,
)

__all__ = [
    "PyramidSoA",
    "UserTable",
    "choose_split_vec",
    "default_vectorized",
    "merge_blocked_vec",
    "morton_decode",
    "morton_encode",
    "morton_of_cell",
    "cell_of_morton",
]

IntArray = npt.NDArray[np.int64]
FloatArray = npt.NDArray[np.float64]
BoolArray = npt.NDArray[np.bool_]

#: Deepest pyramid supported by the array-backed state: level arrays are
#: allocated *complete* (``4**level`` slots), so the cap keeps the worst
#: case (level 13: ~67M cells) inside commodity memory.  The scalar
#: reference has no such cap; callers needing deeper pyramids pass
#: ``vectorized=False``.
MAX_SOA_HEIGHT = 13

def default_vectorized() -> bool:
    """The process-wide default for the anonymizers' ``vectorized``
    switch: on, unless ``REPRO_VECTORIZED=0`` — the environment knob CI
    uses to run the whole suite against the scalar reference oracle."""
    return os.environ.get("REPRO_VECTORIZED", "1") != "0"


# Cached per-level decode of every Morton index, for flat <-> (side,
# side) grid conversions (canonical snapshot format).  Levels are tiny
# below MAX_SOA_HEIGHT and the content is deterministic, so a plain
# module-level memo is safe.
_DECODE_CACHE: dict[int, tuple[IntArray, IntArray]] = {}


def _level_decode(level: int) -> tuple[IntArray, IntArray]:
    cached = _DECODE_CACHE.get(level)
    if cached is None:
        cached = morton_decode(np.arange(4**level, dtype=np.int64))
        _DECODE_CACHE[level] = cached
    return cached


# ----------------------------------------------------------------------
# The complete pyramid as flat per-level arrays
# ----------------------------------------------------------------------
class PyramidSoA:
    """Per-level flat counts and generations for a complete pyramid.

    ``counts[level][m]`` is the population of the cell with Morton
    index ``m``; ``gens`` mirrors it with the cloak-cache generation
    counters (bumped on every count change, monotone across restores —
    the same convention as the scalar reference).
    """

    def __init__(self, height: int) -> None:
        if not 0 <= height <= MAX_SOA_HEIGHT:
            raise ValueError(
                f"array-backed pyramid supports heights 0..{MAX_SOA_HEIGHT}, "
                f"got {height}"
            )
        self.height = height
        self.counts: list[IntArray] = [
            np.zeros(4**level, dtype=np.int64) for level in range(height + 1)
        ]
        self.gens: list[IntArray] = [
            np.zeros(4**level, dtype=np.int64) for level in range(height + 1)
        ]

    # -- scalar chain walks (single register/deregister/update) --------
    def apply_chain(self, m: int, delta: int) -> None:
        """Apply ``delta`` along the ancestor chain of leaf ``m``
        (lowest level to root), bumping every touched generation."""
        for level in range(self.height, -1, -1):
            self.counts[level][m] += delta
            self.gens[level][m] += 1
            m >>= 2

    def move_chain(self, old_m: int, new_m: int) -> int:
        """Move one user between leaf cells ``old_m`` and ``new_m``,
        touching both branches strictly below their common ancestor;
        returns the counter-update cost (2 per touched level)."""
        cost = 0
        level = self.height
        while old_m != new_m:
            counts = self.counts[level]
            gens = self.gens[level]
            counts[old_m] -= 1
            counts[new_m] += 1
            gens[old_m] += 1
            gens[new_m] += 1
            cost += 2
            old_m >>= 2
            new_m >>= 2
            level -= 1
        return cost

    # -- the batched update-tick kernel ---------------------------------
    def apply_moves(self, old_ms: IntArray, new_ms: IntArray) -> IntArray:
        """Apply a batch of *distinct-user* leaf moves in one pass.

        For every move the touched levels are exactly those strictly
        below the common ancestor of ``old`` and ``new`` — computed for
        the whole batch from the XOR'd Morton codes (the highest
        differing bit pair names the divergence level).  Counter deltas
        and generation bumps are ``np.add.at`` scatters per level, which
        commute across distinct users, so the resulting state is
        identical to the sequential scalar walk in any order.

        Returns the per-move cost array (``2 *`` touched levels; 0 for
        moves that stay in their cell).
        """
        costs = np.zeros(len(old_ms), dtype=np.int64)
        changed = old_ms != new_ms
        if not bool(changed.any()):
            return costs
        old_c = old_ms[changed]
        new_c = new_ms[changed]
        diff = old_c ^ new_c
        # bit_length via frexp is exact below 2**53; Morton codes have
        # 2*height <= 52 bits under MAX_SOA_HEIGHT.
        _mant, exp = np.frexp(diff.astype(np.float64))
        bit_length = exp.astype(np.int64)
        ancestor_level = self.height - ((bit_length + 1) >> 1)
        costs[changed] = 2 * (self.height - ancestor_level)
        deepest_shared = int(ancestor_level.min())
        for level in range(self.height, deepest_shared, -1):
            mask = ancestor_level < level
            shift = 2 * (self.height - level)
            old_idx = old_c[mask] >> shift
            new_idx = new_c[mask] >> shift
            counts = self.counts[level]
            gens = self.gens[level]
            np.subtract.at(counts, old_idx, 1)
            np.add.at(counts, new_idx, 1)
            np.add.at(gens, old_idx, 1)
            np.add.at(gens, new_idx, 1)
        return costs

    def apply_chains(self, ms: IntArray, delta: int) -> None:
        """Batched :meth:`apply_chain` for many leaves at once (bulk
        registration); generations bump once per touch, as always."""
        if len(ms) == 0:
            return
        for level in range(self.height, -1, -1):
            shift = 2 * (self.height - level)
            idx = ms >> shift
            np.add.at(self.counts[level], idx, delta)
            np.add.at(self.gens[level], idx, 1)

    # -- reads ----------------------------------------------------------
    def count_of(self, level: int, m: int) -> int:
        return int(self.counts[level][m])

    def gen_of(self, level: int, m: int) -> int:
        return int(self.gens[level][m])

    def counts_at(self, level: int, ms: IntArray) -> IntArray:
        """Vectorized occupancy lookup for many same-level cells — the
        cloak-candidate / splitter scan primitive."""
        return self.counts[level][ms]

    # -- canonical (side, side) grid conversions ------------------------
    def counts_grid(self) -> list[npt.NDArray[np.int64]]:
        """The counts as per-level ``(side, side)`` arrays indexed
        ``[ix, iy]`` — the scalar reference's (and the snapshot
        format's) canonical layout."""
        out: list[npt.NDArray[np.int64]] = []
        for level in range(self.height + 1):
            side = 1 << level
            ix, iy = _level_decode(level)
            grid = np.zeros((side, side), dtype=np.int64)
            grid[ix, iy] = self.counts[level]
            out.append(grid)
        return out

    def load_counts_grid(self, grids: list[npt.NDArray[np.int64]]) -> None:
        """Replace the counts from canonical ``(side, side)`` arrays
        (the inverse of :meth:`counts_grid`); generations are untouched
        — they are monotone observability state."""
        if len(grids) != self.height + 1:
            raise ValueError("snapshot height mismatch")
        for level, grid in enumerate(grids):
            ix, iy = _level_decode(level)
            self.counts[level] = grid[ix, iy].astype(np.int64)

    # -- diagnostics ----------------------------------------------------
    def check_child_sums(self) -> None:
        """Assert every non-leaf counter equals the sum of its four
        children — contiguous in Morton order, so one reshape per
        level."""
        for level in range(self.height):
            summed = self.counts[level + 1].reshape(-1, 4).sum(axis=1)
            assert np.array_equal(self.counts[level], summed), (
                f"level {level} counters inconsistent with level {level + 1}"
            )

    def nbytes(self) -> int:
        """Resident bytes of the count/generation arrays."""
        return sum(a.nbytes for a in self.counts) + sum(
            a.nbytes for a in self.gens
        )


# ----------------------------------------------------------------------
# The user hash table as parallel arrays
# ----------------------------------------------------------------------
class UserTable:
    """Slot-indexed structure-of-arrays user store.

    Each registered user occupies one slot across five parallel arrays:
    exact coordinates, profile ``(k, A_min)``, and the Morton index of
    their lowest-level cell.  A uid -> slot dict and a freelist keep
    slot assignment O(1); arrays grow by doubling.  Iteration order for
    reconstruction follows insertion order of the uid dict, matching
    the scalar reference's user dict.
    """

    _INITIAL = 64

    def __init__(self) -> None:
        n = self._INITIAL
        self.xs: FloatArray = np.empty(n, dtype=np.float64)
        self.ys: FloatArray = np.empty(n, dtype=np.float64)
        self.ks: IntArray = np.zeros(n, dtype=np.int64)
        self.a_mins: FloatArray = np.zeros(n, dtype=np.float64)
        self.cells: IntArray = np.zeros(n, dtype=np.int64)
        self.active: BoolArray = np.zeros(n, dtype=np.bool_)
        self._slots: dict[object, int] = {}
        self._free: list[int] = list(range(n - 1, -1, -1))

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, uid: object) -> bool:
        return uid in self._slots

    def slot_of(self, uid: object) -> int | None:
        return self._slots.get(uid)

    def uids(self) -> Iterator[object]:
        """Registered uids in insertion order."""
        return iter(self._slots)

    def items(self) -> Iterator[tuple[object, int]]:
        """``(uid, slot)`` pairs in insertion order."""
        return iter(self._slots.items())

    def _grow(self) -> None:
        old = len(self.xs)
        new = old * 2
        for name in ("xs", "ys", "ks", "a_mins", "cells"):
            arr = getattr(self, name)
            grown = np.zeros(new, dtype=arr.dtype)
            grown[:old] = arr
            setattr(self, name, grown)
        grown_active = np.zeros(new, dtype=np.bool_)
        grown_active[:old] = self.active
        self.active = grown_active
        self._free.extend(range(new - 1, old - 1, -1))

    def add(
        self, uid: object, x: float, y: float, k: int, a_min: float, cell: int
    ) -> int:
        """Claim a slot for ``uid``; the caller has already checked for
        duplicates (this is a trusted internal path)."""
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self._slots[uid] = slot
        self.xs[slot] = x
        self.ys[slot] = y
        self.ks[slot] = k
        self.a_mins[slot] = a_min
        self.cells[slot] = cell
        self.active[slot] = True
        return slot

    def remove(self, uid: object) -> int:
        """Release ``uid``'s slot; returns it (for a final read)."""
        slot = self._slots.pop(uid)
        self.active[slot] = False
        self._free.append(slot)
        return slot

    def clear(self) -> None:
        n = len(self.xs)
        self._slots.clear()
        self.active[:] = False
        self._free = list(range(n - 1, -1, -1))

    def count_in_rect(self, rect: Rect, tol: float = EPSILON) -> int:
        """Exact population of a closed rectangle — the vectorized
        ``users_in_rect`` kernel, same tolerance as
        :meth:`repro.geometry.Rect.contains_point`."""
        inside = (
            self.active
            & (self.xs >= rect.x_min - tol)
            & (self.xs <= rect.x_max + tol)
            & (self.ys >= rect.y_min - tol)
            & (self.ys <= rect.y_max + tol)
        )
        return int(np.count_nonzero(inside))

    def slots_array(self, uids: list[object]) -> IntArray:
        """The slots of many uids as one array; raises ``KeyError`` on
        the first unknown uid (callers translate)."""
        slots = self._slots
        return np.fromiter(
            (slots[uid] for uid in uids), dtype=np.int64, count=len(uids)
        )

    def nbytes(self) -> int:
        """Resident bytes of the parallel arrays (the dict and freelist
        are python-side overhead, reported separately by benchmarks)."""
        return (
            self.xs.nbytes
            + self.ys.nbytes
            + self.ks.nbytes
            + self.a_mins.nbytes
            + self.cells.nbytes
            + self.active.nbytes
        )


# ----------------------------------------------------------------------
# Vectorized Section 4.2 split/merge decisions over a gate table
# ----------------------------------------------------------------------
def choose_split_vec(
    grid: CellGrid,
    leaf: CellId,
    count: int,
    users: set[object],
    table: UserTable,
) -> tuple[dict[CellId, set[object]], CellId] | None:
    """:func:`repro.anonymizer.adaptive.choose_split` over a gate table.

    Same gates, same epsilons, same fixed children scan order as the
    scalar decision function — the per-user profile lookups and point
    location run as array reductions instead.  Shared by the
    single-pyramid and sharded adaptive anonymizers, exactly like its
    scalar counterpart.
    """
    if not users:
        return None
    uids = list(users)
    slots = table.slots_array(uids)
    ks = table.ks[slots]
    a_mins = table.a_mins[slots]
    child_area = grid.cell_area(leaf.level + 1)
    # Cheap gate via the most relaxed user — identical float ops to the
    # scalar `child_area < min_a - 1e-15 or count < min_k`.
    if child_area < float(a_mins.min()) - 1e-15 or count < int(ks.min()):
        return None
    # Distribute users over the children: same truncate-and-clamp as
    # CellGrid.cell_of at level + 1 (points are in bounds by
    # construction — they were located when registered).
    level = leaf.level + 1
    side = 1 << level
    bounds = grid.bounds
    fx = (table.xs[slots] - bounds.x_min) / bounds.width
    fy = (table.ys[slots] - bounds.y_min) / bounds.height
    ix = np.clip((fx * side).astype(np.int64), 0, side - 1)
    iy = np.clip((fy * side).astype(np.int64), 0, side - 1)
    # Index each user's child in CellId.children order:
    # (x, y), (x+1, y), (x, y+1), (x+1, y+1).
    order = (iy - (leaf.iy << 1)) * 2 + (ix - (leaf.ix << 1))
    member_counts = np.bincount(order, minlength=4)
    satisfied = (ks <= member_counts[order]) & ((a_mins - 1e-15) <= child_area)
    if not bool(satisfied.any()):
        return None
    satisfied_children = np.bincount(order[satisfied], minlength=4)
    first = int(np.flatnonzero(satisfied_children)[0])
    children = leaf.children()
    child_users: dict[CellId, set[object]] = {c: set() for c in children}
    for uid, child_index in zip(uids, order.tolist()):
        child_users[children[child_index]].add(uid)
    return child_users, children[first]


def merge_blocked_vec(
    table: UserTable,
    child_area: float,
    child_stats: list[tuple[int, set[object]]],
) -> bool:
    """:func:`repro.anonymizer.adaptive.merge_is_blocked` over a gate
    table: blocked while any user in any child has a profile that child
    satisfies."""
    for count, users in child_stats:
        if not users:
            continue
        slots = table.slots_array(list(users))
        satisfied = (table.ks[slots] <= count) & (
            (table.a_mins[slots] - 1e-15) <= child_area
        )
        if bool(satisfied.any()):
            return True
    return False
