"""The *basic* location anonymizer (Section 4.1).

Maintains a complete pyramid: every level from the root down to the
configured height holds a counter per grid cell, kept consistent under
continuous location updates.  A hash table maps each registered user to
``(profile, lowest-level cell)``.  Cloaking runs Algorithm 1 starting
from the user's lowest-level cell.

The scalar maintenance walk lives in
:mod:`repro.anonymizer.policies.basic` (shared with the sharded fleet);
this class is the single-pyramid host supplying the storage hooks and
one mutation epoch.  Two interchangeable state backends implement the
population contract:

* ``vectorized=True`` (the default) keeps the pyramid as per-level flat
  Morton-indexed numpy arrays and the user table as parallel arrays
  (:mod:`repro.anonymizer.soa`), with a batched update kernel
  (:meth:`BasicAnonymizer.update_batch`) for per-tick streams;
* ``vectorized=False`` is the original per-object scalar
  implementation, kept as the *reference oracle* — the differential
  suite (``tests/test_vectorized_equivalence.py``) asserts the two are
  bit-identical on every operation, snapshot and cache epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.anonymizer.cache import CloakCache
from repro.anonymizer.cells import CellId
from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.engine import PyramidEngine
from repro.anonymizer.policies.basic import CompletePyramidMaintainer
from repro.anonymizer.profile import PrivacyProfile
from repro.anonymizer.soa import (
    MAX_SOA_HEIGHT,
    PyramidSoA,
    UserTable,
    cell_of_morton,
    default_vectorized,
    morton_encode,
    morton_of_xy,
)
from repro.errors import DuplicateUserError, UnknownUserError
from repro.geometry import Point, Rect

__all__ = ["BasicAnonymizer"]


@dataclass
class _UserRecord:
    profile: PrivacyProfile
    point: Point
    cell: CellId


@dataclass(frozen=True)
class _BasicSnapshot:
    """Deep copy of a :class:`BasicAnonymizer`'s population state.

    The format is backend-independent — counts as per-level
    ``(side, side)`` arrays indexed ``[ix, iy]`` plus a user-record
    dict — so a snapshot taken from either backend restores into
    either (scalar <-> vectorized round trips are part of the
    equivalence contract).
    """

    counts: list[np.ndarray]
    users: dict[object, _UserRecord]


class BasicAnonymizer(CompletePyramidMaintainer, PyramidEngine):
    """Complete-pyramid location anonymizer.

    Parameters
    ----------
    bounds:
        The service area.
    height:
        Pyramid height ``H``; the lowest level has ``4**H`` cells.
    vectorized:
        Select the numpy structure-of-arrays backend (default) or the
        scalar reference implementation.  ``None`` resolves through the
        ``REPRO_VECTORIZED`` environment switch, falling back to scalar
        for pyramids too deep for complete per-level arrays.
    """

    label = "basic"

    def __init__(
        self,
        bounds: Rect,
        height: int = 9,
        cloak_cache_size: int = 8192,
        vectorized: bool | None = None,
    ) -> None:
        self._init_engine(bounds, height)
        if vectorized is None:
            vectorized = default_vectorized() and height <= MAX_SOA_HEIGHT
        self.vectorized = vectorized
        if vectorized:
            # Flat Morton-indexed per-level arrays + slot-indexed user
            # table; see repro.anonymizer.soa for the layout.
            self._soa = PyramidSoA(height)
            self._table = UserTable()
        else:
            # counts[level] is a (side, side) int array, indexed
            # [ix, iy]; gens[level] mirrors it with per-cell generation
            # counters for cloak-cache invalidation (bumped whenever
            # the count changes).
            self._counts: list[np.ndarray] = [
                np.zeros((1 << level, 1 << level), dtype=np.int64)
                for level in range(height + 1)
            ]
            self._gens: list[np.ndarray] = [
                np.zeros((1 << level, 1 << level), dtype=np.int64)
                for level in range(height + 1)
            ]
            self._users: dict[object, _UserRecord] = {}
        self._epoch = 0
        self.cloak_cache = CloakCache(cloak_cache_size)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        if self.vectorized:
            return len(self._table)
        return len(self._users)

    def __contains__(self, uid: object) -> bool:
        if self.vectorized:
            return uid in self._table
        return uid in self._users

    def profile_of(self, uid: object) -> PrivacyProfile:
        """The registered privacy profile of ``uid``."""
        if self.vectorized:
            slot = self._slot(uid)
            return PrivacyProfile(
                int(self._table.ks[slot]), float(self._table.a_mins[slot])
            )
        return self._record(uid).profile

    def location_of(self, uid: object) -> Point:
        """The exact location of ``uid`` — known only to this trusted
        third party, never shipped to the database server."""
        if self.vectorized:
            slot = self._slot(uid)
            return Point(float(self._table.xs[slot]), float(self._table.ys[slot]))
        return self._record(uid).point

    def cell_count(self, cell: CellId) -> int:
        """The number of users currently inside ``cell``."""
        if self.vectorized:
            return self._soa.count_of(cell.level, morton_of_xy(cell.ix, cell.iy))
        return int(self._counts[cell.level][cell.ix, cell.iy])

    def users_in_rect(self, rect: Rect) -> int:
        """Exact population of an arbitrary rectangle (vectorized mask
        reduction over the user table; the scalar oracle scans
        records)."""
        if self.vectorized:
            return self._table.count_in_rect(rect)
        return sum(1 for rec in self._users.values() if rect.contains_point(rec.point))

    def _record(self, uid: object) -> _UserRecord:
        if self.vectorized:
            # Synthesized on demand from the table row — a value copy,
            # not live state (mutations would be lost).
            slot = self._slot(uid)
            table = self._table
            return _UserRecord(
                PrivacyProfile(int(table.ks[slot]), float(table.a_mins[slot])),
                Point(float(table.xs[slot]), float(table.ys[slot])),
                cell_of_morton(self.height, int(table.cells[slot])),
            )
        try:
            return self._users[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    def _slot(self, uid: object) -> int:
        slot = self._table.slot_of(uid)
        if slot is None:
            raise UnknownUserError(uid)
        return slot

    # ------------------------------------------------------------------
    # CompletePyramidMaintainer host hooks (scalar backend)
    # ------------------------------------------------------------------
    def _apply_cell(self, cell: CellId, delta: int) -> None:
        self._counts[cell.level][cell.ix, cell.iy] += delta
        self._gens[cell.level][cell.ix, cell.iy] += 1

    def _commit(self, touched: Sequence[CellId]) -> None:
        self._epoch += 1

    # ------------------------------------------------------------------
    # Registration and location updates
    # ------------------------------------------------------------------
    def register(self, uid: object, point: Point, profile: PrivacyProfile) -> None:
        """Register a new user at ``point`` with the given profile."""
        if self.vectorized:
            if uid in self._table:
                raise DuplicateUserError(uid)
            cell = self.grid.cell_of(point)
            m = morton_of_xy(cell.ix, cell.iy)
            self._table.add(uid, point.x, point.y, profile.k, profile.a_min, m)
            self._soa.apply_chain(m, +1)
            self._epoch += 1
            self.stats.counter_updates += self.height + 1
        else:
            if uid in self._users:
                raise DuplicateUserError(uid)
            cell = self.grid.cell_of(point)
            self._users[uid] = _UserRecord(profile, point, cell)
            self._apply_delta(cell, +1)
        self.stats.registrations += 1

    def deregister(self, uid: object) -> None:
        """Remove a user entirely (quitting the service)."""
        if self.vectorized:
            slot = self._slot(uid)
            m = int(self._table.cells[slot])
            self._table.remove(uid)
            self._soa.apply_chain(m, -1)
            self._epoch += 1
            self.stats.counter_updates += self.height + 1
        else:
            record = self._record(uid)
            self._apply_delta(record.cell, -1)
            del self._users[uid]
        self.stats.deregistrations += 1

    def set_profile(self, uid: object, profile: PrivacyProfile) -> None:
        """Change a user's privacy profile (the flexibility requirement)."""
        if self.vectorized:
            slot = self._slot(uid)
            self._table.ks[slot] = profile.k
            self._table.a_mins[slot] = profile.a_min
        else:
            self._record(uid).profile = profile

    def update(self, uid: object, point: Point) -> int:
        """Process a location update; returns the number of counter
        updates it required (the Figure 10b cost unit)."""
        if self.vectorized:
            slot = self._slot(uid)
            new_cell = self.grid.cell_of(point)
            table = self._table
            table.xs[slot] = point.x
            table.ys[slot] = point.y
            self.stats.location_updates += 1
            new_m = morton_of_xy(new_cell.ix, new_cell.iy)
            old_m = int(table.cells[slot])
            if new_m == old_m:
                return 0
            cost = self._soa.move_chain(old_m, new_m)
            table.cells[slot] = new_m
            self._epoch += 1
        else:
            record = self._record(uid)
            new_cell = self.grid.cell_of(point)
            record.point = point
            self.stats.location_updates += 1
            if new_cell == record.cell:
                return 0
            ancestor_level = self.grid.common_ancestor_level(record.cell, new_cell)
            cost = self._apply_branches(record.cell, new_cell, ancestor_level)
            record.cell = new_cell
        self.stats.counter_updates += cost
        self.stats.cell_changes += 1
        return cost

    def update_batch(self, moves: list[tuple[object, Point]]) -> list[int]:
        """Apply a tick's worth of location updates in one kernel pass.

        Distinct users' updates commute — counter deltas, generation
        bumps and epoch advances are all additive and no cloak
        interleaves — so the end state and the returned per-move costs
        are identical to the sequential :meth:`update` loop (the scalar
        oracle's implementation).  A batch naming the same user twice is
        order-sensitive and falls back to arrival order, as does a batch
        on the scalar backend.

        Error semantics also match the sequential loop: on the first
        unknown uid or out-of-bounds point, every earlier move has been
        applied and the same exception is raised.
        """
        if not self.vectorized or len(moves) < 2:
            return [self.update(uid, point) for uid, point in moves]
        uids = [uid for uid, _ in moves]
        if len(set(uids)) != len(moves):
            return [self.update(uid, point) for uid, point in moves]
        n = len(moves)
        xs = np.fromiter((p.x for _, p in moves), dtype=np.float64, count=n)
        ys = np.fromiter((p.y for _, p in moves), dtype=np.float64, count=n)
        slot_list = [self._table.slot_of(uid) for uid in uids]
        bounds = self.bounds
        tol = 1e-12
        in_bounds = (
            (xs >= bounds.x_min - tol)
            & (xs <= bounds.x_max + tol)
            & (ys >= bounds.y_min - tol)
            & (ys <= bounds.y_max + tol)
        )
        stop = n
        for index in range(n):
            if slot_list[index] is None or not in_bounds[index]:
                stop = index
                break
        costs = self._apply_move_arrays(slot_list[:stop], xs[:stop], ys[:stop])
        if stop < n:
            # Replay the failing move through the scalar path so the
            # exception (unknown uid before out-of-bounds, matching the
            # sequential loop) is raised with applied-prefix state.
            uid, point = moves[stop]
            self.update(uid, point)
            raise AssertionError("unreachable: scalar replay must raise")
        return costs

    def _apply_move_arrays(
        self, slot_list: list[int | None], xs: np.ndarray, ys: np.ndarray
    ) -> list[int]:
        """The batched-update kernel over validated moves."""
        if not len(xs):
            return []
        table = self._table
        slots = np.asarray(slot_list, dtype=np.int64)
        side = 1 << self.height
        fx = (xs - self.bounds.x_min) / self.bounds.width
        fy = (ys - self.bounds.y_min) / self.bounds.height
        # Same truncation-then-clamp as CellGrid.cell_of: astype
        # truncates toward zero exactly like int().
        ix = np.clip((fx * side).astype(np.int64), 0, side - 1)
        iy = np.clip((fy * side).astype(np.int64), 0, side - 1)
        new_ms = morton_encode(ix, iy)
        old_ms = table.cells[slots]
        table.xs[slots] = xs
        table.ys[slots] = ys
        costs = self._soa.apply_moves(old_ms, new_ms)
        table.cells[slots] = new_ms
        changed = int(np.count_nonzero(costs))
        self.stats.location_updates += len(xs)
        self._epoch += changed
        self.stats.counter_updates += int(costs.sum())
        self.stats.cell_changes += changed
        return [int(cost) for cost in costs]

    def _gen_of(self, cell: CellId) -> int:
        if self.vectorized:
            return self._soa.gen_of(cell.level, morton_of_xy(cell.ix, cell.iy))
        return int(self._gens[cell.level][cell.ix, cell.iy])

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def cloak(self, uid: object) -> CloakedRegion:
        """Blur ``uid``'s current location per their privacy profile."""
        if self.vectorized:
            slot = self._slot(uid)
            profile = PrivacyProfile(
                int(self._table.ks[slot]), float(self._table.a_mins[slot])
            )
            cell = cell_of_morton(self.height, int(self._table.cells[slot]))
            return self._cloak_cell(profile, cell)
        record = self._record(uid)
        return self._cloak_cell(record.profile, record.cell)

    def cloak_location(self, point: Point, profile: PrivacyProfile) -> CloakedRegion:
        """Blur an arbitrary location under ``profile`` without
        registering it — used for one-shot query cloaking."""
        return self._cloak_cell(profile, self.grid.cell_of(point))

    def _cloak_cell(self, profile: PrivacyProfile, cell: CellId) -> CloakedRegion:
        return self._cloak_via(
            self.cloak_cache, self.cell_count, self._gen_of, self._epoch,
            profile, cell,
        )

    # ------------------------------------------------------------------
    # Crash recovery (snapshot/restore of pyramid + user table)
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        """An opaque, immutable-by-convention copy of the anonymizer's
        state (counters + user table) for crash recovery.  Generation
        counters and statistics are deliberately excluded: they are
        monotone observability state, not population state.  The format
        is backend-independent (canonical grid arrays + record dict),
        so scalar and vectorized instances exchange snapshots freely."""
        if self.vectorized:
            table = self._table
            users: dict[object, _UserRecord] = {}
            for uid, slot in table.items():
                users[uid] = _UserRecord(
                    PrivacyProfile(int(table.ks[slot]), float(table.a_mins[slot])),
                    Point(float(table.xs[slot]), float(table.ys[slot])),
                    cell_of_morton(self.height, int(table.cells[slot])),
                )
            return _BasicSnapshot(counts=self._soa.counts_grid(), users=users)
        return _BasicSnapshot(
            counts=[arr.copy() for arr in self._counts],
            users={
                uid: _UserRecord(rec.profile, rec.point, rec.cell)
                for uid, rec in self._users.items()
            },
        )

    def restore(self, state: object) -> None:
        """Replace the population state with a :meth:`snapshot` copy.

        The snapshot itself is copied again, so the same snapshot can
        restore any number of later crashes.  Generations are left
        monotone and the cloak cache is dropped wholesale — counters
        changed without generation bumps, so every cached entry is
        suspect.
        """
        if not isinstance(state, _BasicSnapshot):
            raise TypeError("not a BasicAnonymizer snapshot")
        if self.vectorized:
            self._soa.load_counts_grid(state.counts)
            table = self._table
            table.clear()
            for uid, rec in state.users.items():
                table.add(
                    uid, rec.point.x, rec.point.y,
                    rec.profile.k, rec.profile.a_min,
                    morton_of_xy(rec.cell.ix, rec.cell.iy),
                )
        else:
            self._counts = [arr.copy() for arr in state.counts]
            self._users = {
                uid: _UserRecord(rec.profile, rec.point, rec.cell)
                for uid, rec in state.users.items()
            }
        self._epoch += 1
        self.cloak_cache.clear()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert pyramid consistency; O(cells + users)."""
        if self.vectorized:
            # Morton order keeps the four children of any cell
            # contiguous, so each level folds onto its parent level
            # with one reshape.
            self._soa.check_child_sums()
            assert self._soa.count_of(0, 0) == len(self._table)
            table = self._table
            active = table.active
            if bool(active.any()):
                side = 1 << self.height
                fx = (table.xs[active] - self.bounds.x_min) / self.bounds.width
                fy = (table.ys[active] - self.bounds.y_min) / self.bounds.height
                ix = np.clip((fx * side).astype(np.int64), 0, side - 1)
                iy = np.clip((fy * side).astype(np.int64), 0, side - 1)
                assert np.array_equal(
                    morton_encode(ix, iy), table.cells[active]
                ), "stale cell in the user table"
            return
        # Each non-leaf counter equals the sum of its children.
        for level in range(self.height):
            child = self._counts[level + 1]
            summed = (
                child[0::2, 0::2] + child[1::2, 0::2]
                + child[0::2, 1::2] + child[1::2, 1::2]
            )
            assert np.array_equal(self._counts[level], summed), (
                f"level {level} counters inconsistent with level {level + 1}"
            )
        # Root counter equals the registered population.
        assert int(self._counts[0][0, 0]) == len(self._users)
        # Every hash-table cell contains the user's point.
        for uid, rec in self._users.items():
            assert rec.cell == self.grid.cell_of(rec.point), f"stale cell for {uid!r}"
