"""The *basic* location anonymizer (Section 4.1).

Maintains a complete pyramid: every level from the root down to the
configured height holds a counter per grid cell, kept consistent under
continuous location updates.  A hash table maps each registered user to
``(profile, lowest-level cell)``.  Cloaking runs Algorithm 1 starting
from the user's lowest-level cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anonymizer.cache import CloakCache
from repro.anonymizer.cells import CellGrid, CellId, branch_pairs
from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.profile import PrivacyProfile
from repro.anonymizer.stats import MaintenanceStats
from repro.errors import DuplicateUserError, UnknownUserError
from repro.geometry import Point, Rect
from repro.observability import runtime as _telemetry
from repro.utils.timer import monotonic

__all__ = ["BasicAnonymizer"]


@dataclass
class _UserRecord:
    profile: PrivacyProfile
    point: Point
    cell: CellId


@dataclass(frozen=True)
class _BasicSnapshot:
    """Deep copy of a :class:`BasicAnonymizer`'s population state."""

    counts: list[np.ndarray]
    users: dict[object, _UserRecord]


class BasicAnonymizer:
    """Complete-pyramid location anonymizer.

    Parameters
    ----------
    bounds:
        The service area.
    height:
        Pyramid height ``H``; the lowest level has ``4**H`` cells.
    """

    def __init__(
        self, bounds: Rect, height: int = 9, cloak_cache_size: int = 8192
    ) -> None:
        self.grid = CellGrid(bounds, height)
        self.stats = MaintenanceStats()
        # counts[level] is a (side, side) int array, indexed [ix, iy];
        # gens[level] mirrors it with per-cell generation counters for
        # cloak-cache invalidation (bumped whenever the count changes).
        self._counts: list[np.ndarray] = [
            np.zeros((1 << level, 1 << level), dtype=np.int64)
            for level in range(height + 1)
        ]
        self._gens: list[np.ndarray] = [
            np.zeros((1 << level, 1 << level), dtype=np.int64)
            for level in range(height + 1)
        ]
        self._epoch = 0
        self.cloak_cache = CloakCache(cloak_cache_size)
        self._users: dict[object, _UserRecord] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> Rect:
        return self.grid.bounds

    @property
    def height(self) -> int:
        return self.grid.height

    @property
    def num_users(self) -> int:
        return len(self._users)

    def __contains__(self, uid: object) -> bool:
        return uid in self._users

    def profile_of(self, uid: object) -> PrivacyProfile:
        """The registered privacy profile of ``uid``."""
        return self._record(uid).profile

    def location_of(self, uid: object) -> Point:
        """The exact location of ``uid`` — known only to this trusted
        third party, never shipped to the database server."""
        return self._record(uid).point

    def cell_count(self, cell: CellId) -> int:
        """The number of users currently inside ``cell``."""
        return int(self._counts[cell.level][cell.ix, cell.iy])

    def users_in_rect(self, rect: Rect) -> int:
        """Exact population of an arbitrary rectangle (linear scan;
        used by accuracy verification, not by the hot path)."""
        return sum(1 for rec in self._users.values() if rect.contains_point(rec.point))

    def _record(self, uid: object) -> _UserRecord:
        try:
            return self._users[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    # ------------------------------------------------------------------
    # Registration and location updates
    # ------------------------------------------------------------------
    def register(self, uid: object, point: Point, profile: PrivacyProfile) -> None:
        """Register a new user at ``point`` with the given profile."""
        if uid in self._users:
            raise DuplicateUserError(uid)
        cell = self.grid.cell_of(point)
        self._users[uid] = _UserRecord(profile, point, cell)
        self._apply_delta(cell, +1)
        self.stats.registrations += 1

    def deregister(self, uid: object) -> None:
        """Remove a user entirely (quitting the service)."""
        record = self._record(uid)
        self._apply_delta(record.cell, -1)
        del self._users[uid]
        self.stats.deregistrations += 1

    def set_profile(self, uid: object, profile: PrivacyProfile) -> None:
        """Change a user's privacy profile (the flexibility requirement)."""
        self._record(uid).profile = profile

    def update(self, uid: object, point: Point) -> int:
        """Process a location update; returns the number of counter
        updates it required (the Figure 10b cost unit)."""
        record = self._record(uid)
        new_cell = self.grid.cell_of(point)
        record.point = point
        self.stats.location_updates += 1
        if new_cell == record.cell:
            return 0
        # Counters change on both branches strictly below the common
        # ancestor of the old and new lowest-level cells.
        ancestor_level = self.grid.common_ancestor_level(record.cell, new_cell)
        cost = 0
        for old, new in branch_pairs(record.cell, new_cell, ancestor_level):
            level = old.level
            self._counts[level][old.ix, old.iy] -= 1
            self._counts[level][new.ix, new.iy] += 1
            self._gens[level][old.ix, old.iy] += 1
            self._gens[level][new.ix, new.iy] += 1
            cost += 2
        record.cell = new_cell
        self._epoch += 1
        self.stats.counter_updates += cost
        self.stats.cell_changes += 1
        return cost

    def _apply_delta(self, cell: CellId, delta: int) -> None:
        for ancestor in self.grid.path_to_root(cell):
            self._counts[ancestor.level][ancestor.ix, ancestor.iy] += delta
            self._gens[ancestor.level][ancestor.ix, ancestor.iy] += 1
        self._epoch += 1
        self.stats.counter_updates += cell.level + 1

    def _gen_of(self, cell: CellId) -> int:
        return int(self._gens[cell.level][cell.ix, cell.iy])

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def cloak(self, uid: object) -> CloakedRegion:
        """Blur ``uid``'s current location per their privacy profile."""
        record = self._record(uid)
        return self._cloak_cell(record.profile, record.cell)

    def cloak_location(self, point: Point, profile: PrivacyProfile) -> CloakedRegion:
        """Blur an arbitrary location under ``profile`` without
        registering it — used for one-shot query cloaking."""
        return self._cloak_cell(profile, self.grid.cell_of(point))

    def _cloak_cell(self, profile: PrivacyProfile, cell: CellId) -> CloakedRegion:
        self.stats.cloak_requests += 1
        obs = _telemetry.active()
        if obs is None:
            return self.cloak_cache.cloak(
                self.grid, self.cell_count, self._gen_of, self._epoch,
                profile, cell,
            )
        start = monotonic()
        region = self.cloak_cache.cloak(
            self.grid, self.cell_count, self._gen_of, self._epoch,
            profile, cell,
        )
        _telemetry.record_cloak(
            obs, "basic", monotonic() - start, region.area,
            profile.a_min, region.achieved_k, profile.k,
        )
        return region

    # ------------------------------------------------------------------
    # Crash recovery (snapshot/restore of pyramid + user table)
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        """An opaque, immutable-by-convention copy of the anonymizer's
        state (counters + user table) for crash recovery.  Generation
        counters and statistics are deliberately excluded: they are
        monotone observability state, not population state."""
        return _BasicSnapshot(
            counts=[arr.copy() for arr in self._counts],
            users={
                uid: _UserRecord(rec.profile, rec.point, rec.cell)
                for uid, rec in self._users.items()
            },
        )

    def restore(self, state: object) -> None:
        """Replace the population state with a :meth:`snapshot` copy.

        The snapshot itself is copied again, so the same snapshot can
        restore any number of later crashes.  Generations are left
        monotone and the cloak cache is dropped wholesale — counters
        changed without generation bumps, so every cached entry is
        suspect.
        """
        if not isinstance(state, _BasicSnapshot):
            raise TypeError("not a BasicAnonymizer snapshot")
        self._counts = [arr.copy() for arr in state.counts]
        self._users = {
            uid: _UserRecord(rec.profile, rec.point, rec.cell)
            for uid, rec in state.users.items()
        }
        self._epoch += 1
        self.cloak_cache.clear()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert pyramid consistency; O(cells + users)."""
        # Each non-leaf counter equals the sum of its children.
        for level in range(self.height):
            child = self._counts[level + 1]
            summed = (
                child[0::2, 0::2] + child[1::2, 0::2]
                + child[0::2, 1::2] + child[1::2, 1::2]
            )
            assert np.array_equal(self._counts[level], summed), (
                f"level {level} counters inconsistent with level {level + 1}"
            )
        # Root counter equals the registered population.
        assert int(self._counts[0][0, 0]) == len(self._users)
        # Every hash-table cell contains the user's point.
        for uid, rec in self._users.items():
            assert rec.cell == self.grid.cell_of(rec.point), f"stale cell for {uid!r}"
