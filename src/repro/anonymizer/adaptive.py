"""The *adaptive* location anonymizer (Section 4.2).

Maintains an *incomplete* pyramid [Aref & Samet 1990]: only cells that
could actually serve as cloaking regions for the current user population
exist.  The maintained cells form a quadtree cut — the root always
exists, and a cell is either a *leaf* (its children are not maintained)
or fully split (all four children maintained).  The per-user hash table
points at the lowest *maintained* cell, so both location updates and
Algorithm 1 touch far fewer cells than the basic anonymizer when users
have strict privacy profiles.

Cell *splitting* and *merging* follow Section 4.2's criteria:

* a leaf at level ``i < H`` splits when at least one user inside it has a
  profile that some cell at level ``i + 1`` would satisfy;
* four sibling leaves merge into their parent when no user under the
  parent has a profile satisfiable at the children's level.

Per the paper, the check is driven by tracking each cell's *most relaxed
user*: a cheap aggregate test gates the exact per-user check.

With ``vectorized=True`` (the default) the maintained cut stays a dict —
it is sparse by design — but every per-user scan (the split gate and
exact check, the merge blocker, ``users_in_rect``) runs as a numpy
reduction over a slot-indexed gate table
(:class:`repro.anonymizer.soa.UserTable`) mirroring the user records.
``vectorized=False`` is the original per-object scalar path, kept as the
reference oracle for the differential-equivalence suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.anonymizer.cache import CloakCache
from repro.anonymizer.cells import CellGrid, CellId
from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.profile import PrivacyProfile
from repro.anonymizer.soa import (
    UserTable,
    choose_split_vec,
    default_vectorized,
    merge_blocked_vec,
)
from repro.anonymizer.stats import MaintenanceStats
from repro.errors import DuplicateUserError, UnknownUserError
from repro.geometry import Point, Rect
from repro.observability import runtime as _telemetry
from repro.utils.timer import monotonic

__all__ = ["AdaptiveAnonymizer", "choose_split", "merge_is_blocked"]


def choose_split(
    grid: CellGrid,
    leaf: CellId,
    count: int,
    users: set[object],
    point_of: Callable[[object], Point],
    profile_of: Callable[[object], PrivacyProfile],
) -> tuple[dict[CellId, set[object]], CellId] | None:
    """Section 4.2's split criterion as a pure decision function.

    Returns ``(child_users, satisfiable_child)`` when ``leaf`` must
    split — the user distribution over the four children plus the first
    child (in :meth:`CellId.children` order) containing a user whose
    profile that child satisfies — or ``None`` when the leaf stays.

    The result depends only on the *membership* of ``users``, never on
    its iteration order (the chosen child is the first in a fixed scan
    order with *any* satisfied user), so single-shard and sharded
    maintenance reach byte-identical cuts.  Shared by
    :class:`AdaptiveAnonymizer` and the sharded adaptive core.
    """
    if not users:
        return None
    child_area = grid.cell_area(leaf.level + 1)
    # Cheap gate via the most relaxed user: if even the minimum
    # requirements in this cell rule out level i+1, skip the exact check.
    min_a = min(profile_of(u).a_min for u in users)
    min_k = min(profile_of(u).k for u in users)
    if child_area < min_a - 1e-15 or count < min_k:
        return None
    # Exact check: distribute users over the four children and test each
    # user against the child that would contain them.
    child_users: dict[CellId, set[object]] = {c: set() for c in leaf.children()}
    for uid in users:
        child_users[grid.cell_of(point_of(uid), leaf.level + 1)].add(uid)
    for child, members in child_users.items():
        for uid in members:
            if profile_of(uid).is_satisfied_by(len(members), child_area):
                return child_users, child
    return None


def merge_is_blocked(
    child_area: float,
    child_stats: Sequence[tuple[int, Iterable[object]]],
    profile_of: Callable[[object], PrivacyProfile],
) -> bool:
    """Section 4.2's merge blocker: a sibling-leaf group must stay split
    while any user in any child has a profile that child satisfies.
    Shared by :class:`AdaptiveAnonymizer` and the sharded adaptive core.
    """
    for count, users in child_stats:
        for uid in users:
            if profile_of(uid).is_satisfied_by(count, child_area):
                return True
    return False


@dataclass
class _UserRecord:
    profile: PrivacyProfile
    point: Point
    leaf: CellId


@dataclass
class _Cell:
    """One maintained pyramid cell.

    ``count`` is the user population under the cell.  ``users`` is
    populated only while the cell is a leaf; internal cells keep just the
    counter (mirroring the paper's ``(cid, N)`` contents).
    """

    count: int = 0
    is_leaf: bool = True
    users: set[object] = field(default_factory=set)


@dataclass(frozen=True)
class _AdaptiveSnapshot:
    """Deep copy of an :class:`AdaptiveAnonymizer`'s population state."""

    cells: dict[CellId, _Cell]
    users: dict[object, _UserRecord]


class AdaptiveAnonymizer:
    """Incomplete-pyramid location anonymizer.

    ``vectorized`` selects the numpy gate-table backend for the per-user
    scans (default) or the scalar reference path; the maintained cut and
    the user records are identical dicts either way, so the two modes
    produce byte-identical cuts, cloaks and snapshots.
    """

    def __init__(
        self,
        bounds: Rect,
        height: int = 9,
        cloak_cache_size: int = 8192,
        vectorized: bool | None = None,
    ) -> None:
        self.grid = CellGrid(bounds, height)
        self.stats = MaintenanceStats()
        self._cells: dict[CellId, _Cell] = {CellId(0, 0, 0): _Cell()}
        self._users: dict[object, _UserRecord] = {}
        # Generation counters outlive the cells they describe: a merged
        # (deleted) cell's count reads as 0, which is still a change the
        # cloak cache must observe, so gens live in their own dict.
        self._gens: dict[CellId, int] = {}
        self._epoch = 0
        self.cloak_cache = CloakCache(cloak_cache_size)
        if vectorized is None:
            vectorized = default_vectorized()
        self.vectorized = vectorized
        # Gate table: parallel (x, y, k, A_min) arrays mirroring the
        # user records, powering the vectorized split/merge/rect scans.
        # The cell column is unused here — the incomplete pyramid tracks
        # leaves in the records themselves.
        self._table: UserTable | None = UserTable() if vectorized else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> Rect:
        return self.grid.bounds

    @property
    def height(self) -> int:
        return self.grid.height

    @property
    def num_users(self) -> int:
        return len(self._users)

    @property
    def num_maintained_cells(self) -> int:
        """Size of the incomplete pyramid (the adaptive structure's
        memory footprint; the basic anonymizer's equivalent is fixed at
        ``sum(4**level)``)."""
        return len(self._cells)

    def __contains__(self, uid: object) -> bool:
        return uid in self._users

    def profile_of(self, uid: object) -> PrivacyProfile:
        return self._record(uid).profile

    def location_of(self, uid: object) -> Point:
        return self._record(uid).point

    def cell_count(self, cell: CellId) -> int:
        """Population of a *maintained* cell (0 for absent cells, which
        only occurs below the maintained cut, where the population would
        indeed require splitting to know)."""
        entry = self._cells.get(cell)
        return entry.count if entry is not None else 0

    def users_in_rect(self, rect: Rect) -> int:
        """Exact population of an arbitrary rectangle (verification aid)."""
        if self._table is not None:
            return self._table.count_in_rect(rect)
        return sum(1 for rec in self._users.values() if rect.contains_point(rec.point))

    def _record(self, uid: object) -> _UserRecord:
        try:
            return self._users[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    # ------------------------------------------------------------------
    # Leaf location
    # ------------------------------------------------------------------
    def leaf_for_point(self, point: Point) -> CellId:
        """Descend the maintained cut to the leaf containing ``point``."""
        cell = CellId(0, 0, 0)
        while not self._cells[cell].is_leaf:
            cell = self.grid.cell_of(point, cell.level + 1)
        return cell

    # ------------------------------------------------------------------
    # Registration and location updates
    # ------------------------------------------------------------------
    def register(self, uid: object, point: Point, profile: PrivacyProfile) -> None:
        if uid in self._users:
            raise DuplicateUserError(uid)
        leaf = self.leaf_for_point(point)
        self._users[uid] = _UserRecord(profile, point, leaf)
        if self._table is not None:
            self._table.add(uid, point.x, point.y, profile.k, profile.a_min, 0)
        self._add_to_leaf(uid, leaf)
        self.stats.registrations += 1
        self._maybe_split(leaf)

    def deregister(self, uid: object) -> None:
        record = self._record(uid)
        self._remove_from_leaf(uid, record.leaf)
        del self._users[uid]
        if self._table is not None:
            self._table.remove(uid)
        self.stats.deregistrations += 1
        self._maybe_merge(record.leaf)

    def set_profile(self, uid: object, profile: PrivacyProfile) -> None:
        """Change a user's profile; may reshape the pyramid around them."""
        record = self._record(uid)
        record.profile = profile
        if self._table is not None:
            slot = self._table.slot_of(uid)
            assert slot is not None
            self._table.ks[slot] = profile.k
            self._table.a_mins[slot] = profile.a_min
        self._maybe_split(record.leaf)
        self._maybe_merge(record.leaf)

    def update(self, uid: object, point: Point) -> int:
        """Process a location update; returns its counter-update cost."""
        record = self._record(uid)
        record.point = point
        if self._table is not None:
            slot = self._table.slot_of(uid)
            assert slot is not None
            self._table.xs[slot] = point.x
            self._table.ys[slot] = point.y
        self.stats.location_updates += 1
        new_leaf = self.leaf_for_point(point)
        if new_leaf == record.leaf:
            return 0
        old_leaf = record.leaf
        cost = self._move_between_leaves(uid, old_leaf, new_leaf)
        record.leaf = new_leaf
        self.stats.counter_updates += cost
        self.stats.cell_changes += 1
        self._maybe_split(new_leaf)
        self._maybe_merge(old_leaf)
        return cost

    def update_batch(self, moves: list[tuple[object, Point]]) -> list[int]:
        """Apply a tick of location updates; returns per-move costs.

        The incomplete pyramid reshapes (split/merge) after *every*
        move, so updates do not commute and the batch is applied in
        arrival order — this method exists so batch seams address both
        anonymizer kinds uniformly.  The vectorized gains come from the
        gate-table scans inside each split/merge decision.
        """
        return [self.update(uid, point) for uid, point in moves]

    def _move_between_leaves(self, uid: object, old: CellId, new: CellId) -> int:
        """Transfer one user between leaves, updating branch counters;
        returns the number of counters touched."""
        self._cells[old].users.discard(uid)
        self._cells[new].users.add(uid)
        # Walk both branches up to the common ancestor (exclusive).
        old_path = self.grid.path_to_root(old)
        new_path = self.grid.path_to_root(new)
        common = {c for c in new_path}
        cost = 0
        for cell in old_path:
            if cell in common:
                break
            self._cells[cell].count -= 1
            self._bump_gen(cell)
            cost += 1
        stop_at = None
        for cell in old_path:
            if cell in common:
                stop_at = cell
                break
        for cell in new_path:
            if cell == stop_at:
                break
            self._cells[cell].count += 1
            self._bump_gen(cell)
            cost += 1
        self._epoch += 1
        return cost

    def _add_to_leaf(self, uid: object, leaf: CellId) -> None:
        self._cells[leaf].users.add(uid)
        path = self.grid.path_to_root(leaf)
        for cell in path:
            self._cells[cell].count += 1
            self._bump_gen(cell)
        self._epoch += 1
        self.stats.counter_updates += len(path)

    def _remove_from_leaf(self, uid: object, leaf: CellId) -> None:
        self._cells[leaf].users.discard(uid)
        path = self.grid.path_to_root(leaf)
        for cell in path:
            self._cells[cell].count -= 1
            self._bump_gen(cell)
        self._epoch += 1
        self.stats.counter_updates += len(path)

    def _bump_gen(self, cell: CellId) -> None:
        self._gens[cell] = self._gens.get(cell, 0) + 1

    def _gen_of(self, cell: CellId) -> int:
        return self._gens.get(cell, 0)

    # ------------------------------------------------------------------
    # Splitting and merging
    # ------------------------------------------------------------------
    def _maybe_split(self, leaf: CellId) -> None:
        """Split ``leaf`` (recursively) while Section 4.2's criterion
        holds: some user inside could be satisfied one level deeper."""
        while True:
            entry = self._cells.get(leaf)
            if entry is None or not entry.is_leaf or leaf.level >= self.height:
                return
            if self._table is not None:
                decision = choose_split_vec(
                    self.grid, leaf, entry.count, entry.users, self._table
                )
            else:
                decision = choose_split(
                    self.grid, leaf, entry.count, entry.users,
                    lambda u: self._users[u].point,
                    lambda u: self._users[u].profile,
                )
            if decision is None:
                return
            child_users, satisfiable = decision
            self._split(leaf, child_users)
            # A fresh leaf may itself be splittable; continue there.
            leaf = satisfiable

    def _split(self, leaf: CellId, child_users: dict[CellId, set[object]]) -> None:
        entry = self._cells[leaf]
        entry.is_leaf = False
        entry.users = set()
        for child, members in child_users.items():
            self._cells[child] = _Cell(
                count=len(members), is_leaf=True, users=members
            )
            # The child's count was readable as 0 while unmaintained;
            # materialising it is a visible change for cached cloaks.
            self._bump_gen(child)
            for uid in members:
                self._users[uid].leaf = child
        self._epoch += 1
        self.stats.splits += 1
        # Restructuring cost: four new counters plus one hash-table
        # relocation per affected user.
        self.stats.counter_updates += 4 + sum(len(m) for m in child_users.values())

    def _maybe_merge(self, leaf: CellId) -> None:
        """Merge ``leaf``'s sibling group (recursively upward) while no
        user under the parent needs cells at the leaves' level."""
        while leaf.level > 0:
            parent = leaf.parent()
            children = parent.children()
            entries = [self._cells.get(c) for c in children]
            if any(e is None or not e.is_leaf for e in entries):
                return
            child_area = self.grid.cell_area(leaf.level)
            # A child level is still needed if any user in any child has
            # a profile that child satisfies.
            if self._table is not None:
                blocked = merge_blocked_vec(
                    self._table,
                    child_area,
                    [(entry.count, entry.users) for entry in entries],
                )
            else:
                blocked = merge_is_blocked(
                    child_area,
                    [(entry.count, entry.users) for entry in entries],
                    lambda u: self._users[u].profile,
                )
            if blocked:
                return
            merged_users: set[object] = set()
            for entry in entries:
                merged_users |= entry.users
            parent_entry = self._cells[parent]
            parent_entry.is_leaf = True
            parent_entry.users = merged_users
            for uid in merged_users:
                self._users[uid].leaf = parent
            for child in children:
                del self._cells[child]
                # Deleted cells read as count 0 from now on.
                self._bump_gen(child)
            self._epoch += 1
            self.stats.merges += 1
            self.stats.counter_updates += 4 + len(merged_users)
            leaf = parent

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def cloak(self, uid: object) -> CloakedRegion:
        """Blur ``uid``'s location, starting Algorithm 1 from their
        lowest *maintained* cell."""
        record = self._record(uid)
        return self._cloak_cell(record.profile, record.leaf)

    def cloak_location(self, point: Point, profile: PrivacyProfile) -> CloakedRegion:
        """One-shot cloak of an arbitrary location (query anonymization)."""
        return self._cloak_cell(profile, self.leaf_for_point(point))

    def _cloak_cell(self, profile: PrivacyProfile, leaf: CellId) -> CloakedRegion:
        self.stats.cloak_requests += 1
        obs = _telemetry.active()
        if obs is None:
            return self.cloak_cache.cloak(
                self.grid, self.cell_count, self._gen_of, self._epoch,
                profile, leaf,
            )
        start = monotonic()
        region = self.cloak_cache.cloak(
            self.grid, self.cell_count, self._gen_of, self._epoch,
            profile, leaf,
        )
        _telemetry.record_cloak(
            obs, "adaptive", monotonic() - start, region.area,
            profile.a_min, region.achieved_k, profile.k,
        )
        return region

    # ------------------------------------------------------------------
    # Crash recovery (snapshot/restore of incomplete pyramid + users)
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        """An opaque deep copy of the maintained cut and the user table
        for crash recovery.  Generation counters and statistics are
        excluded — they are monotone observability state."""
        return _AdaptiveSnapshot(
            cells={
                cid: _Cell(cell.count, cell.is_leaf, set(cell.users))
                for cid, cell in self._cells.items()
            },
            users={
                uid: _UserRecord(rec.profile, rec.point, rec.leaf)
                for uid, rec in self._users.items()
            },
        )

    def restore(self, state: object) -> None:
        """Replace the population state with a :meth:`snapshot` copy.

        The snapshot is copied again so it can restore repeated crashes.
        Generations stay monotone and the cloak cache is dropped — the
        maintained cut changed without generation bumps, so every cached
        entry is suspect.
        """
        if not isinstance(state, _AdaptiveSnapshot):
            raise TypeError("not an AdaptiveAnonymizer snapshot")
        self._cells = {
            cid: _Cell(cell.count, cell.is_leaf, set(cell.users))
            for cid, cell in state.cells.items()
        }
        self._users = {
            uid: _UserRecord(rec.profile, rec.point, rec.leaf)
            for uid, rec in state.users.items()
        }
        if self._table is not None:
            self._table.clear()
            for uid, rec in self._users.items():
                self._table.add(
                    uid, rec.point.x, rec.point.y,
                    rec.profile.k, rec.profile.a_min, 0,
                )
        self._epoch += 1
        self.cloak_cache.clear()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert incomplete-pyramid consistency."""
        root = CellId(0, 0, 0)
        assert root in self._cells, "root must always be maintained"
        leaf_population = 0
        for cell, entry in self._cells.items():
            if entry.is_leaf:
                leaf_population += entry.count
                assert entry.count == len(entry.users), f"leaf {cell} count drift"
                for uid in entry.users:
                    rec = self._users[uid]
                    assert rec.leaf == cell, f"hash table stale for {uid!r}"
                    assert cell.is_ancestor_of(
                        self.grid.cell_of(rec.point)
                    ), f"user {uid!r} outside its leaf"
                # Cut property: no child of a leaf is maintained.
                if cell.level < self.height:
                    for child in cell.children():
                        assert child not in self._cells, "leaf with children"
            else:
                children = cell.children()
                assert all(c in self._cells for c in children), "partial split"
                assert entry.count == sum(
                    self._cells[c].count for c in children
                ), f"internal {cell} count != children sum"
                assert not entry.users, "internal cell holds users"
            if not cell.is_root:
                assert cell.parent() in self._cells, "orphan maintained cell"
                assert not self._cells[cell.parent()].is_leaf, "parent is leaf"
        assert leaf_population == len(self._users), "population drift"
        assert self._cells[root].count == len(self._users)
        if self._table is not None:
            # The gate table is a derived mirror of the records — any
            # drift would silently skew split/merge decisions.
            assert len(self._table) == len(self._users), "gate table size drift"
            for uid, rec in self._users.items():
                slot = self._table.slot_of(uid)
                assert slot is not None, f"gate table missing {uid!r}"
                # Exact equality on purpose: the table is a bit-copy of
                # the record floats; any representational difference IS
                # the drift this assert exists to catch.
                assert (
                    float(self._table.xs[slot]) == rec.point.x  # casperlint: ignore[CSP004] bit-copy audit
                    and float(self._table.ys[slot]) == rec.point.y  # casperlint: ignore[CSP004] bit-copy audit
                    and int(self._table.ks[slot]) == rec.profile.k
                    and float(self._table.a_mins[slot]) == rec.profile.a_min  # casperlint: ignore[CSP004] bit-copy audit
                ), f"gate table drift for {uid!r}"
