"""The *adaptive* location anonymizer (Section 4.2).

Maintains an *incomplete* pyramid [Aref & Samet 1990]: only cells that
could actually serve as cloaking regions for the current user population
exist.  The maintained cells form a quadtree cut — the root always
exists, and a cell is either a *leaf* (its children are not maintained)
or fully split (all four children maintained).  The per-user hash table
points at the lowest *maintained* cell, so both location updates and
Algorithm 1 touch far fewer cells than the basic anonymizer when users
have strict privacy profiles.

The split/merge decisions and the cut-maintenance walk live in
:mod:`repro.anonymizer.policies.adaptive` (shared verbatim with the
sharded fleet); this class is the single-pyramid host: a local cell
dict, one mutation epoch, and the engine's instrumented cloak.

With ``vectorized=True`` (the default) the maintained cut stays a dict —
it is sparse by design — but every per-user scan (the split gate and
exact check, the merge blocker, ``users_in_rect``) runs as a numpy
reduction over a slot-indexed gate table
(:class:`repro.anonymizer.soa.UserTable`) mirroring the user records.
``vectorized=False`` is the original per-object scalar path, kept as the
reference oracle for the differential-equivalence suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.anonymizer.cache import CloakCache
from repro.anonymizer.cells import CellId
from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.engine import PyramidEngine
from repro.anonymizer.policies.adaptive import (
    CutCell,
    CutMaintainer,
    choose_split,
    merge_is_blocked,
)
from repro.anonymizer.profile import PrivacyProfile
from repro.anonymizer.soa import UserTable, default_vectorized
from repro.errors import DuplicateUserError, UnknownUserError
from repro.geometry import Point, Rect

__all__ = ["AdaptiveAnonymizer", "choose_split", "merge_is_blocked"]

# Historical spelling: the maintained-cell dataclass grew up here before
# moving to the shared policy module; the sharded host imports it under
# this name.
_Cell = CutCell


@dataclass
class _UserRecord:
    profile: PrivacyProfile
    point: Point
    leaf: CellId


@dataclass(frozen=True)
class _AdaptiveSnapshot:
    """Deep copy of an :class:`AdaptiveAnonymizer`'s population state."""

    cells: dict[CellId, CutCell]
    users: dict[object, _UserRecord]


class AdaptiveAnonymizer(CutMaintainer, PyramidEngine):
    """Incomplete-pyramid location anonymizer.

    ``vectorized`` selects the numpy gate-table backend for the per-user
    scans (default) or the scalar reference path; the maintained cut and
    the user records are identical dicts either way, so the two modes
    produce byte-identical cuts, cloaks and snapshots.
    """

    label = "adaptive"

    def __init__(
        self,
        bounds: Rect,
        height: int = 9,
        cloak_cache_size: int = 8192,
        vectorized: bool | None = None,
    ) -> None:
        self._init_engine(bounds, height)
        self._cells: dict[CellId, CutCell] = {CellId(0, 0, 0): CutCell()}
        self._users: dict[object, _UserRecord] = {}
        # Generation counters outlive the cells they describe: a merged
        # (deleted) cell's count reads as 0, which is still a change the
        # cloak cache must observe, so gens live in their own dict.
        self._gens: dict[CellId, int] = {}
        self._epoch = 0
        self.cloak_cache = CloakCache(cloak_cache_size)
        if vectorized is None:
            vectorized = default_vectorized()
        self.vectorized = vectorized
        # Gate table: parallel (x, y, k, A_min) arrays mirroring the
        # user records, powering the vectorized split/merge/rect scans.
        # The cell column is unused here — the incomplete pyramid tracks
        # leaves in the records themselves.
        self._table: UserTable | None = UserTable() if vectorized else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return len(self._users)

    @property
    def num_maintained_cells(self) -> int:
        """Size of the incomplete pyramid (the adaptive structure's
        memory footprint; the basic anonymizer's equivalent is fixed at
        ``sum(4**level)``)."""
        return len(self._cells)

    def __contains__(self, uid: object) -> bool:
        return uid in self._users

    def profile_of(self, uid: object) -> PrivacyProfile:
        return self._record(uid).profile

    def location_of(self, uid: object) -> Point:
        return self._record(uid).point

    def cell_count(self, cell: CellId) -> int:
        """Population of a *maintained* cell (0 for absent cells, which
        only occurs below the maintained cut, where the population would
        indeed require splitting to know)."""
        entry = self._cells.get(cell)
        return entry.count if entry is not None else 0

    def users_in_rect(self, rect: Rect) -> int:
        """Exact population of an arbitrary rectangle (verification aid)."""
        if self._table is not None:
            return self._table.count_in_rect(rect)
        return sum(1 for rec in self._users.values() if rect.contains_point(rec.point))

    def _record(self, uid: object) -> _UserRecord:
        try:
            return self._users[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    # ------------------------------------------------------------------
    # CutMaintainer host hooks: local dict storage, one mutation epoch
    # ------------------------------------------------------------------
    def _entry(self, cell: CellId) -> CutCell | None:
        return self._cells.get(cell)

    def _entry_required(self, cell: CellId) -> CutCell:
        return self._cells[cell]

    def _set_entry(self, cell: CellId, entry: CutCell) -> None:
        self._cells[cell] = entry

    def _del_entry(self, cell: CellId) -> None:
        del self._cells[cell]

    def _bump_gen(self, cell: CellId) -> None:
        self._gens[cell] = self._gens.get(cell, 0) + 1

    def _gen_of(self, cell: CellId) -> int:
        return self._gens.get(cell, 0)

    def _commit(self, touched: Sequence[CellId]) -> None:
        self._epoch += 1

    def _point_of(self, uid: object) -> Point:
        return self._users[uid].point

    def _profile_of(self, uid: object) -> PrivacyProfile:
        return self._users[uid].profile

    def _set_leaf(self, uid: object, leaf: CellId) -> None:
        self._users[uid].leaf = leaf

    # ------------------------------------------------------------------
    # Registration and location updates
    # ------------------------------------------------------------------
    def register(self, uid: object, point: Point, profile: PrivacyProfile) -> None:
        if uid in self._users:
            raise DuplicateUserError(uid)
        leaf = self.leaf_for_point(point)
        self._users[uid] = _UserRecord(profile, point, leaf)
        if self._table is not None:
            self._table.add(uid, point.x, point.y, profile.k, profile.a_min, 0)
        self._add_to_leaf(uid, leaf)
        self.stats.registrations += 1
        self._maybe_split(leaf)

    def deregister(self, uid: object) -> None:
        record = self._record(uid)
        self._remove_from_leaf(uid, record.leaf)
        del self._users[uid]
        if self._table is not None:
            self._table.remove(uid)
        self.stats.deregistrations += 1
        self._maybe_merge(record.leaf)

    def set_profile(self, uid: object, profile: PrivacyProfile) -> None:
        """Change a user's profile; may reshape the pyramid around them."""
        record = self._record(uid)
        record.profile = profile
        if self._table is not None:
            slot = self._table.slot_of(uid)
            assert slot is not None
            self._table.ks[slot] = profile.k
            self._table.a_mins[slot] = profile.a_min
        self._maybe_split(record.leaf)
        self._maybe_merge(record.leaf)

    def update(self, uid: object, point: Point) -> int:
        """Process a location update; returns its counter-update cost."""
        record = self._record(uid)
        record.point = point
        if self._table is not None:
            slot = self._table.slot_of(uid)
            assert slot is not None
            self._table.xs[slot] = point.x
            self._table.ys[slot] = point.y
        self.stats.location_updates += 1
        new_leaf = self.leaf_for_point(point)
        if new_leaf == record.leaf:
            return 0
        old_leaf = record.leaf
        cost = self._move_between_leaves(uid, old_leaf, new_leaf)
        record.leaf = new_leaf
        self.stats.counter_updates += cost
        self.stats.cell_changes += 1
        self._maybe_split(new_leaf)
        self._maybe_merge(old_leaf)
        return cost

    def update_batch(self, moves: list[tuple[object, Point]]) -> list[int]:
        """Apply a tick of location updates; returns per-move costs.

        The incomplete pyramid reshapes (split/merge) after *every*
        move, so updates do not commute and the batch is applied in
        arrival order — this method exists so batch seams address both
        anonymizer kinds uniformly.  The vectorized gains come from the
        gate-table scans inside each split/merge decision.
        """
        return [self.update(uid, point) for uid, point in moves]

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def cloak(self, uid: object) -> CloakedRegion:
        """Blur ``uid``'s location, starting Algorithm 1 from their
        lowest *maintained* cell."""
        record = self._record(uid)
        return self._cloak_cell(record.profile, record.leaf)

    def cloak_location(self, point: Point, profile: PrivacyProfile) -> CloakedRegion:
        """One-shot cloak of an arbitrary location (query anonymization)."""
        return self._cloak_cell(profile, self.leaf_for_point(point))

    def _cloak_cell(self, profile: PrivacyProfile, leaf: CellId) -> CloakedRegion:
        return self._cloak_via(
            self.cloak_cache, self.cell_count, self._gen_of, self._epoch,
            profile, leaf,
        )

    # ------------------------------------------------------------------
    # Crash recovery (snapshot/restore of incomplete pyramid + users)
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        """An opaque deep copy of the maintained cut and the user table
        for crash recovery.  Generation counters and statistics are
        excluded — they are monotone observability state."""
        return _AdaptiveSnapshot(
            cells={
                cid: CutCell(cell.count, cell.is_leaf, set(cell.users))
                for cid, cell in self._cells.items()
            },
            users={
                uid: _UserRecord(rec.profile, rec.point, rec.leaf)
                for uid, rec in self._users.items()
            },
        )

    def restore(self, state: object) -> None:
        """Replace the population state with a :meth:`snapshot` copy.

        The snapshot is copied again so it can restore repeated crashes.
        Generations stay monotone and the cloak cache is dropped — the
        maintained cut changed without generation bumps, so every cached
        entry is suspect.
        """
        if not isinstance(state, _AdaptiveSnapshot):
            raise TypeError("not an AdaptiveAnonymizer snapshot")
        self._cells = {
            cid: CutCell(cell.count, cell.is_leaf, set(cell.users))
            for cid, cell in state.cells.items()
        }
        self._users = {
            uid: _UserRecord(rec.profile, rec.point, rec.leaf)
            for uid, rec in state.users.items()
        }
        if self._table is not None:
            self._table.clear()
            for uid, rec in self._users.items():
                self._table.add(
                    uid, rec.point.x, rec.point.y,
                    rec.profile.k, rec.profile.a_min, 0,
                )
        self._epoch += 1
        self.cloak_cache.clear()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert incomplete-pyramid consistency."""
        root = CellId(0, 0, 0)
        assert root in self._cells, "root must always be maintained"
        leaf_population = 0
        for cell, entry in self._cells.items():
            if entry.is_leaf:
                leaf_population += entry.count
                assert entry.count == len(entry.users), f"leaf {cell} count drift"
                for uid in entry.users:
                    rec = self._users[uid]
                    assert rec.leaf == cell, f"hash table stale for {uid!r}"
                    assert cell.is_ancestor_of(
                        self.grid.cell_of(rec.point)
                    ), f"user {uid!r} outside its leaf"
                # Cut property: no child of a leaf is maintained.
                if cell.level < self.height:
                    for child in cell.children():
                        assert child not in self._cells, "leaf with children"
            else:
                children = cell.children()
                assert all(c in self._cells for c in children), "partial split"
                assert entry.count == sum(
                    self._cells[c].count for c in children
                ), f"internal {cell} count != children sum"
                assert not entry.users, "internal cell holds users"
            if not cell.is_root:
                assert cell.parent() in self._cells, "orphan maintained cell"
                assert not self._cells[cell.parent()].is_leaf, "parent is leaf"
        assert leaf_population == len(self._users), "population drift"
        assert self._cells[root].count == len(self._users)
        if self._table is not None:
            # The gate table is a derived mirror of the records — any
            # drift would silently skew split/merge decisions.
            assert len(self._table) == len(self._users), "gate table size drift"
            for uid, rec in self._users.items():
                slot = self._table.slot_of(uid)
                assert slot is not None, f"gate table missing {uid!r}"
                # Exact equality on purpose: the table is a bit-copy of
                # the record floats; any representational difference IS
                # the drift this assert exists to catch.
                assert (
                    float(self._table.xs[slot]) == rec.point.x  # casperlint: ignore[CSP004] bit-copy audit
                    and float(self._table.ys[slot]) == rec.point.y  # casperlint: ignore[CSP004] bit-copy audit
                    and int(self._table.ks[slot]) == rec.profile.k
                    and float(self._table.a_mins[slot]) == rec.profile.a_min  # casperlint: ignore[CSP004] bit-copy audit
                ), f"gate table drift for {uid!r}"
