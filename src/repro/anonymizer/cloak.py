"""Algorithm 1 — bottom-up cloaking over a pyramid of user counts.

Shared by the basic and adaptive anonymizers: the two differ only in the
cell the search *starts* from (the lowest complete-pyramid level vs the
lowest *maintained* level) and in how the count view is backed.

Faithful to the paper's Algorithm 1:

1. if the start cell alone satisfies ``(k, A_min)`` return it;
2. otherwise try combining with the horizontal or vertical same-parent
   neighbour, choosing the combination whose population is *closer to
   k* (the paper's accuracy requirement: :math:`k_R \\gtrsim k`, as
   tight as possible);
3. otherwise recurse on the parent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.anonymizer.cells import CellGrid, CellId
from repro.anonymizer.profile import PrivacyProfile
from repro.errors import ProfileUnsatisfiableError
from repro.geometry import Rect

__all__ = ["CloakedRegion", "bottom_up_cloak"]

CountFn = Callable[[CellId], int]


@dataclass(frozen=True, slots=True)
class CloakedRegion:
    """The output of the location anonymizer for one request.

    ``achieved_k`` is the number of users inside the region (the paper's
    :math:`k'` used for the Figure 10c accuracy metric) and ``cells``
    records which pyramid cells compose it — always a single cell or a
    same-parent sibling pair, i.e. a rectangle from the pre-defined
    partitioning, which is what makes the cloak data-independent (the
    *quality* requirement).

    Membership semantics: ``achieved_k`` counts users by their pyramid
    *cell assignment*, which is half-open (a point on a shared cell
    border belongs to the upper-right cell, per
    :meth:`~repro.anonymizer.cells.CellGrid.cell_of`).  A user sitting
    exactly on the region's closed boundary but assigned to a
    neighbouring cell is therefore not counted — each user contributes
    to exactly one cell, which is what keeps pyramid counters exact.
    """

    region: Rect
    achieved_k: int
    cells: tuple[CellId, ...] = ()

    @property
    def level(self) -> int:
        """Pyramid level of the composing cells; ``-1`` for regions not
        produced from pyramid cells (baseline anonymizers)."""
        return self.cells[0].level if self.cells else -1

    @property
    def area(self) -> float:
        """Area of the cloaked region (the paper's :math:`A'`)."""
        return self.region.area

    def accuracy_k(self, profile: PrivacyProfile) -> float:
        """The Figure 10c metric :math:`k'/k` (1.0 is optimal)."""
        return self.achieved_k / profile.k

    def accuracy_area(self, profile: PrivacyProfile) -> float:
        """The Figure 10d metric :math:`A'/A_{min}`; infinite when the
        profile asked for no minimum area."""
        if profile.a_min <= 0:
            return float("inf")
        return self.area / profile.a_min


def bottom_up_cloak(
    grid: CellGrid,
    count: CountFn,
    profile: PrivacyProfile,
    start: CellId,
) -> CloakedRegion:
    """Run Algorithm 1 from ``start`` and return the cloaked region.

    ``count`` maps any cell at ``start``'s level or above to its user
    population.  Raises :class:`ProfileUnsatisfiableError` when even the
    root cell (the whole service area) cannot satisfy the profile — the
    paper's precondition that ``k`` not exceed the registered population
    and ``A_min`` not exceed the total area.
    """
    k, a_min = profile.k, profile.a_min
    cell = start
    while True:
        cell_count = count(cell)
        cell_area = grid.cell_area(cell.level)
        if cell_count >= k and cell_area >= a_min - 1e-15:
            return CloakedRegion(grid.cell_rect(cell), cell_count, (cell,))
        if cell.is_root:
            raise ProfileUnsatisfiableError(
                f"profile (k={k}, a_min={a_min}) unsatisfiable: the whole "
                f"service area holds {cell_count} users / area {cell_area}"
            )
        cid_h = cell.horizontal_neighbor()
        cid_v = cell.vertical_neighbor()
        n_h = cell_count + count(cid_h)
        n_v = cell_count + count(cid_v)
        if (n_v >= k or n_h >= k) and 2.0 * cell_area >= a_min - 1e-15:
            # Prefer the combination whose population is closer to k
            # (lines 9-13 of Algorithm 1).
            if (n_h >= k and n_v >= k and n_h <= n_v) or n_v < k:
                return CloakedRegion(
                    grid.pair_rect(cell, cid_h), n_h, (cell, cid_h)
                )
            return CloakedRegion(grid.pair_rect(cell, cid_v), n_v, (cell, cid_v))
        cell = cell.parent()
