"""Nearest-neighbour MBR cloaking policy — a CliqueCloak-style
(Gedik & Liu, ICDCS 2005) competitor on the :class:`CloakingPolicy`
protocol.

The faithful message-perturbation engine lives in
``anonymizer/baselines/clique_cloak.py`` (pending requests, constraint
graph, clique search).  That model is request-batched and cannot answer
a standalone ``cloak(uid)`` — so this policy ports its *cloaking
geometry* instead: the user plus their ``k - 1`` nearest neighbours
share the group's minimum bounding rectangle, grown to ``A_min`` and
clamped to the service area.  It keeps CliqueCloak's characteristic
weakness (group members can sit exactly on the rectangle's boundary)
while gaining the protocol surface that the sharding, parallelism and
conformance harnesses require.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.engine import PyramidEngine
from repro.anonymizer.policy import CloakingPolicy, PolicySpec, register_policy
from repro.anonymizer.profile import PrivacyProfile
from repro.errors import DuplicateUserError, ProfileUnsatisfiableError, UnknownUserError
from repro.geometry import Point, Rect

__all__ = ["CliquePolicy"]


@dataclass
class _Rec:
    profile: PrivacyProfile
    point: Point


@dataclass(frozen=True)
class _CliqueSnapshot:
    users: dict[object, _Rec]


def _expand_to_area(rect: Rect, a_min: float, bounds: Rect) -> Rect:
    """Grow ``rect`` (kept inside ``bounds``) until its area reaches
    ``a_min``; the original rectangle stays covered."""
    if rect.area >= a_min - 1e-15:
        return rect
    # Slight over-shoot so sqrt rounding can never land us below A_min.
    side = math.sqrt(a_min) * (1.0 + 1e-9)
    w = max(rect.width, min(side, bounds.width))
    h = max(rect.height, min(side, bounds.height))
    if w * h < a_min:
        # One dimension hit the service-area limit; stretch the other.
        if w < bounds.width:
            w = min(a_min * (1.0 + 1e-9) / h, bounds.width)
        if w * h < a_min:
            h = min(a_min * (1.0 + 1e-9) / w, bounds.height)
    cx = (rect.x_min + rect.x_max) / 2.0
    cy = (rect.y_min + rect.y_max) / 2.0
    x0 = min(max(cx - w / 2.0, bounds.x_min), bounds.x_max - w)
    y0 = min(max(cy - h / 2.0, bounds.y_min), bounds.y_max - h)
    return Rect(x0, y0, x0 + w, y0 + h)


class CliquePolicy(PyramidEngine):
    """k-nearest-group MBR cloaker."""

    label = "clique"

    def __init__(
        self,
        bounds: Rect,
        height: int = 9,
        cloak_cache_size: int = 8192,
        vectorized: bool | None = None,
    ) -> None:
        self._init_engine(bounds, height)
        self._users: dict[object, _Rec] = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return len(self._users)

    def __contains__(self, uid: object) -> bool:
        return uid in self._users

    def _record(self, uid: object) -> _Rec:
        try:
            return self._users[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    def profile_of(self, uid: object) -> PrivacyProfile:
        return self._record(uid).profile

    def location_of(self, uid: object) -> Point:
        return self._record(uid).point

    def users_in_rect(self, rect: Rect) -> int:
        return sum(
            1 for rec in self._users.values() if rect.contains_point(rec.point)
        )

    def register(self, uid: object, point: Point, profile: PrivacyProfile) -> None:
        if uid in self._users:
            raise DuplicateUserError(uid)
        self._users[uid] = _Rec(profile, point)
        self.stats.registrations += 1

    def deregister(self, uid: object) -> None:
        self._record(uid)
        del self._users[uid]
        self.stats.deregistrations += 1

    def set_profile(self, uid: object, profile: PrivacyProfile) -> None:
        self._record(uid).profile = profile

    def update(self, uid: object, point: Point) -> int:
        self._record(uid).point = point
        self.stats.location_updates += 1
        return 0

    def update_batch(self, moves: list[tuple[object, Point]]) -> list[int]:
        return [self.update(uid, point) for uid, point in moves]

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def cloak(self, uid: object) -> CloakedRegion:
        record = self._record(uid)
        return self._instrumented_cloak(
            lambda: self._group_cloak(record.point, record.profile), record.profile
        )

    def cloak_location(self, point: Point, profile: PrivacyProfile) -> CloakedRegion:
        return self._instrumented_cloak(
            lambda: self._group_cloak(point, profile), profile
        )

    def _group_cloak(self, location: Point, profile: PrivacyProfile) -> CloakedRegion:
        """MBR of ``location`` plus its ``k - 1`` nearest users, grown
        to ``A_min`` and clamped to the service area."""
        points = [rec.point for rec in self._users.values()]
        if len(points) < profile.k:
            raise ProfileUnsatisfiableError(
                f"population {len(points)} below k={profile.k}"
            )
        if self.bounds.area < profile.a_min - 1e-15:
            raise ProfileUnsatisfiableError(
                f"A_min {profile.a_min} exceeds the service area"
            )
        points.sort(key=location.squared_distance_to)
        group = points[: profile.k]
        xs = [p.x for p in group] + [location.x]
        ys = [p.y for p in group] + [location.y]
        rect = _expand_to_area(
            Rect(min(xs), min(ys), max(xs), max(ys)), profile.a_min, self.bounds
        )
        achieved = sum(
            1 for rec in self._users.values() if rect.contains_point(rec.point)
        )
        return CloakedRegion(rect, achieved, ())

    # ------------------------------------------------------------------
    # Recovery and diagnostics
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        return _CliqueSnapshot(
            users={uid: _Rec(r.profile, r.point) for uid, r in self._users.items()}
        )

    def restore(self, state: object) -> None:
        if not isinstance(state, _CliqueSnapshot):
            raise TypeError("not a CliquePolicy snapshot")
        self._users = {
            uid: _Rec(r.profile, r.point) for uid, r in state.users.items()
        }

    def check_invariants(self) -> None:
        for uid, rec in self._users.items():
            assert self.bounds.contains_point(rec.point), f"{uid!r} out of bounds"


def _single(
    bounds: Rect, height: int, cloak_cache_size: int, vectorized: bool | None
) -> CloakingPolicy:
    return CliquePolicy(bounds, height, cloak_cache_size, vectorized)


register_policy(
    PolicySpec(
        name="clique",
        single=_single,
        replication="broadcast",
        description="k-nearest-group MBR cloaking (CliqueCloak-style)",
    )
)
