"""Visitor-history cloaking policy — the *temporal* flavour of
Gruteser & Grunwald (MobiSys 2003) on the :class:`CloakingPolicy`
protocol.

The faithful delay-based model lives in
``anonymizer/baselines/temporal_cloak.py`` (time-ordered observation
stream, report delayed until ``k`` distinct visitors).  A standalone
``cloak(uid)`` has no clock to delay against, so this port keeps the
defining idea — anonymity among the cell's *historical visitors*, not
its instantaneous population — in spatial form: every register/update
records the user as a visitor of each pyramid cell on their
root-to-leaf path, and a cloak climbs from the user's lowest-level cell
until the cell's distinct-visitor count reaches ``k`` and its area
reaches ``A_min``.  ``achieved_k`` therefore counts historical
visitors; users who have deregistered still widen the anonymity set,
exactly the freshness-for-anonymity trade the paper declines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymizer.cells import CellId
from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.engine import PyramidEngine
from repro.anonymizer.policy import CloakingPolicy, PolicySpec, register_policy
from repro.anonymizer.profile import PrivacyProfile
from repro.errors import DuplicateUserError, ProfileUnsatisfiableError, UnknownUserError
from repro.geometry import Point, Rect

__all__ = ["TemporalPolicy"]


@dataclass
class _Rec:
    profile: PrivacyProfile
    point: Point


@dataclass(frozen=True)
class _TemporalSnapshot:
    users: dict[object, _Rec]
    visitors: dict[CellId, set[object]]


class TemporalPolicy(PyramidEngine):
    """Pyramid-cell cloaker over distinct historical visitors."""

    label = "temporal"

    def __init__(
        self,
        bounds: Rect,
        height: int = 9,
        cloak_cache_size: int = 8192,
        vectorized: bool | None = None,
    ) -> None:
        self._init_engine(bounds, height)
        self._users: dict[object, _Rec] = {}
        # cell -> uids ever observed inside it; grows monotonically (a
        # deregistered visitor still anonymizes later reports).
        self._visitors: dict[CellId, set[object]] = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return len(self._users)

    def __contains__(self, uid: object) -> bool:
        return uid in self._users

    def _record(self, uid: object) -> _Rec:
        try:
            return self._users[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    def profile_of(self, uid: object) -> PrivacyProfile:
        return self._record(uid).profile

    def location_of(self, uid: object) -> Point:
        return self._record(uid).point

    def users_in_rect(self, rect: Rect) -> int:
        return sum(
            1 for rec in self._users.values() if rect.contains_point(rec.point)
        )

    def _observe(self, uid: object, point: Point) -> None:
        for cell in self.grid.path_to_root(self.grid.cell_of(point)):
            seen = self._visitors.get(cell)
            if seen is None:
                seen = set()
                self._visitors[cell] = seen
            seen.add(uid)

    def register(self, uid: object, point: Point, profile: PrivacyProfile) -> None:
        if uid in self._users:
            raise DuplicateUserError(uid)
        self._users[uid] = _Rec(profile, point)
        self._observe(uid, point)
        self.stats.registrations += 1
        self.stats.counter_updates += self.height + 1

    def deregister(self, uid: object) -> None:
        self._record(uid)
        del self._users[uid]
        self.stats.deregistrations += 1

    def set_profile(self, uid: object, profile: PrivacyProfile) -> None:
        self._record(uid).profile = profile

    def update(self, uid: object, point: Point) -> int:
        record = self._record(uid)
        record.point = point
        self._observe(uid, point)
        self.stats.location_updates += 1
        cost = self.height + 1
        self.stats.counter_updates += cost
        return cost

    def update_batch(self, moves: list[tuple[object, Point]]) -> list[int]:
        return [self.update(uid, point) for uid, point in moves]

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def cloak(self, uid: object) -> CloakedRegion:
        record = self._record(uid)
        return self._instrumented_cloak(
            lambda: self._history_cloak(record.point, record.profile),
            record.profile,
        )

    def cloak_location(self, point: Point, profile: PrivacyProfile) -> CloakedRegion:
        return self._instrumented_cloak(
            lambda: self._history_cloak(point, profile), profile
        )

    def _history_cloak(
        self, location: Point, profile: PrivacyProfile
    ) -> CloakedRegion:
        """Climb from the lowest-level cell until the distinct-visitor
        count reaches ``k`` and the area reaches ``A_min``."""
        for cell in self.grid.path_to_root(self.grid.cell_of(location)):
            visitors = len(self._visitors.get(cell, ()))
            area = self.grid.cell_area(cell.level)
            if visitors >= profile.k and area >= profile.a_min - 1e-15:
                return CloakedRegion(self.grid.cell_rect(cell), visitors, (cell,))
        raise ProfileUnsatisfiableError(
            f"whole-area visitor history cannot satisfy k={profile.k}, "
            f"A_min={profile.a_min}"
        )

    # ------------------------------------------------------------------
    # Recovery and diagnostics
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        return _TemporalSnapshot(
            users={uid: _Rec(r.profile, r.point) for uid, r in self._users.items()},
            visitors={cell: set(seen) for cell, seen in self._visitors.items()},
        )

    def restore(self, state: object) -> None:
        if not isinstance(state, _TemporalSnapshot):
            raise TypeError("not a TemporalPolicy snapshot")
        self._users = {
            uid: _Rec(r.profile, r.point) for uid, r in state.users.items()
        }
        self._visitors = {cell: set(seen) for cell, seen in state.visitors.items()}

    def check_invariants(self) -> None:
        for uid, rec in self._users.items():
            assert self.bounds.contains_point(rec.point), f"{uid!r} out of bounds"
            # Every live user is among the visitors of their own path.
            for cell in self.grid.path_to_root(self.grid.cell_of(rec.point)):
                assert uid in self._visitors.get(cell, ()), (
                    f"{uid!r} missing from visitor history of {cell}"
                )


def _single(
    bounds: Rect, height: int, cloak_cache_size: int, vectorized: bool | None
) -> CloakingPolicy:
    return TemporalPolicy(bounds, height, cloak_cache_size, vectorized)


register_policy(
    PolicySpec(
        name="temporal",
        single=_single,
        replication="broadcast",
        description="Distinct-visitor-history cloaking (temporal baseline)",
    )
)
