"""Built-in cloaking policies.

Importing this package registers every built-in policy with the
registry in :mod:`repro.anonymizer.policy` (the registry does this
lazily on first lookup).  Each submodule is one policy: the algorithm's
decision logic and maintenance mixin, plus its :class:`PolicySpec`.

* :mod:`~repro.anonymizer.policies.basic` — complete pyramid (§4.1);
* :mod:`~repro.anonymizer.policies.adaptive` — incomplete pyramid with
  splitting/merging (§4.2);
* :mod:`~repro.anonymizer.policies.interval` /
  :mod:`~repro.anonymizer.policies.clique` /
  :mod:`~repro.anonymizer.policies.temporal` — the related-work
  baselines ported onto the protocol.

Policy implementations may touch pyramid state only through the engine
and mixin hook APIs — casperlint rule CSP014 enforces that no module
under this package mutates another object's underscore attributes
directly.
"""

from repro.anonymizer.policies.adaptive import (
    CutCell,
    CutMaintainer,
    choose_split,
    merge_is_blocked,
)
from repro.anonymizer.policies.basic import CompletePyramidMaintainer
from repro.anonymizer.policies.clique import CliquePolicy
from repro.anonymizer.policies.interval import IntervalPolicy
from repro.anonymizer.policies.temporal import TemporalPolicy

__all__ = [
    "CliquePolicy",
    "CompletePyramidMaintainer",
    "CutCell",
    "CutMaintainer",
    "IntervalPolicy",
    "TemporalPolicy",
    "choose_split",
    "merge_is_blocked",
]
