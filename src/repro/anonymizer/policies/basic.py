"""The basic (complete-pyramid) cloaking policy — Section 4.1.

:class:`CompletePyramidMaintainer` is the shared maintenance walk over
a complete pyramid of per-cell counters: apply a population delta along
one root-to-leaf path, or move a user between two lowest-level cells by
adjusting both branches below their common ancestor.  The single
anonymizer (``repro.anonymizer.basic``) and the sharded fleet
(``repro.sharding.basic``) host it by supplying two hooks:

* ``_apply_cell(cell, delta)`` — add ``delta`` to one cell's counter
  and bump its generation (scalar per-level arrays, or the routed
  spine/core stores of a fleet);
* ``_commit(touched)`` — epoch effects of the completed primitive.

The vectorized single backend and the sharded fleet's confined-move
fast path bypass the mixin on purpose: their batched kernels update
whole chains without per-cell python dispatch, and the differential
suites pin them against this scalar walk.
"""

from __future__ import annotations

from typing import Sequence

from repro.anonymizer.cells import CellGrid, CellId, branch_pairs
from repro.anonymizer.policy import CloakingPolicy, PolicySpec, register_policy
from repro.anonymizer.stats import MaintenanceStats
from repro.geometry import Rect

__all__ = ["CompletePyramidMaintainer"]


class CompletePyramidMaintainer:
    """Complete-pyramid counter maintenance over host-supplied hooks."""

    grid: CellGrid
    stats: MaintenanceStats

    # ------------------------------------------------------------------
    # Host hooks
    # ------------------------------------------------------------------
    def _apply_cell(self, cell: CellId, delta: int) -> None:
        raise NotImplementedError

    def _commit(self, touched: Sequence[CellId]) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Maintenance primitives
    # ------------------------------------------------------------------
    def _apply_delta(self, cell: CellId, delta: int) -> None:
        """Register/deregister: one delta along the root-to-leaf path."""
        path = self.grid.path_to_root(cell)
        for ancestor in path:
            self._apply_cell(ancestor, delta)
        self._commit(path)
        self.stats.counter_updates += cell.level + 1

    def _apply_branches(self, old: CellId, new: CellId, ancestor_level: int) -> int:
        """Movement: counters change on both branches strictly below the
        common ancestor of the old and new lowest-level cells.  Returns
        the counter-update cost."""
        touched: list[CellId] = []
        cost = 0
        for old_cell, new_cell in branch_pairs(old, new, ancestor_level):
            self._apply_cell(old_cell, -1)
            self._apply_cell(new_cell, +1)
            touched.append(old_cell)
            touched.append(new_cell)
            cost += 2
        self._commit(touched)
        return cost


def _single(
    bounds: Rect, height: int, cloak_cache_size: int, vectorized: bool | None
) -> CloakingPolicy:
    from repro.anonymizer.basic import BasicAnonymizer

    return BasicAnonymizer(bounds, height, cloak_cache_size, vectorized)


def _sharded(
    bounds: Rect,
    height: int,
    num_shards: int,
    cloak_cache_size: int,
    vectorized: bool | None,
) -> object:
    from repro.sharding.basic import ShardedBasicAnonymizer

    return ShardedBasicAnonymizer(
        bounds,
        height=height,
        num_shards=num_shards,
        cloak_cache_size=cloak_cache_size,
        vectorized=vectorized,
    )


register_policy(
    PolicySpec(
        name="basic",
        single=_single,
        sharded=_sharded,
        replication="partition",
        description="Complete pyramid of per-cell counters (Section 4.1)",
    )
)
