"""Interval cloaking policy — the Gruteser & Grunwald (MobiSys 2003)
spatial baseline ported onto the :class:`CloakingPolicy` protocol.

The original ``anonymizer/baselines/interval_cloak.py`` keeps the
published contract verbatim (one global ``k``, no profiles); this port
is the same KD-halving search made a first-class policy: per-user
``(k, A_min)`` profiles, the standard register/update/cloak surface,
and registry entry ``"interval"`` — so it runs through sharding,
process parallelism and the conformance matrix like the pyramid
cloakers.  It maintains no structure at all; every cloak pays a linear
scan per halving, which is exactly the scalability weakness the paper's
related-work section calls out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.engine import PyramidEngine
from repro.anonymizer.policy import CloakingPolicy, PolicySpec, register_policy
from repro.anonymizer.profile import PrivacyProfile
from repro.errors import DuplicateUserError, ProfileUnsatisfiableError, UnknownUserError
from repro.geometry import Point, Rect

__all__ = ["IntervalPolicy"]


@dataclass
class _Rec:
    profile: PrivacyProfile
    point: Point


@dataclass(frozen=True)
class _IntervalSnapshot:
    users: dict[object, _Rec]


class IntervalPolicy(PyramidEngine):
    """KD-halving cloaker with per-user profiles (no maintained index)."""

    label = "interval"

    def __init__(
        self,
        bounds: Rect,
        height: int = 9,
        cloak_cache_size: int = 8192,
        vectorized: bool | None = None,
        min_side: float = 1e-6,
    ) -> None:
        # The pyramid height bounds nothing here (no index is kept); the
        # engine still provides the grid for bounds introspection, and
        # the unused cache/vectorized knobs keep the factory signature
        # uniform across policies.
        self._init_engine(bounds, height)
        self.min_side = min_side
        self._users: dict[object, _Rec] = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return len(self._users)

    def __contains__(self, uid: object) -> bool:
        return uid in self._users

    def _record(self, uid: object) -> _Rec:
        try:
            return self._users[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    def profile_of(self, uid: object) -> PrivacyProfile:
        return self._record(uid).profile

    def location_of(self, uid: object) -> Point:
        return self._record(uid).point

    def users_in_rect(self, rect: Rect) -> int:
        return sum(
            1 for rec in self._users.values() if rect.contains_point(rec.point)
        )

    def register(self, uid: object, point: Point, profile: PrivacyProfile) -> None:
        if uid in self._users:
            raise DuplicateUserError(uid)
        self._users[uid] = _Rec(profile, point)
        self.stats.registrations += 1

    def deregister(self, uid: object) -> None:
        self._record(uid)
        del self._users[uid]
        self.stats.deregistrations += 1

    def set_profile(self, uid: object, profile: PrivacyProfile) -> None:
        self._record(uid).profile = profile

    def update(self, uid: object, point: Point) -> int:
        """Location update; returns 0 — this policy maintains nothing,
        all its cost sits in :meth:`cloak`."""
        self._record(uid).point = point
        self.stats.location_updates += 1
        return 0

    def update_batch(self, moves: list[tuple[object, Point]]) -> list[int]:
        return [self.update(uid, point) for uid, point in moves]

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def cloak(self, uid: object) -> CloakedRegion:
        record = self._record(uid)
        return self._instrumented_cloak(
            lambda: self._kd_cloak(record.point, record.profile), record.profile
        )

    def cloak_location(self, point: Point, profile: PrivacyProfile) -> CloakedRegion:
        return self._instrumented_cloak(
            lambda: self._kd_cloak(point, profile), profile
        )

    def _kd_cloak(self, location: Point, profile: PrivacyProfile) -> CloakedRegion:
        """Recursively halve the space (alternating x/y cuts) around
        ``location``; stop at the last subspace still satisfying the
        profile's ``(k, A_min)``."""
        region = self.bounds
        members = [rec.point for rec in self._users.values()]
        if len(members) < profile.k:
            raise ProfileUnsatisfiableError(
                f"population {len(members)} below k={profile.k}"
            )
        if region.area < profile.a_min - 1e-15:
            raise ProfileUnsatisfiableError(
                f"A_min {profile.a_min} exceeds the service area"
            )
        vertical_cut = True
        while True:
            if vertical_cut:
                mid = (region.x_min + region.x_max) / 2.0
                if location.x < mid:
                    half = Rect(region.x_min, region.y_min, mid, region.y_max)
                else:
                    half = Rect(mid, region.y_min, region.x_max, region.y_max)
            else:
                mid = (region.y_min + region.y_max) / 2.0
                if location.y < mid:
                    half = Rect(region.x_min, region.y_min, region.x_max, mid)
                else:
                    half = Rect(region.x_min, mid, region.x_max, region.y_max)
            inside = [p for p in members if half.contains_point(p, tol=0.0)]
            if (
                len(inside) < profile.k
                or half.area < profile.a_min - 1e-15
                or min(half.width, half.height) < self.min_side
            ):
                return CloakedRegion(region, len(members), ())
            region = half
            members = inside
            vertical_cut = not vertical_cut

    # ------------------------------------------------------------------
    # Recovery and diagnostics
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        return _IntervalSnapshot(
            users={uid: _Rec(r.profile, r.point) for uid, r in self._users.items()}
        )

    def restore(self, state: object) -> None:
        if not isinstance(state, _IntervalSnapshot):
            raise TypeError("not an IntervalPolicy snapshot")
        self._users = {
            uid: _Rec(r.profile, r.point) for uid, r in state.users.items()
        }

    def check_invariants(self) -> None:
        for uid, rec in self._users.items():
            assert self.bounds.contains_point(rec.point), f"{uid!r} out of bounds"


def _single(
    bounds: Rect, height: int, cloak_cache_size: int, vectorized: bool | None
) -> CloakingPolicy:
    return IntervalPolicy(bounds, height, cloak_cache_size, vectorized)


register_policy(
    PolicySpec(
        name="interval",
        single=_single,
        replication="broadcast",
        description="KD-halving spatial cloaking (Gruteser & Grunwald 2003)",
    )
)
