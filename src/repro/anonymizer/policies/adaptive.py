"""The adaptive (incomplete-pyramid) cloaking policy — Section 4.2.

This module is the single definition site of the adaptive pyramid's
*algorithm*: the split/merge decision functions and
:class:`CutMaintainer`, the maintenance mixin that keeps a quadtree cut
consistent under registration, deregistration and movement.
``repro.anonymizer.adaptive`` (single pyramid) and
``repro.sharding.adaptive`` (partitioned fleet) are thin hosts: they
supply storage and epoch semantics through the small hook surface
below, and the mixin runs the identical walk on both — which is what
makes the single-shard oracle and the sharded fleet byte-identical.

Hook surface a host implements:

* ``_entry`` / ``_entry_required`` / ``_set_entry`` / ``_del_entry`` —
  maintained-cut storage (a local dict, or dicts routed across shard
  cores and the replicated spine);
* ``_bump_gen`` — per-cell generation counters for cache invalidation;
* ``_commit(touched)`` — epoch effects of one maintenance primitive
  (single pyramid: one mutation-epoch tick; sharded fleet: per-owning-
  shard core epochs plus the boundary epoch, derived from the touched
  cells' levels);
* ``_point_of`` / ``_profile_of`` / ``_set_leaf`` — user-record access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.anonymizer.cells import CellGrid, CellId
from repro.anonymizer.policy import CloakingPolicy, PolicySpec, register_policy
from repro.anonymizer.profile import PrivacyProfile
from repro.anonymizer.soa import UserTable, choose_split_vec, merge_blocked_vec
from repro.anonymizer.stats import MaintenanceStats
from repro.geometry import Point, Rect

__all__ = ["CutCell", "CutMaintainer", "choose_split", "merge_is_blocked"]

_ROOT = CellId(0, 0, 0)


def choose_split(
    grid: CellGrid,
    leaf: CellId,
    count: int,
    users: set[object],
    point_of: Callable[[object], Point],
    profile_of: Callable[[object], PrivacyProfile],
) -> tuple[dict[CellId, set[object]], CellId] | None:
    """Section 4.2's split criterion as a pure decision function.

    Returns ``(child_users, satisfiable_child)`` when ``leaf`` must
    split — the user distribution over the four children plus the first
    child (in :meth:`CellId.children` order) containing a user whose
    profile that child satisfies — or ``None`` when the leaf stays.

    The result depends only on the *membership* of ``users``, never on
    its iteration order (the chosen child is the first in a fixed scan
    order with *any* satisfied user), so single-shard and sharded
    maintenance reach byte-identical cuts.
    """
    if not users:
        return None
    child_area = grid.cell_area(leaf.level + 1)
    # Cheap gate via the most relaxed user: if even the minimum
    # requirements in this cell rule out level i+1, skip the exact check.
    min_a = min(profile_of(u).a_min for u in users)
    min_k = min(profile_of(u).k for u in users)
    if child_area < min_a - 1e-15 or count < min_k:
        return None
    # Exact check: distribute users over the four children and test each
    # user against the child that would contain them.
    child_users: dict[CellId, set[object]] = {c: set() for c in leaf.children()}
    for uid in users:
        child_users[grid.cell_of(point_of(uid), leaf.level + 1)].add(uid)
    for child, members in child_users.items():
        for uid in members:
            if profile_of(uid).is_satisfied_by(len(members), child_area):
                return child_users, child
    return None


def merge_is_blocked(
    child_area: float,
    child_stats: Sequence[tuple[int, Iterable[object]]],
    profile_of: Callable[[object], PrivacyProfile],
) -> bool:
    """Section 4.2's merge blocker: a sibling-leaf group must stay split
    while any user in any child has a profile that child satisfies.
    """
    for count, users in child_stats:
        for uid in users:
            if profile_of(uid).is_satisfied_by(count, child_area):
                return True
    return False


@dataclass
class CutCell:
    """One maintained pyramid cell.

    ``count`` is the user population under the cell.  ``users`` is
    populated only while the cell is a leaf; internal cells keep just the
    counter (mirroring the paper's ``(cid, N)`` contents).
    """

    count: int = 0
    is_leaf: bool = True
    users: set[object] = field(default_factory=set)


class CutMaintainer:
    """Quadtree-cut maintenance over host-supplied storage hooks."""

    grid: CellGrid
    stats: MaintenanceStats
    # Gate table: parallel (x, y, k, A_min) arrays mirroring the user
    # records, powering the vectorized split/merge scans; ``None``
    # selects the scalar reference path.
    _table: UserTable | None

    # ------------------------------------------------------------------
    # Host hooks
    # ------------------------------------------------------------------
    def _entry(self, cell: CellId) -> CutCell | None:
        raise NotImplementedError

    def _entry_required(self, cell: CellId) -> CutCell:
        raise NotImplementedError

    def _set_entry(self, cell: CellId, entry: CutCell) -> None:
        raise NotImplementedError

    def _del_entry(self, cell: CellId) -> None:
        raise NotImplementedError

    def _bump_gen(self, cell: CellId) -> None:
        raise NotImplementedError

    def _commit(self, touched: Sequence[CellId]) -> None:
        raise NotImplementedError

    def _point_of(self, uid: object) -> Point:
        raise NotImplementedError

    def _profile_of(self, uid: object) -> PrivacyProfile:
        raise NotImplementedError

    def _set_leaf(self, uid: object, leaf: CellId) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Leaf location
    # ------------------------------------------------------------------
    def leaf_for_point(self, point: Point) -> CellId:
        """Descend the maintained cut to the leaf containing ``point``."""
        cell = _ROOT
        while not self._entry_required(cell).is_leaf:
            cell = self.grid.cell_of(point, cell.level + 1)
        return cell

    # ------------------------------------------------------------------
    # Counter maintenance
    # ------------------------------------------------------------------
    def _move_between_leaves(self, uid: object, old: CellId, new: CellId) -> int:
        """Transfer one user between leaves, updating branch counters;
        returns the number of counters touched."""
        self._entry_required(old).users.discard(uid)
        self._entry_required(new).users.add(uid)
        # Walk both branches up to the common ancestor (exclusive).
        old_path = self.grid.path_to_root(old)
        new_path = self.grid.path_to_root(new)
        common = {c for c in new_path}
        touched: list[CellId] = []
        cost = 0
        for cell in old_path:
            if cell in common:
                break
            self._entry_required(cell).count -= 1
            self._bump_gen(cell)
            touched.append(cell)
            cost += 1
        stop_at = None
        for cell in old_path:
            if cell in common:
                stop_at = cell
                break
        for cell in new_path:
            if cell == stop_at:
                break
            self._entry_required(cell).count += 1
            self._bump_gen(cell)
            touched.append(cell)
            cost += 1
        self._commit(touched)
        return cost

    def _add_to_leaf(self, uid: object, leaf: CellId) -> None:
        self._entry_required(leaf).users.add(uid)
        path = self.grid.path_to_root(leaf)
        for cell in path:
            self._entry_required(cell).count += 1
            self._bump_gen(cell)
        self._commit(path)
        self.stats.counter_updates += len(path)

    def _remove_from_leaf(self, uid: object, leaf: CellId) -> None:
        self._entry_required(leaf).users.discard(uid)
        path = self.grid.path_to_root(leaf)
        for cell in path:
            self._entry_required(cell).count -= 1
            self._bump_gen(cell)
        self._commit(path)
        self.stats.counter_updates += len(path)

    # ------------------------------------------------------------------
    # Splitting and merging
    # ------------------------------------------------------------------
    def _maybe_split(self, leaf: CellId) -> None:
        """Split ``leaf`` (recursively) while Section 4.2's criterion
        holds: some user inside could be satisfied one level deeper."""
        while True:
            entry = self._entry(leaf)
            if entry is None or not entry.is_leaf or leaf.level >= self.grid.height:
                return
            if self._table is not None:
                decision = choose_split_vec(
                    self.grid, leaf, entry.count, entry.users, self._table
                )
            else:
                decision = choose_split(
                    self.grid, leaf, entry.count, entry.users,
                    self._point_of, self._profile_of,
                )
            if decision is None:
                return
            child_users, satisfiable = decision
            self._split(leaf, child_users)
            # A fresh leaf may itself be splittable; continue there.
            leaf = satisfiable

    def _split(self, leaf: CellId, child_users: dict[CellId, set[object]]) -> None:
        entry = self._entry_required(leaf)
        entry.is_leaf = False
        entry.users = set()
        children: list[CellId] = []
        for child, members in child_users.items():
            self._set_entry(
                child, CutCell(count=len(members), is_leaf=True, users=members)
            )
            # The child's count was readable as 0 while unmaintained;
            # materialising it is a visible change for cached cloaks.
            self._bump_gen(child)
            children.append(child)
            for uid in members:
                self._set_leaf(uid, child)
        self._commit(children)
        self.stats.splits += 1
        # Restructuring cost: four new counters plus one hash-table
        # relocation per affected user.
        self.stats.counter_updates += 4 + sum(len(m) for m in child_users.values())

    def _maybe_merge(self, leaf: CellId) -> None:
        """Merge ``leaf``'s sibling group (recursively upward) while no
        user under the parent needs cells at the leaves' level."""
        while leaf.level > 0:
            parent = leaf.parent()
            children = parent.children()
            entries = [self._entry(c) for c in children]
            if any(e is None or not e.is_leaf for e in entries):
                return
            child_area = self.grid.cell_area(leaf.level)
            # A child level is still needed if any user in any child has
            # a profile that child satisfies.
            child_stats = [
                (entry.count, entry.users) for entry in entries if entry is not None
            ]
            if self._table is not None:
                blocked = merge_blocked_vec(self._table, child_area, child_stats)
            else:
                blocked = merge_is_blocked(child_area, child_stats, self._profile_of)
            if blocked:
                return
            merged_users: set[object] = set()
            for _, users in child_stats:
                merged_users |= users
            parent_entry = self._entry_required(parent)
            parent_entry.is_leaf = True
            parent_entry.users = merged_users
            for uid in merged_users:
                self._set_leaf(uid, parent)
            for child in children:
                self._del_entry(child)
                # Deleted cells read as count 0 from now on.
                self._bump_gen(child)
            self._commit(children)
            self.stats.merges += 1
            self.stats.counter_updates += 4 + len(merged_users)
            leaf = parent


def _single(
    bounds: Rect, height: int, cloak_cache_size: int, vectorized: bool | None
) -> CloakingPolicy:
    from repro.anonymizer.adaptive import AdaptiveAnonymizer

    return AdaptiveAnonymizer(bounds, height, cloak_cache_size, vectorized)


def _sharded(
    bounds: Rect,
    height: int,
    num_shards: int,
    cloak_cache_size: int,
    vectorized: bool | None,
) -> object:
    from repro.sharding.adaptive import ShardedAdaptiveAnonymizer

    return ShardedAdaptiveAnonymizer(
        bounds,
        height=height,
        num_shards=num_shards,
        cloak_cache_size=cloak_cache_size,
        vectorized=vectorized,
    )


register_policy(
    PolicySpec(
        name="adaptive",
        single=_single,
        sharded=_sharded,
        replication="broadcast",
        description="Incomplete pyramid with cell splitting/merging (Section 4.2)",
    )
)
