"""The cloaking-policy protocol and registry.

A *cloaking policy* is one algorithm for blurring user locations — the
paper's basic and adaptive pyramid cloakers, or a related-work baseline.
Every policy registers a :class:`PolicySpec` here, and every deployment
seam resolves policies by name through :func:`get_policy`:

* ``Casper(policy="adaptive")`` — the trusted-server facade;
* ``make_sharded(kind=...)`` — in-process sharded fleets;
* the parallel runtime's worker spawn configs
  (``sharding/workers.py``), which rebuild replicas by policy name on
  the far side of a process boundary;
* the simulate/chaos/bench CLIs, whose ``--anonymizer`` choices are
  :func:`available_policies`.

A new cloaker is therefore one module: implement the
:class:`CloakingPolicy` surface (typically by composing
:class:`repro.anonymizer.engine.PyramidEngine` with a maintenance mixin
from :mod:`repro.anonymizer.policies`), register a spec, and every
harness — sharding, process parallelism, resilience, conformance tests
— picks it up by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Literal,
    Protocol,
    runtime_checkable,
)

if TYPE_CHECKING:
    from repro.anonymizer.cloak import CloakedRegion
    from repro.anonymizer.profile import PrivacyProfile
    from repro.anonymizer.stats import MaintenanceStats
    from repro.geometry import Point, Rect

__all__ = [
    "CloakingPolicy",
    "PolicySpec",
    "available_policies",
    "get_policy",
    "register_policy",
]


@runtime_checkable
class CloakingPolicy(Protocol):
    """What every deployment seam requires of a cloaking algorithm.

    This is the single-instance surface; sharded/parallel deployments
    wrap it (natively via :attr:`PolicySpec.sharded`, or generically via
    ``repro.sharding.replicated``) without the policy's involvement.
    """

    stats: MaintenanceStats

    @property
    def bounds(self) -> Rect: ...

    @property
    def num_users(self) -> int: ...

    def __contains__(self, uid: object) -> bool: ...

    def register(
        self, uid: object, point: Point, profile: PrivacyProfile
    ) -> None: ...

    def deregister(self, uid: object) -> None: ...

    def set_profile(self, uid: object, profile: PrivacyProfile) -> None: ...

    def update(self, uid: object, point: Point) -> int: ...

    def update_batch(self, moves: list[tuple[object, Point]]) -> list[int]: ...

    def cloak(self, uid: object) -> CloakedRegion: ...

    def cloak_location(
        self, point: Point, profile: PrivacyProfile
    ) -> CloakedRegion: ...

    def profile_of(self, uid: object) -> PrivacyProfile: ...

    def location_of(self, uid: object) -> Point: ...

    def users_in_rect(self, rect: Rect) -> int: ...

    def snapshot(self) -> object: ...

    def restore(self, state: object) -> None: ...

    def check_invariants(self) -> None: ...


# Factory signatures (positional): single builds one in-process
# instance from (bounds, height, cloak_cache_size, vectorized); sharded
# builds a native sharded fleet from (bounds, height, num_shards,
# cloak_cache_size, vectorized).  The sharded return type is ``Any``
# because fleets expose a superset surface the protocol doesn't name.
SingleFactory = Callable[["Rect", int, int, "bool | None"], CloakingPolicy]
ShardedFactory = Callable[["Rect", int, int, int, "bool | None"], Any]


@dataclass(frozen=True)
class PolicySpec:
    """Registry entry for one cloaking policy.

    ``replication`` tells the parallel runtime how worker replicas stay
    consistent: ``"partition"`` (each worker authoritative for its own
    shard's cells, confined mutations routed to one worker — the basic
    pyramid) or ``"broadcast"`` (every mutation reaches every worker,
    each holding the full structure — the adaptive pyramid, and any
    policy without a native sharded implementation).
    """

    name: str
    single: SingleFactory
    sharded: ShardedFactory | None = None
    replication: Literal["partition", "broadcast"] = "broadcast"
    description: str = ""


_REGISTRY: dict[str, PolicySpec] = {}
_builtins_loaded = False


def register_policy(spec: PolicySpec) -> PolicySpec:
    """Add a policy to the registry; names are unique."""
    if spec.name in _REGISTRY:
        raise ValueError(f"policy {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def _load_builtins() -> None:
    # The built-in policies register on import; deferred so importing
    # repro.anonymizer.policy alone never drags in numpy-heavy modules.
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        import repro.anonymizer.policies  # noqa: F401


def get_policy(name: str) -> PolicySpec:
    """Resolve a policy by name; raises ``ValueError`` for unknowns."""
    _load_builtins()
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown anonymizer kind {name!r} (registered policies: {known})"
        )
    return spec


def available_policies() -> tuple[str, ...]:
    """All registered policy names, sorted."""
    _load_builtins()
    return tuple(sorted(_REGISTRY))
