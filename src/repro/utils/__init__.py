"""Shared infrastructure: seeded RNG plumbing, timers, unit helpers."""

from repro.utils.rng import SeedLike, ensure_rng, spawn_rngs
from repro.utils.timer import Accumulator, Stopwatch
from repro.utils.units import (
    MBPS,
    format_count,
    format_seconds,
    transmission_seconds,
)

__all__ = [
    "SeedLike",
    "ensure_rng",
    "spawn_rngs",
    "Accumulator",
    "Stopwatch",
    "MBPS",
    "format_count",
    "format_seconds",
    "transmission_seconds",
]
