"""Seeded randomness helpers.

All stochastic components in the reproduction (workload generation, the
moving-object generator, profile sampling) accept either an integer seed
or a ready ``numpy.random.Generator``.  Routing everything through
:func:`ensure_rng` keeps experiments deterministic and lets tests inject
fixed generators.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs", "SeedLike"]

SeedLike = int | np.random.Generator | None


def ensure_rng(seed: SeedLike) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any accepted seed form.

    ``None`` yields an OS-seeded generator (non-deterministic); an int
    yields a deterministic PCG64 stream; an existing generator is passed
    through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from one seed.

    Experiments that run several stochastic components (e.g. a user
    population and a target workload) use separate child streams so that
    changing the size of one component does not perturb the other.
    """
    root = ensure_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(count)]
