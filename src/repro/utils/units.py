"""Unit helpers: data sizes, bandwidths and human-readable formatting.

The paper's end-to-end experiment (Figure 17) models candidate-list
transmission as ``records * 64 bytes`` sent over a ``100 Mbps`` channel.
These helpers keep that arithmetic explicit and testable.
"""

from __future__ import annotations

__all__ = [
    "MBPS",
    "transmission_seconds",
    "format_seconds",
    "format_count",
]

#: Bits per second in one megabit per second (decimal, as networks use).
MBPS = 1_000_000.0


def transmission_seconds(
    num_records: int,
    record_bytes: int = 64,
    bandwidth_mbps: float = 100.0,
) -> float:
    """Seconds to ship ``num_records`` fixed-size records over a channel.

    Defaults are the paper's Figure 17 model: 64-byte records on a
    100 Mbps link.
    """
    if num_records < 0:
        raise ValueError("num_records must be non-negative")
    if record_bytes <= 0 or bandwidth_mbps <= 0:
        raise ValueError("record_bytes and bandwidth_mbps must be positive")
    bits = num_records * record_bytes * 8
    return bits / (bandwidth_mbps * MBPS)


def format_seconds(seconds: float) -> str:
    """Render a duration with an adaptive unit (s / ms / us)."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def format_count(value: float) -> str:
    """Render a count compactly (12.3K style above 10^4)."""
    if value >= 10_000:
        return f"{value / 1000.0:.1f}K"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"
