"""Lightweight wall-clock instrumentation for the evaluation harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "Accumulator", "monotonic"]


def monotonic() -> float:
    """Monotonic seconds for *duration* measurement.

    The sanctioned clock of the whole codebase: latency instrumentation
    (spans, phase histograms) must source elapsed time through this
    function rather than reading ``time.time``/``datetime.now``, so the
    CSP002 determinism rule can keep wall-clock *data* out of figures
    while durations stay measurable.
    """
    return time.perf_counter()


class Stopwatch:
    """A context manager measuring elapsed ``perf_counter`` seconds.

    Usage::

        with Stopwatch() as sw:
            work()
        print(sw.elapsed)
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class Accumulator:
    """Streaming mean/min/max/total over a sequence of observations.

    The experiment runners record one observation per query or per update
    and report means, exactly as the paper's per-request averages.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def add(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values) -> None:
        """Record many observations."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Accumulator") -> None:
        """Fold another accumulator's observations into this one."""
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
