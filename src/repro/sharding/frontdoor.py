"""Asyncio socket front door for the shard wire protocol.

The process pool speaks frames over multiprocessing pipes; this module
serves the *same* frames over a TCP socket, making the transport
pluggable: a remote client (or another anonymizer runtime) can drive a
local anonymizer with exactly the byte format, CRC discipline and
stop-and-wait semantics the workers use — one
:class:`~repro.sharding.wire.FrameDecoder` per connection reassembles
frames out of arbitrary TCP segmentation, and a repeated sequence
number replays the cached reply instead of re-applying the batch.

All connections share one backing anonymizer.  The event loop
serializes request handling (operations apply between awaits, never
concurrently), so the single-threaded anonymizers need no locking.
A stream that desynchronizes — bad magic, corrupt CRC — is answered
with one ``NACK`` frame and the connection is closed: ordered stream
transports recover by reconnecting, not by hunting for a resync point.
"""

from __future__ import annotations

import asyncio

from repro.messages import ShardEnvelope
from repro.sharding.wire import (
    KIND_NACK,
    KIND_REQUEST,
    KIND_RESPONSE,
    FrameDecoder,
    WireError,
    decode_op,
    encode_frame,
    response_ack,
)
from repro.sharding.workers import ShardWorker, _WorkerConfig

__all__ = ["ShardFrontDoor"]


class ShardFrontDoor:
    """Serve an anonymizer's shard operations on a TCP socket.

    Parameters
    ----------
    anonymizer:
        Any sharded (or parallel) anonymizer exposing the standard
        interface; it is shared by every connection.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`address` after :meth:`start`).
    """

    def __init__(
        self, anonymizer, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._anonymizer = anonymizer
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("front door is not serving")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "ShardFrontDoor":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    def _executor(self) -> ShardWorker:
        """A per-connection executor sharing the backing anonymizer.

        Reuses :class:`ShardWorker`'s operation dispatch; the config is
        only consulted by ``reset``/``bootstrap`` (which rebuild the
        shared replica in place with the same shape).
        """
        anonymizer = self._anonymizer
        config = _WorkerConfig(
            kind=anonymizer.kind,
            bounds=anonymizer.bounds,
            height=anonymizer.height,
            num_shards=anonymizer.num_shards,
            cloak_cache_size=8192,
        )
        return ShardWorker(config, shard=0, conn=None, replica=anonymizer)

    async def _dispatch(self, executor: ShardWorker, payload: bytes) -> bytes:
        """Apply one operation without stalling the shared event loop.

        The chaos-injection ``hang`` op sleeps for ``op[1]`` seconds;
        routed through ``ShardWorker._apply`` that would be a
        ``time.sleep`` on the loop, freezing *every* connection, so it
        is intercepted and awaited here.  Every other op is CPU-bound
        dispatch into the in-process replica.
        """
        try:
            op = decode_op(payload)
        except WireError:
            op = ()
        if op and op[0] == "hang":
            await asyncio.sleep(op[1])
            return response_ack()
        return executor._apply(payload)[0]  # casperlint: ignore[CSP010] hang intercepted above; remaining ops are CPU-bound replica dispatch

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder()
        executor = self._executor()
        last_seq: int | None = None
        last_reply: bytes = b""
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                try:
                    frames = decoder.feed(data)
                except WireError:
                    writer.write(encode_frame(KIND_NACK, 0, []))
                    await writer.drain()
                    return
                for frame in frames:
                    if frame.kind != KIND_REQUEST:
                        continue
                    if last_seq is not None:
                        if frame.seq == last_seq:
                            writer.write(last_reply)
                            continue
                        if frame.seq < last_seq:
                            continue
                    replies = [
                        ShardEnvelope(
                            envelope.shard,
                            await self._dispatch(executor, envelope.payload),
                        )
                        for envelope in frame.envelopes
                    ]
                    last_seq = frame.seq
                    last_reply = encode_frame(KIND_RESPONSE, frame.seq, replies)
                    writer.write(last_reply)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
