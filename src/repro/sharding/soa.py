"""Array-backed counter storage for sharded pyramid cores.

The shard router hands every core a *contiguous* Morton rank range of
level-``S`` blocks, so the core's slice of each level ``>= S`` is one
contiguous run of Morton indexes — a flat numpy array plus an offset,
not a hash table.  :class:`MortonSlice` holds those per-level arrays
while speaking the ``dict[CellId, int]`` protocol the scalar sharded
runtime (and its snapshots, invariant checks, and the parallel worker
replica audits) already use: lookups, iteration, equality against plain
dicts, and ``dict(slice)`` copies all behave exactly like the
zero-counts-not-stored dict they replace.  The payoff is the batched
update kernel in :class:`~repro.sharding.basic.ShardedBasicAnonymizer`:
confined per-tick moves become ``np.add.at`` scatters on these arrays.

Snapshots deliberately stay plain dicts (the canonical wire/pickle
format), so scalar and vectorized fleets — local or across the worker
process boundary — exchange state freely; :meth:`MortonSlice.load`
rebuilds the arrays from that format on restore.
"""

from __future__ import annotations

from typing import Iterator, Mapping, MutableMapping

import numpy as np

from repro.anonymizer.cells import CellId
from repro.anonymizer.soa import IntArray, cell_of_morton, morton_of_xy

__all__ = ["MortonSlice", "scatter_confined_moves"]


def scatter_confined_moves(
    counts: "MortonSlice",
    gens: "MortonSlice",
    old_group: IntArray,
    new_group: IntArray,
    ca_group: IntArray,
    height: int,
) -> IntArray:
    """Apply a group of confined moves to one core's Morton slices.

    ``old_group``/``new_group`` are lowest-level Morton codes and
    ``ca_group`` the per-move common-ancestor levels (all ``>= S``, so
    every touched cell lands on these slices).  Per level below the
    shallowest shared ancestor, the moves still in flight scatter a
    ``-1``/``+1`` counter pair and two generation bumps — the exact
    per-cell writes of the scalar walk, batched.  Returns the per-move
    counter-update costs ``2 * (height - ca)``.
    """
    deepest_shared = int(ca_group.min())
    for level in range(height, deepest_shared, -1):
        mask = ca_group < level
        shift = 2 * (height - level)
        offset = counts.level_offset(level)
        old_idx = (old_group[mask] >> shift) - offset
        new_idx = (new_group[mask] >> shift) - offset
        count_arr = counts.level_array(level)
        gen_arr = gens.level_array(level)
        np.subtract.at(count_arr, old_idx, 1)
        np.add.at(count_arr, new_idx, 1)
        np.add.at(gen_arr, old_idx, 1)
        np.add.at(gen_arr, new_idx, 1)
    return 2 * (height - ca_group)


class MortonSlice(MutableMapping[CellId, int]):
    """One shard's pyramid counters as per-level contiguous arrays.

    ``lo`` / ``hi`` bound the core's block rank range at the spine
    level; level ``S + d`` covers Morton indexes
    ``[lo << 2d, hi << 2d)``.  Cells outside the owned range, above the
    spine level, or holding a zero count read as absent — matching the
    sparse-dict convention everywhere in the sharded runtime.
    """

    def __init__(
        self, height: int, spine_level: int, lo: int, hi: int
    ) -> None:
        self.height = height
        self.spine_level = spine_level
        self.lo = lo
        self.hi = hi
        self._levels: list[IntArray] = []
        self._offsets: list[int] = []
        for level in range(spine_level, height + 1):
            scale = 2 * (level - spine_level)
            self._levels.append(
                np.zeros((hi - lo) << scale, dtype=np.int64)
            )
            self._offsets.append(lo << scale)

    # -- array access for the batched kernels ---------------------------
    def level_array(self, level: int) -> IntArray:
        """The flat counter array for ``level`` (Morton index minus
        :meth:`level_offset`)."""
        return self._levels[level - self.spine_level]

    def level_offset(self, level: int) -> int:
        return self._offsets[level - self.spine_level]

    def nbytes(self) -> int:
        return sum(arr.nbytes for arr in self._levels)

    # -- dict protocol --------------------------------------------------
    def _index(self, cell: CellId) -> tuple[int, int] | None:
        level_index = cell.level - self.spine_level
        if level_index < 0 or cell.level > self.height:
            return None
        index = morton_of_xy(cell.ix, cell.iy) - self._offsets[level_index]
        if not 0 <= index < len(self._levels[level_index]):
            return None
        return level_index, index

    def __getitem__(self, cell: CellId) -> int:
        loc = self._index(cell)
        if loc is None:
            raise KeyError(cell)
        value = int(self._levels[loc[0]][loc[1]])
        if not value:
            raise KeyError(cell)
        return value

    def __setitem__(self, cell: CellId, value: int) -> None:
        loc = self._index(cell)
        if loc is None:
            raise KeyError(f"cell {cell} outside this shard's slice")
        self._levels[loc[0]][loc[1]] = value

    def __delitem__(self, cell: CellId) -> None:
        loc = self._index(cell)
        if loc is None or not self._levels[loc[0]][loc[1]]:
            raise KeyError(cell)
        self._levels[loc[0]][loc[1]] = 0

    def __contains__(self, cell: object) -> bool:
        if not isinstance(cell, CellId):
            return False
        loc = self._index(cell)
        return loc is not None and bool(self._levels[loc[0]][loc[1]])

    def __iter__(self) -> Iterator[CellId]:
        for level_index, arr in enumerate(self._levels):
            level = self.spine_level + level_index
            offset = self._offsets[level_index]
            for m in np.flatnonzero(arr):
                yield cell_of_morton(level, int(m) + offset)

    def __len__(self) -> int:
        return sum(int(np.count_nonzero(arr)) for arr in self._levels)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MortonSlice):
            return (
                self.height == other.height
                and self.spine_level == other.spine_level
                and self.lo == other.lo
                and self.hi == other.hi
                and all(
                    np.array_equal(a, b)
                    for a, b in zip(self._levels, other._levels)
                )
            )
        if isinstance(other, Mapping):
            if len(self) != len(other):
                return False
            return all(
                self.get(cell, 0) == count for cell, count in other.items()
            )
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # MutableMapping derives __hash__ = None (mutable); keep it that way.
    __hash__ = None  # type: ignore[assignment]

    def get(self, cell: CellId, default: int = 0) -> int:  # type: ignore[override]
        loc = self._index(cell)
        if loc is None:
            return default
        value = int(self._levels[loc[0]][loc[1]])
        return value if value else default

    def load(self, mapping: Mapping[CellId, int]) -> None:
        """Replace the whole slice from a plain-dict snapshot (the
        canonical format both backends exchange)."""
        for arr in self._levels:
            arr[:] = 0
        for cell, count in mapping.items():
            self[cell] = count

    def pop(self, cell: CellId, default: object = None) -> object:  # type: ignore[override]
        loc = self._index(cell)
        if loc is None or not self._levels[loc[0]][loc[1]]:
            return default
        value = int(self._levels[loc[0]][loc[1]])
        self._levels[loc[0]][loc[1]] = 0
        return value
