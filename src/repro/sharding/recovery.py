"""Crash-recovery state for sharded fleets: snapshot formats and the
restore/reconciliation logic, for both pyramid variants.

Snapshots are plain dataclasses over canonical dict state (the
wire/pickle format both storage backends exchange); all functions here
operate on a :class:`~repro.sharding.fleet.ShardedFleet` host, so the
variant modules expose them as one-line methods.  Whole-fleet snapshots
are atomic (taken in one call, so no cross-shard move can straddle
them); per-shard restores reconcile the crashed core against the
surviving fleet — the directory and (for adaptive) the spine structure
are authoritative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.anonymizer.adaptive import _UserRecord as _AdaptiveRecord
from repro.anonymizer.basic import _UserRecord as _BasicRecord
from repro.anonymizer.cells import CellId
from repro.anonymizer.policies.adaptive import CutCell
from repro.sharding.core import AdaptiveShardCore, BasicShardCore
from repro.sharding.soa import MortonSlice

if TYPE_CHECKING:
    from repro.sharding.adaptive import ShardedAdaptiveAnonymizer
    from repro.sharding.basic import ShardedBasicAnonymizer

__all__ = [
    "AdaptiveCoreSnapshot",
    "AdaptiveFleetSnapshot",
    "BasicCoreSnapshot",
    "BasicFleetSnapshot",
]


# ----------------------------------------------------------------------
# Basic (complete pyramid)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BasicCoreSnapshot:
    """Deep copy of one shard core's population state."""

    counts: dict[CellId, int]
    users: dict[object, _BasicRecord]


@dataclass(frozen=True)
class BasicFleetSnapshot:
    """Atomic deep copy of the whole fleet (all cores + spine +
    directory), taken in one call so no cross-shard move can straddle
    it."""

    cores: tuple[BasicCoreSnapshot, ...]
    spine_counts: dict[CellId, int]
    directory: dict[object, int]


def copy_basic_core(core: BasicShardCore) -> BasicCoreSnapshot:
    return BasicCoreSnapshot(
        counts=dict(core.counts),
        users={
            uid: _BasicRecord(rec.profile, rec.point, rec.cell)
            for uid, rec in core.users.items()
        },
    )


def _load_core_counts(
    core: BasicShardCore, counts: Mapping[CellId, int]
) -> None:
    """Install a plain-dict counter snapshot into ``core``, rebuilding
    the Morton-slice arrays in place on the vectorized backend
    (snapshots are backend-independent dicts)."""
    if isinstance(core.counts, MortonSlice):
        core.counts.load(counts)
    else:
        core.counts = dict(counts)


def basic_snapshot(fleet: "ShardedBasicAnonymizer") -> BasicFleetSnapshot:
    return BasicFleetSnapshot(
        cores=tuple(copy_basic_core(core) for core in fleet._cores),
        spine_counts=dict(fleet._spine.counts),
        directory=dict(fleet._directory),
    )


def basic_restore(fleet: "ShardedBasicAnonymizer", state: object) -> None:
    if not isinstance(state, BasicFleetSnapshot):
        raise TypeError("not a ShardedBasicAnonymizer snapshot")
    if len(state.cores) != fleet.num_shards:
        raise ValueError("snapshot shard count mismatch")
    for core, snap in zip(fleet._cores, state.cores):
        _load_core_counts(core, snap.counts)
        core.users = {
            uid: _BasicRecord(rec.profile, rec.point, rec.cell)
            for uid, rec in snap.users.items()
        }
        core.epoch += 1
        core.cache.clear()
    fleet._spine.counts = dict(state.spine_counts)
    fleet._spine.boundary_epoch += 1
    fleet._spine.cache.clear()
    fleet._directory = dict(state.directory)


def basic_restore_shard(
    fleet: "ShardedBasicAnonymizer", shard: int, state: object
) -> list[object]:
    """Restore one crashed core from a core snapshot, reconciling it
    with the surviving fleet.

    Users the directory says have since moved *away* are dropped from
    the restored copy (the destination shard's live record wins);
    directory entries pointing here with no restored record are purged
    and returned — those users lost state and heal through the normal
    re-registration path.  Counters are rebuilt from the surviving
    records and the spine is recomputed from all cores' block
    contributions, so fleet-wide invariants hold immediately after the
    restore.
    """
    if not isinstance(state, BasicCoreSnapshot):
        raise TypeError("not a ShardedBasicAnonymizer shard snapshot")
    core = fleet._cores[shard]
    users = {
        uid: _BasicRecord(rec.profile, rec.point, rec.cell)
        for uid, rec in state.users.items()
        if fleet._directory.get(uid) == shard
    }
    purged = [
        uid
        for uid, home in fleet._directory.items()
        if home == shard and uid not in users
    ]
    for uid in purged:
        del fleet._directory[uid]
    # Rebuild this core's counters from the surviving records.
    spine_level = fleet.router.spine_level
    counts: dict[CellId, int] = {}
    for rec in users.values():
        cell = rec.cell
        while cell.level >= spine_level:
            counts[cell] = counts.get(cell, 0) + 1
            if cell.level == 0:
                break
            cell = cell.parent()
    for cell in set(core.counts) | set(counts):
        if core.counts.get(cell, 0) != counts.get(cell, 0):
            core.gens[cell] = core.gens.get(cell, 0) + 1
    _load_core_counts(core, counts)
    core.users = users
    core.epoch += 1
    core.cache.clear()
    rebuild_spine_counts(fleet)
    fleet._spine.boundary_epoch += 1
    fleet._notify_op(shard, "restore")
    return purged


def rebuild_spine_counts(fleet: "ShardedBasicAnonymizer") -> None:
    """Recompute spine counts from every core's block populations,
    bumping generations only where the count actually changed."""
    new_counts: dict[CellId, int] = {}
    for core in fleet._cores:
        for block in fleet.router.blocks_of(core.index):
            population = core.counts.get(block, 0)
            if not population:
                continue
            cell = block
            while cell.level > 0:
                cell = cell.parent()
                new_counts[cell] = new_counts.get(cell, 0) + population
    for cell in set(fleet._spine.counts) | set(new_counts):
        if fleet._spine.counts.get(cell, 0) != new_counts.get(cell, 0):
            fleet._spine.bump_gen(cell)
    fleet._spine.counts = new_counts


# ----------------------------------------------------------------------
# Adaptive (incomplete pyramid)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdaptiveCoreSnapshot:
    """Deep copy of one adaptive core's population state."""

    cells: dict[CellId, CutCell]
    users: dict[object, _AdaptiveRecord]


@dataclass(frozen=True)
class AdaptiveFleetSnapshot:
    """Atomic deep copy of the whole adaptive fleet."""

    cores: tuple[AdaptiveCoreSnapshot, ...]
    spine_cells: dict[CellId, CutCell]
    directory: dict[object, int]


def copy_cut_cells(cells: dict[CellId, CutCell]) -> dict[CellId, CutCell]:
    return {
        cid: CutCell(cell.count, cell.is_leaf, set(cell.users))
        for cid, cell in cells.items()
    }


def _copy_users(
    users: dict[object, _AdaptiveRecord],
) -> dict[object, _AdaptiveRecord]:
    return {
        uid: _AdaptiveRecord(rec.profile, rec.point, rec.leaf)
        for uid, rec in users.items()
    }


def copy_adaptive_core(core: AdaptiveShardCore) -> AdaptiveCoreSnapshot:
    return AdaptiveCoreSnapshot(
        copy_cut_cells(core.cells), _copy_users(core.users)
    )


def adaptive_snapshot(fleet: "ShardedAdaptiveAnonymizer") -> AdaptiveFleetSnapshot:
    return AdaptiveFleetSnapshot(
        cores=tuple(copy_adaptive_core(core) for core in fleet._cores),
        spine_cells=copy_cut_cells(fleet._spine.cells),
        directory=dict(fleet._directory),
    )


def adaptive_restore(fleet: "ShardedAdaptiveAnonymizer", state: object) -> None:
    if not isinstance(state, AdaptiveFleetSnapshot):
        raise TypeError("not a ShardedAdaptiveAnonymizer snapshot")
    if len(state.cores) != fleet.num_shards:
        raise ValueError("snapshot shard count mismatch")
    for core, snap in zip(fleet._cores, state.cores):
        core.cells = copy_cut_cells(snap.cells)
        core.users = _copy_users(snap.users)
        core.epoch += 1
        core.cache.clear()
    fleet._spine.cells = copy_cut_cells(state.spine_cells)
    fleet._spine.boundary_epoch += 1
    fleet._spine.cache.clear()
    fleet._directory = dict(state.directory)
    rebuild_gate_table(fleet)


def adaptive_restore_shard(
    fleet: "ShardedAdaptiveAnonymizer", shard: int, state: object
) -> list[object]:
    """Restore one crashed adaptive core, reconciling it with the
    surviving fleet.

    The spine's structure is authoritative: the restored shard's part of
    the cut is *rebuilt* from its surviving user records — one leaf per
    still-maintained block, re-deepened through the standard split rule
    — rather than trusting a snapshot cut that may contradict
    post-snapshot spine splits/merges.  Users whose directory entry
    moved away keep their live record elsewhere; directory entries
    pointing here with no restored record are purged and returned (they
    heal via re-registration).
    """
    if not isinstance(state, AdaptiveCoreSnapshot):
        raise TypeError("not a ShardedAdaptiveAnonymizer shard snapshot")
    core = fleet._cores[shard]
    spine_level = fleet.router.spine_level
    users = {
        uid: _AdaptiveRecord(rec.profile, rec.point, rec.leaf)
        for uid, rec in state.users.items()
        if fleet._directory.get(uid) == shard
    }
    purged = [
        uid
        for uid, home in fleet._directory.items()
        if home == shard and uid not in users
    ]
    for uid in purged:
        del fleet._directory[uid]
    # Strip this shard's (and the purged) uids from every spine leaf;
    # survivors are re-attached below.
    for entry in fleet._spine.cells.values():
        if entry.is_leaf and entry.users:
            entry.users = {
                u
                for u in entry.users
                if u in fleet._directory and fleet._directory[u] != shard
            }
    old_cells = core.cells
    core.cells = {}
    core.users = users
    # Gate table resyncs to the post-reconciliation fleet before the
    # split/merge passes below consult it.
    rebuild_gate_table(fleet)
    # Rebuild one leaf per block the spine still maintains.
    maintained: list[CellId] = []
    for block in fleet.router.blocks_of(shard):
        if spine_level == 0:
            is_maintained = True  # the root block always exists
        else:
            parent_entry = fleet._spine.cells.get(block.parent())
            is_maintained = (
                parent_entry is not None and not parent_entry.is_leaf
            )
        if is_maintained:
            members = {
                uid
                for uid, rec in users.items()
                if block.is_ancestor_of(fleet.grid.cell_of(rec.point))
            }
            core.cells[block] = CutCell(
                count=len(members), is_leaf=True, users=members
            )
            maintained.append(block)
    # Re-attach every survivor to its cut leaf (a rebuilt block, or a
    # spine leaf when the cut sits above the block level).
    for uid, rec in users.items():
        leaf = fleet.leaf_for_point(rec.point)
        rec.leaf = leaf
        if leaf.level < spine_level:
            fleet._spine.cells[leaf].users.add(uid)
    for cell in set(old_cells) | set(core.cells):
        core.gens[cell] = core.gens.get(cell, 0) + 1
    recompute_spine_counts(fleet)
    core.epoch += 1
    fleet._spine.boundary_epoch += 1
    core.cache.clear()
    fleet._spine.cache.clear()
    # Let the standard criteria re-deepen the rebuilt cut, and let
    # underpopulated sibling groups merge upward.
    for block in maintained:
        fleet._maybe_split(block)
    for cell in [c for c, e in fleet._spine.cells.items() if e.is_leaf]:
        fleet._maybe_split(cell)
    for block in maintained:
        fleet._maybe_merge(block)
    fleet._notify_op(shard, "restore")
    return purged


def rebuild_gate_table(fleet: "ShardedAdaptiveAnonymizer") -> None:
    """Resync the fleet-wide gate table from every core's live user
    records (no-op on the scalar backend)."""
    if fleet._table is None:
        return
    fleet._table.clear()
    for core in fleet._cores:
        for uid, rec in core.users.items():
            fleet._table.add(
                uid,
                rec.point.x,
                rec.point.y,
                rec.profile.k,
                rec.profile.a_min,
                0,
            )


def recompute_spine_counts(fleet: "ShardedAdaptiveAnonymizer") -> None:
    """Recompute every spine cell's count bottom-up (leaves from their
    user sets, split cells from their children), bumping generations
    only where the count changed."""
    for level in range(fleet.router.spine_level - 1, -1, -1):
        for cell, entry in fleet._spine.cells.items():
            if cell.level != level:
                continue
            if entry.is_leaf:
                count = len(entry.users)
            else:
                count = sum(fleet.cell_count(c) for c in cell.children())
            if count != entry.count:
                entry.count = count
                fleet._spine.bump_gen(cell)
