"""Shared facade for sharded anonymizer fleets.

:class:`ShardedFleet` is everything a partitioned anonymizer needs that
does *not* depend on which pyramid variant it maintains: the router, the
shard cores plus the shared spine, the uid -> home-shard directory, the
per-shard/spine cloak caches with their composite-epoch keying, cache
and occupancy introspection, and the shard-op telemetry hooks.  The
variant modules (:mod:`repro.sharding.basic`,
:mod:`repro.sharding.adaptive`) stay pure routing glue: they host the
shared maintenance mixins from :mod:`repro.anonymizer.policies` by
routing each touched cell to its owning core or the spine.

The one rule that makes the composite epochs sound lives here, in
:meth:`ShardedFleet._commit`: after any maintenance primitive touching
cell set ``T``, bump the core epoch of every shard owning a touched
cell at level ``>= S``, and the boundary epoch iff any touched cell
sits at level ``<= S``.  Every primitive of both variants reduces to
this rule, which is why the mixins can drive single pyramids and fleets
with the same walk.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.anonymizer.cache import CloakCache
from repro.anonymizer.cells import CellId
from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.engine import PyramidEngine
from repro.anonymizer.profile import PrivacyProfile
from repro.anonymizer.soa import UserTable
from repro.errors import UnknownUserError
from repro.geometry import Point, Rect
from repro.observability import runtime as _telemetry
from repro.sharding.core import SpineState, cache_counters
from repro.sharding.router import ShardRouter

__all__ = ["ShardedFleet"]


class ShardedFleet(PyramidEngine):
    """Routing/spine glue shared by every sharded anonymizer."""

    # Optional fleet-wide gate table (adaptive's vectorized backend);
    # ``None`` means users_in_rect scans the core records.
    _table: UserTable | None = None

    def _init_fleet(
        self,
        bounds: Rect,
        height: int,
        num_shards: int,
        cloak_cache_size: int,
        core_cls: Any,
    ) -> None:
        self._init_engine(bounds, height)
        self.router = ShardRouter(num_shards, height)
        self._spine = SpineState(
            cache=CloakCache(cloak_cache_size, shard_label="spine")
        )
        self._cores = [
            core_cls(index=i, cache=CloakCache(cloak_cache_size, shard_label=str(i)))
            for i in range(num_shards)
        ]
        self._directory: dict[object, int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    @property
    def num_users(self) -> int:
        return len(self._directory)

    def __contains__(self, uid: object) -> bool:
        return uid in self._directory

    def shard_of_user(self, uid: object) -> int:
        """The shard currently homing ``uid`` (the routing seam the
        server facade exposes)."""
        try:
            return self._directory[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    def shard_occupancy(self) -> list[int]:
        """Registered users homed per shard, indexed by shard id."""
        return [len(core.users) for core in self._cores]

    def cache_stats(self) -> dict[str, int]:
        """Aggregate cloak-cache traffic across all cores + spine."""
        caches = [core.cache for core in self._cores] + [self._spine.cache]
        return {
            "hits": sum(c.hits for c in caches),
            "misses": sum(c.misses for c in caches),
            "invalidations": sum(c.invalidations for c in caches),
            "evictions": sum(c.evictions for c in caches),
        }

    def cache_stats_per_shard(self) -> dict[str, dict[str, int]]:
        """Cloak-cache traffic per shard core (plus the spine cache),
        keyed ``"0"``..``"N-1"`` / ``"spine"`` — the unblended numbers
        the ``shard_scaling`` bench and the ``metrics`` CLI report."""
        stats = {
            str(core.index): cache_counters(core.cache)
            for core in self._cores
        }
        stats["spine"] = cache_counters(self._spine.cache)
        return stats

    def profile_of(self, uid: object) -> PrivacyProfile:
        return self._record(uid).profile

    def location_of(self, uid: object) -> Point:
        return self._record(uid).point

    def users_in_rect(self, rect: Rect) -> int:
        """Exact population of an arbitrary rectangle (verification
        aid; gate-table mask reduction, or a scan of every core)."""
        if self._table is not None:
            return self._table.count_in_rect(rect)
        return sum(
            1
            for core in self._cores
            for rec in core.users.values()
            if rect.contains_point(rec.point)
        )

    def _record(self, uid: object) -> Any:
        try:
            return self._cores[self._directory[uid]].users[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    # ------------------------------------------------------------------
    # Epochs, generations and telemetry
    # ------------------------------------------------------------------
    def _commit(self, touched: Sequence[CellId]) -> None:
        """Epoch effects of one completed maintenance primitive: bump
        each owning core's epoch for touched cells at level ``>= S``,
        and the boundary epoch iff any touched cell has level
        ``<= S`` (block roots included — every cell a cloak starting in
        another shard can read)."""
        spine_level = self.router.spine_level
        shards: set[int] = set()
        boundary = False
        for cell in touched:
            if cell.level >= spine_level:
                shards.add(self.router.shard_of(cell))
            if cell.level <= spine_level:
                boundary = True
        for shard in shards:
            self._cores[shard].epoch += 1
        if boundary:
            self._spine.boundary_epoch += 1

    def _gen_of(self, cell: CellId) -> int:
        if cell.level < self.router.spine_level:
            return self._spine.gens.get(cell, 0)
        return self._cores[self.router.shard_of(cell)].gens.get(cell, 0)

    def _notify_op(self, shard: int, op: str, *, occupancy: bool = True) -> None:
        """Record one shard operation (and, for population-changing
        ops, the resulting occupancy) when telemetry is active."""
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_shard_op(obs, shard, op)
            if occupancy:
                _telemetry.record_shard_occupancy(obs, self.shard_occupancy())

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def _cloak_cell(
        self, profile: PrivacyProfile, cell: CellId, shard: int
    ) -> CloakedRegion:
        if cell.level < self.router.spine_level:
            # Cut sits above the block level: the climb reads boundary
            # state only, so the shared spine cache serves every shard.
            cache = self._spine.cache
            epoch: tuple[int, int] = (-1, self._spine.boundary_epoch)
        else:
            core = self._cores[shard]
            cache = core.cache
            epoch = (core.epoch, self._spine.boundary_epoch)
        return self._cloak_via(
            cache, self.cell_count, self._gen_of, epoch, profile, cell,
            shard=shard,
        )

    def _route_of(self, region: CloakedRegion) -> str:
        settled = min(c.level for c in region.cells)
        if settled > self.router.spine_level:
            return "local"
        if settled == self.router.spine_level:
            return "boundary"
        return "spine"
