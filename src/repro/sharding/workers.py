"""True parallel sharding: shard workers as separate OS processes.

This module runs each shard's pyramid subtree in its own worker
process, connected to the parent runtime over the framed wire protocol
of :mod:`repro.sharding.wire`.  Three pieces compose the subsystem:

* :class:`ShardWorker` — the loop a worker process runs: receive a
  frame, apply its batch of shard operations to a local replica,
  answer with a response frame (or a ``NACK`` when the request failed
  its CRC).  Stop-and-wait sequence numbers make redelivery safe: a
  repeated sequence replays the cached reply instead of re-applying
  the batch.
* :class:`WorkerPool` — the supervisor: spawns one process per shard
  over a duplex pipe, health-checks, kills, respawns and tears the
  fleet down deterministically (idempotent, exception-safe).
* :class:`ParallelShardedAnonymizer` — the parent-side runtime
  implementing the exact sharded-anonymizer interface, so
  ``Casper(shards=N, parallel=True)``, batch queries and the
  continuous monitor work unchanged on top of real processes.

Replication model (what makes the results *byte-identical* to the
in-process :class:`~repro.sharding.basic.ShardedBasicAnonymizer` /
:class:`~repro.sharding.adaptive.ShardedAdaptiveAnonymizer`):

* **basic** — every worker holds a full fleet replica but receives
  only the traffic that can affect what it serves: registrations,
  deregistrations, profile changes and boundary-crossing moves are
  broadcast (they touch spine/block-root state every shard can read),
  while a move confined to one shard's blocks goes to that worker
  alone.  A worker's *own* core — its counts, generations, epoch and
  cloak cache — then evolves exactly like the in-process core, because
  foreign confined moves never touch spine cells, block roots, or the
  worker's own blocks.  Foreign *interior* counts on a replica may go
  stale, which is why workers run a partial-replication invariant
  check (:func:`_check_basic_replica`) instead of the full one.
  The parent computes all maintenance statistics itself (basic costs
  are pure functions of the cell walk), so ``stats`` needs no wire
  round trip.
* **adaptive** — split/merge cascades read foreign points and
  profiles, so every mutation is broadcast and every replica stays
  complete.  Identical operation streams keep every replica's cut
  identical; cloaks route to the user's home shard, whose core cache
  evolves exactly like the in-process one.  Only the spine cache
  splits across workers (each sees just its own spine-leaf cloaks),
  so aggregate ``cache_stats()`` is the one number the parallel
  adaptive runtime does not reproduce byte-for-byte.  Update costs
  come back on the wire (cost accounting inside split/merge cascades
  cannot be recomputed parent-side), which is why adaptive updates
  flush synchronously.

Failure model: the parent's transmit seam feeds every frame — in both
directions — through an attached
:class:`~repro.resilience.faults.FaultInjector`, so chaos drops,
duplicates, delays, reorders and corrupts the *actual bytes* crossing
the pipes.  Dropped or corrupted frames retransmit (the worker replays
from its dedup cache); a worker that dies or hangs past
``hang_timeout`` is killed, respawned and healed — from the parent
mirror (basic) or from the lowest surviving replica's snapshot
(adaptive) — degrading availability for the duration, never privacy.

Pickle travels only inside ``install``/``snapshot``/``stats`` blobs
between a parent and the worker processes it spawned, and is parsed
only after the enclosing frame's CRC verified.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import pickle
import time
from dataclasses import dataclass
from multiprocessing.connection import Connection

from repro.anonymizer.cells import CellGrid, CellId
from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.policy import get_policy
from repro.anonymizer.profile import PrivacyProfile
from repro.anonymizer.stats import MaintenanceStats
from repro.errors import (
    DuplicateUserError,
    ProfileUnsatisfiableError,
    UnknownUserError,
)
from repro.geometry import Point, Rect
from repro.messages import ShardEnvelope
from repro.observability import runtime as _telemetry
from repro.sharding.invariants import check_basic_replica
from repro.sharding.router import ShardRouter
from repro.sharding.wire import (
    KIND_NACK,
    KIND_REQUEST,
    KIND_RESPONSE,
    Frame,
    WireError,
    decode_frame,
    decode_op,
    decode_response,
    encode_frame,
    op_cell_count,
    op_check,
    op_cloak,
    op_cloak_location,
    op_deregister,
    op_install,
    op_move,
    op_ping,
    op_register,
    op_set_profile,
    op_shutdown,
    op_snapshot,
    op_stats,
    response_ack,
    response_blob,
    response_cloak,
    response_cloak_unsatisfiable,
    response_cost,
    response_count,
    response_error,
)
from repro.utils.timer import monotonic

__all__ = [
    "ParallelShardedAnonymizer",
    "ShardWorker",
    "WorkerPool",
]

#: Most envelopes shipped per frame; longer batches split into several
#: stop-and-wait exchanges so one corrupt byte never costs more than
#: one frame's worth of retransmission.
MAX_BATCH = 512

#: Retransmissions/attempts before declaring a transport unusable.
_RETRY_LIMIT = 1000

#: Consecutive heal attempts per exchange before giving up.
_HEAL_LIMIT = 5

# Reply specs whose results the parent actually consumes; these are the
# (side-effect-free) operations re-issued to a healed worker when an
# exchange dies mid-flight.  Mutations are never re-issued: the heal
# rebuilds the worker to post-batch state from the parent mirror or a
# flushed survivor, so re-applying them would double-count.
_READ_SPECS = frozenset({"cloak", "count", "blob", "check", "ping"})

#: Sentinel for a cloak answered "profile unsatisfiable".
_UNSAT = object()


@dataclass(frozen=True)
class _WorkerConfig:
    """Everything a worker process needs to build its replica."""

    kind: str
    bounds: Rect
    height: int
    num_shards: int
    cloak_cache_size: int
    # Defaulted so configs pickled by older parents still unpickle.
    vectorized: bool | None = None


def _build_replica(config: _WorkerConfig, shard: int | None = None) -> object:
    """Build one worker's replica for ``config.kind`` via the policy
    registry: a native sharded fleet when the policy ships one, else a
    whole-policy :class:`~repro.sharding.replicated
    .ReplicatedShardedAnonymizer` tagged with the worker's shard."""
    spec = get_policy(config.kind)
    if spec.sharded is not None:
        return spec.sharded(
            config.bounds,
            config.height,
            config.num_shards,
            config.cloak_cache_size,
            config.vectorized,
        )
    from repro.sharding.replicated import ReplicatedShardedAnonymizer

    return ReplicatedShardedAnonymizer(
        spec,
        config.bounds,
        height=config.height,
        num_shards=config.num_shards,
        cloak_cache_size=config.cloak_cache_size,
        vectorized=config.vectorized,
        shard=shard,
    )


class ShardWorker:
    """The loop one shard's worker process runs.

    Applies each request frame's operations to a local replica and
    answers with one response envelope per operation.  Redelivery-safe:
    the last ``(sequence, reply)`` pair is cached, a repeated sequence
    replays the cached reply bytes, an *older* sequence (a delayed
    duplicate of a finished exchange) is dropped silently, and a frame
    that fails its CRC is answered with a ``NACK`` so the parent
    retransmits instead of timing out.
    """

    def __init__(
        self,
        config: _WorkerConfig,
        shard: int,
        conn: Connection | None,
        replica: object | None = None,
    ) -> None:
        self.config = config
        self.shard = shard
        self._conn = conn
        self._replication = get_policy(config.kind).replication
        # The socket front door injects an existing anonymizer as the
        # replica and drives :meth:`_apply` directly (no pipe).
        self._replica = (
            replica if replica is not None else _build_replica(config, shard)
        )
        self._last_seq: int | None = None
        self._last_reply: bytes = b""

    def run(self) -> None:
        """Serve frames until shutdown or a closed pipe."""
        while True:
            try:
                raw = self._conn.recv_bytes()
            except (EOFError, OSError):
                return
            try:
                frame = decode_frame(raw)
            except WireError:
                if not self._send(encode_frame(KIND_NACK, 0, [])):
                    return
                continue
            if frame.kind != KIND_REQUEST:
                continue
            if self._last_seq is not None:
                if frame.seq == self._last_seq:
                    if not self._send(self._last_reply):
                        return
                    continue
                if frame.seq < self._last_seq:
                    continue
            replies: list[ShardEnvelope] = []
            stop = False
            for envelope in frame.envelopes:
                payload, quit_now = self._apply(envelope.payload)
                replies.append(ShardEnvelope(self.shard, payload))
                stop = stop or quit_now
            self._last_seq = frame.seq
            self._last_reply = encode_frame(KIND_RESPONSE, frame.seq, replies)
            if not self._send(self._last_reply) or stop:
                return

    def _send(self, data: bytes) -> bool:
        try:
            self._conn.send_bytes(data)
        except (BrokenPipeError, OSError):
            return False
        return True

    def _apply(self, payload: bytes) -> tuple[bytes, bool]:
        """Apply one operation; returns ``(response payload, stop?)``."""
        try:
            op = decode_op(payload)
            name = op[0]
            if name == "move":
                return response_cost(self._replica.update(op[1], op[2])), False
            if name == "cloak":
                try:
                    region = self._replica.cloak(op[1])
                except ProfileUnsatisfiableError:
                    return response_cloak_unsatisfiable(), False
                return response_cloak(region), False
            if name == "register":
                self._replica.register(op[1], op[2], op[3])
                return response_ack(), False
            if name == "deregister":
                self._replica.deregister(op[1])
                return response_ack(), False
            if name == "set_profile":
                self._replica.set_profile(op[1], op[2])
                return response_ack(), False
            if name == "cloak_location":
                try:
                    region = self._replica.cloak_location(op[1], op[2])
                except ProfileUnsatisfiableError:
                    return response_cloak_unsatisfiable(), False
                return response_cloak(region), False
            if name == "cell_count":
                return response_count(self._replica.cell_count(op[1])), False
            if name == "stats":
                return response_blob(pickle.dumps(self._stats_payload())), False
            if name == "snapshot":
                blob = pickle.dumps(
                    (
                        self._replica.snapshot(),
                        dataclasses.asdict(self._replica.stats),
                    )
                )
                return response_blob(blob), False
            if name == "install":
                self._install(pickle.loads(op[1]))
                return response_ack(), False
            if name == "reset":
                self._replica = _build_replica(self.config, self.shard)
                return response_ack(), False
            if name == "check":
                if self._replication == "partition":
                    # Partition replication: foreign interior cells may
                    # be stale, so run the partial-replication check.
                    check_basic_replica(self._replica, self.shard)  # type: ignore[arg-type]
                else:
                    self._replica.check_invariants()
                return response_ack(), False
            if name == "ping":
                return response_ack(), False
            if name == "hang":
                time.sleep(op[1])
                return response_ack(), False
            if name == "shutdown":
                return response_ack(), True
            return response_error(f"unsupported operation {name!r}"), False
        except AssertionError as exc:
            return response_error(f"invariant violation: {exc}"), False
        except Exception as exc:  # casperlint: ignore[CSP006] propagated as an RE_ERROR reply the parent re-raises
            return response_error(f"{type(exc).__name__}: {exc}"), False

    def _install(self, package: object) -> None:
        """Replace replica state from an ``install`` blob.

        ``("bootstrap", [(uid, point, profile), ...])`` rebuilds a fresh
        replica by re-registering every user at their current location
        (the parent-mirror heal path); ``("install", (snapshot,
        stats?))`` restores a fleet snapshot taken on a sibling replica
        (the adaptive survivor heal / whole-fleet restore path).
        """
        tag, body = package
        if tag == "bootstrap":
            replica = _build_replica(self.config, self.shard)
            for uid, point, profile in body:
                replica.register(uid, point, profile)
            self._replica = replica
        elif tag == "install":
            snapshot, stats = body
            self._replica.restore(snapshot)
            if stats is not None:
                self._replica.stats = MaintenanceStats(**stats)
        else:
            raise ValueError(f"unknown install package tag {tag!r}")

    def _stats_payload(self) -> dict:
        per_shard = self._replica.cache_stats_per_shard()
        return {
            "stats": dataclasses.asdict(self._replica.stats),
            "own_cache": per_shard[str(self.shard)],
            "spine_cache": per_shard["spine"],
            "num_maintained_cells": getattr(
                self._replica, "num_maintained_cells", None
            ),
        }


def _worker_main(config: _WorkerConfig, shard: int, conn: Connection) -> None:
    """Process entry point: run one shard worker until shutdown."""
    ShardWorker(config, shard, conn).run()


def _mp_context():
    """Fork where available (cheap on POSIX); spawn otherwise."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


class WorkerPool:
    """Supervisor for one worker process per shard.

    Owns the processes and their pipes; knows nothing about sequence
    numbers or retransmission (that is the parent runtime's job).
    ``shutdown`` is idempotent and exception-safe — it always reaps
    every process it ever started, so no orphan survives an exception
    anywhere above it.
    """

    def __init__(self, config: _WorkerConfig) -> None:
        self.config = config
        self._ctx = _mp_context()
        self._procs: list[object | None] = [None] * config.num_shards
        self._conns: list[Connection | None] = [None] * config.num_shards

    @property
    def num_workers(self) -> int:
        return self.config.num_shards

    def spawn(self, shard: int) -> None:
        """Start (or replace) the worker process for one shard."""
        if self._procs[shard] is not None:
            self.kill(shard)
        parent_conn, child_conn = self._ctx.Pipe()
        try:
            proc = self._ctx.Process(
                target=_worker_main,
                args=(self.config, shard, child_conn),
                name=f"casper-shard-{shard}",
                daemon=True,
            )
            proc.start()
            self._procs[shard] = proc
            self._conns[shard] = parent_conn
        except BaseException:
            # a failed fork/start must not leak the pipe descriptors
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()

    def spawn_all(self) -> None:
        try:
            for shard in range(self.num_workers):
                self.spawn(shard)
        except BaseException:
            self.shutdown()
            raise

    def conn(self, shard: int) -> Connection:
        conn = self._conns[shard]
        if conn is None:
            raise RuntimeError(f"shard {shard} has no live worker")
        return conn

    def alive(self, shard: int) -> bool:
        proc = self._procs[shard]
        return proc is not None and proc.is_alive()  # type: ignore[union-attr]

    def kill(self, shard: int) -> None:
        """Hard-stop one worker and release its pipe (idempotent)."""
        proc = self._procs[shard]
        if proc is not None:
            try:
                proc.kill()  # type: ignore[union-attr]
                proc.join()  # type: ignore[union-attr]
            finally:
                try:
                    proc.close()  # type: ignore[union-attr]
                except ValueError:
                    pass
                self._procs[shard] = None
        conn = self._conns[shard]
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
            self._conns[shard] = None

    def shutdown(self) -> None:
        """Reap every worker; safe to call repeatedly, never raises."""
        for shard in range(self.num_workers):
            try:
                self.kill(shard)
            except Exception:  # casperlint: ignore[CSP006] teardown must reap every worker even if one kill fails
                self._procs[shard] = None
                self._conns[shard] = None


class _WorkerDied(Exception):
    """A worker stopped answering (dead pipe or hang timeout)."""

    def __init__(self, shard: int, reason: str) -> None:
        super().__init__(f"shard worker {shard}: {reason}")
        self.shard = shard
        self.reason = reason


class _MirrorRecord:
    """The parent's authoritative copy of one user's state."""

    __slots__ = ("profile", "point", "cell")

    def __init__(
        self, profile: PrivacyProfile, point: Point, cell: CellId
    ) -> None:
        self.profile = profile
        self.point = point
        self.cell = cell


@dataclass(frozen=True)
class _ParallelSnapshot:
    """Parent-side snapshot: the user mirror (always sufficient to
    rebuild a basic fleet) plus, for adaptive, a pickled fleet snapshot
    taken on worker 0 (the cut is history-dependent, so points alone
    cannot reproduce it)."""

    kind: str
    records: tuple[tuple[object, Point, PrivacyProfile], ...]
    blob: bytes | None = None


class ParallelShardedAnonymizer:
    """The sharded-anonymizer interface over real worker processes.

    Seeded operation streams produce byte-identical cloaks, costs and
    maintenance counters to the in-process sharded anonymizers (and
    hence to the single-pyramid implementations) — see the module
    docstring for the replication argument, and
    ``tests/test_parallel_equivalence.py`` for the oracle.
    """

    def __init__(
        self,
        bounds: Rect,
        height: int = 9,
        num_shards: int = 1,
        kind: str = "basic",
        cloak_cache_size: int = 8192,
        hang_timeout: float = 5.0,
        vectorized: bool | None = None,
    ) -> None:
        spec = get_policy(kind)
        self.kind = kind
        #: How worker replicas stay consistent — ``"partition"`` routes
        #: confined mutations to one worker and lets the parent compute
        #: maintenance stats; ``"broadcast"`` ships every mutation to
        #: every worker and reads stats/costs off the wire.
        self._replication = spec.replication
        self.grid = CellGrid(bounds, height)
        self.router = ShardRouter(num_shards, height)
        self._stats = MaintenanceStats()
        self._records: dict[object, _MirrorRecord] = {}
        self._directory: dict[object, int] = {}
        self._pending: list[list[tuple[bytes, str]]] = [
            [] for _ in range(num_shards)
        ]
        self._seq = 0
        self._injector = None
        self._hang_timeout = hang_timeout
        self._closed = False
        self.worker_crashes = 0
        self.worker_heals = 0
        self._pool = WorkerPool(
            _WorkerConfig(
                kind, bounds, height, num_shards, cloak_cache_size, vectorized
            )
        )
        #: Workers whose replicas are known complete.  A respawned
        #: worker is not authoritative until its install lands, so a
        #: heal nested inside another heal never snapshots a virgin
        #: (empty) replica and propagates the emptiness fleet-wide.
        self._authoritative = [True] * num_shards
        self._pool.spawn_all()
        obs = _telemetry.active()
        if obs is not None:
            for shard in range(num_shards):
                _telemetry.record_worker_event(obs, shard, "spawn")

    # ------------------------------------------------------------------
    # Introspection (all answered from the parent mirror — no IPC)
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> Rect:
        return self.grid.bounds

    @property
    def height(self) -> int:
        return self.grid.height

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    @property
    def num_users(self) -> int:
        return len(self._directory)

    def __contains__(self, uid: object) -> bool:
        return uid in self._directory

    def __enter__(self) -> "ParallelShardedAnonymizer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def stats(self) -> MaintenanceStats:
        """Maintenance counters — parent-computed for basic (costs are
        pure functions of the cell walk), fetched from worker 0 for
        adaptive (split/merge costs happen inside the workers), with
        ``cloak_requests`` always counted at the routing seam."""
        if self._replication == "partition":
            return self._stats
        payload = self._fetch_stats()[0]["stats"]
        payload["cloak_requests"] = self._stats.cloak_requests
        return MaintenanceStats(**payload)

    def shard_of_user(self, uid: object) -> int:
        try:
            return self._directory[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    def shard_occupancy(self) -> list[int]:
        occupancy = [0] * self.num_shards
        for home in self._directory.values():
            occupancy[home] += 1
        return occupancy

    def profile_of(self, uid: object) -> PrivacyProfile:
        return self._require(uid).profile

    def location_of(self, uid: object) -> Point:
        return self._require(uid).point

    def users_in_rect(self, rect: Rect) -> int:
        return sum(
            1
            for rec in self._records.values()
            if rect.contains_point(rec.point)
        )

    @property
    def num_maintained_cells(self) -> int:
        if self.kind != "adaptive":
            raise AttributeError("num_maintained_cells")
        return self._fetch_stats()[0]["num_maintained_cells"]

    def cache_stats(self) -> dict[str, int]:
        """Aggregate cloak-cache traffic across the worker fleet.

        Basic: byte-identical to the in-process fleet (each worker's
        own core sees exactly the in-process traffic; spine caches are
        untouched).  Adaptive: core caches are exact but the spine
        cache's working set is split across workers, so spine-leaf
        hit/miss splits may differ from the in-process single spine
        cache.
        """
        payloads = self._fetch_stats()
        keys = ("hits", "misses", "invalidations", "evictions")
        totals = dict.fromkeys(keys, 0)
        for payload in payloads:
            for key in keys:
                totals[key] += payload["own_cache"][key]
                if self._replication == "broadcast":
                    totals[key] += payload["spine_cache"][key]
        return totals

    def cache_stats_per_shard(self) -> dict[str, dict[str, int]]:
        """Per-worker cloak-cache traffic, keyed like the in-process
        fleets: ``"0"``..``"N-1"`` for each worker's own core plus the
        summed ``"spine"`` traffic."""
        payloads = self._fetch_stats()
        keys = ("hits", "misses", "invalidations", "evictions")
        stats: dict[str, dict[str, int]] = {
            str(shard): dict(payload["own_cache"])
            for shard, payload in enumerate(payloads)
        }
        spine = dict.fromkeys(keys, 0)
        for payload in payloads:
            for key in keys:
                spine[key] += payload["spine_cache"][key]
        stats["spine"] = spine
        return stats

    def _require(self, uid: object) -> _MirrorRecord:
        try:
            return self._records[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    # ------------------------------------------------------------------
    # Registration and location updates
    # ------------------------------------------------------------------
    def register(
        self, uid: object, point: Point, profile: PrivacyProfile
    ) -> None:
        if uid in self._directory:
            raise DuplicateUserError(uid)
        cell = self.grid.cell_of(point)
        shard = self.router.shard_of(cell)
        self._records[uid] = _MirrorRecord(profile, point, cell)
        self._directory[uid] = shard
        if self._replication == "partition":
            self._stats.registrations += 1
            self._stats.counter_updates += cell.level + 1
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_shard_op(obs, shard, "register")
            _telemetry.record_shard_occupancy(obs, self.shard_occupancy())
        self._broadcast(op_register(uid, point, profile), "ack")

    def deregister(self, uid: object) -> None:
        record = self._require(uid)
        shard = self._directory[uid]
        if self._replication == "partition":
            self._stats.deregistrations += 1
            self._stats.counter_updates += record.cell.level + 1
        del self._records[uid]
        del self._directory[uid]
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_shard_op(obs, shard, "deregister")
            _telemetry.record_shard_occupancy(obs, self.shard_occupancy())
        self._broadcast(op_deregister(uid), "ack")

    def set_profile(self, uid: object, profile: PrivacyProfile) -> None:
        self._require(uid).profile = profile
        self._broadcast(op_set_profile(uid, profile), "ack")

    def update(self, uid: object, point: Point) -> int:
        """Process a location update; returns its counter-update cost
        (identical to the in-process cost)."""
        if self._replication == "broadcast":
            return self._update_broadcast(uid, point)
        record = self._require(uid)
        shard = self._directory[uid]
        new_cell = self.grid.cell_of(point)
        record.point = point
        self._stats.location_updates += 1
        if new_cell == record.cell:
            # Same lowest-level cell: zero cost, but the owner still
            # needs the fresh coordinates for its record.
            self._enqueue(shard, op_move(uid, point), "cost")
            return 0
        ancestor_level = self.grid.common_ancestor_level(record.cell, new_cell)
        cost = 2 * (record.cell.level - ancestor_level)
        record.cell = new_cell
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_shard_op(obs, shard, "update")
        if self.router.crosses_boundary(ancestor_level):
            # Spine/block-root state changed: every replica must see it.
            self._broadcast(op_move(uid, point), "cost")
            new_shard = self.router.shard_of(new_cell)
            if new_shard != shard:
                self._directory[uid] = new_shard
                if obs is not None:
                    _telemetry.record_shard_op(obs, new_shard, "rehome")
                    _telemetry.record_shard_occupancy(
                        obs, self.shard_occupancy()
                    )
        else:
            self._enqueue(shard, op_move(uid, point), "cost")
        self._stats.counter_updates += cost
        self._stats.cell_changes += 1
        return cost

    def _update_broadcast(self, uid: object, point: Point) -> int:
        record = self._require(uid)
        home = self._directory[uid]
        new_cell = self.grid.cell_of(point)
        record.point = point
        record.cell = new_cell
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_shard_op(obs, home, "update")
        new_home = self.router.shard_of(new_cell)
        if new_home != home:
            self._directory[uid] = new_home
            if obs is not None:
                _telemetry.record_shard_op(obs, new_home, "rehome")
                _telemetry.record_shard_occupancy(obs, self.shard_occupancy())
        # The cost depends on split/merge cascades only the replicas
        # can evaluate, so adaptive updates flush synchronously; any
        # replica's answer is authoritative (identical op streams).
        self._broadcast(op_move(uid, point), "cost")
        results = self.flush()
        for shard in sorted(results):
            shard_results = results[shard]
            if shard_results and shard_results[-1] is not None:
                return shard_results[-1]
        # Only reachable when every worker died mid-exchange and healed
        # from the parent mirror (which already includes this move).
        return 0

    def update_batch(self, moves: list[tuple[object, Point]]) -> list[int]:
        """Apply a tick's worth of location updates.

        Basic updates defer into per-shard pending batches — the whole
        tick ships as one frame per shard at the closing flush, which
        is where the process pool's throughput comes from.  Adaptive
        updates are inherently synchronous (costs come back on the
        wire) and apply in arrival order.
        """
        costs = [self.update(uid, point) for uid, point in moves]
        if self._replication == "partition":
            self.flush()
        return costs

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def cloak(self, uid: object) -> CloakedRegion:
        record = self._require(uid)
        shard = self._directory[uid]
        self._stats.cloak_requests += 1
        obs = _telemetry.active()
        start = monotonic()
        self._enqueue(shard, op_cloak(uid), "cloak")
        region = self._flush_shard(shard)[-1]
        if region is _UNSAT:
            raise ProfileUnsatisfiableError(
                f"profile unsatisfiable for user {uid!r} "
                f"(reported by shard worker {shard})"
            )
        if obs is not None:
            _telemetry.record_cloak(
                obs, self.kind, monotonic() - start, region.area,
                record.profile.a_min, region.achieved_k, record.profile.k,
            )
            _telemetry.record_shard_cloak(obs, shard, self._route_of(region))
        return region

    def cloak_location(
        self, point: Point, profile: PrivacyProfile
    ) -> CloakedRegion:
        cell = self.grid.cell_of(point)
        shard = self.router.shard_of(cell)
        self._stats.cloak_requests += 1
        obs = _telemetry.active()
        start = monotonic()
        self._enqueue(shard, op_cloak_location(point, profile), "cloak")
        region = self._flush_shard(shard)[-1]
        if region is _UNSAT:
            raise ProfileUnsatisfiableError(
                "profile unsatisfiable for ad-hoc location "
                f"(reported by shard worker {shard})"
            )
        if obs is not None:
            _telemetry.record_cloak(
                obs, self.kind, monotonic() - start, region.area,
                profile.a_min, region.achieved_k, profile.k,
            )
            _telemetry.record_shard_cloak(obs, shard, self._route_of(region))
        return region

    def cloak_many(self, uids: list[object]) -> list[CloakedRegion]:
        """Cloak a batch of users with one frame per involved shard.

        Results come back in input order.  If any profile is
        unsatisfiable the earliest such user raises — after the whole
        batch executed, so ``cloak_requests`` counts every entry (the
        one divergence from looping :meth:`cloak`, which stops at the
        first failure).
        """
        placements: list[tuple[int, int]] = []
        for uid in uids:
            self._require(uid)
            shard = self._directory[uid]
            self._stats.cloak_requests += 1
            position = self._enqueue(shard, op_cloak(uid), "cloak")
            placements.append((shard, position))
        obs = _telemetry.active()
        start = monotonic()
        flushed: dict[int, list] = {}
        regions: list[CloakedRegion] = []
        for index, (shard, position) in enumerate(placements):
            if shard not in flushed:
                flushed[shard] = self._flush_shard(shard)
            region = flushed[shard][position]
            if region is _UNSAT:
                raise ProfileUnsatisfiableError(
                    f"profile unsatisfiable for user {uids[index]!r} "
                    f"(reported by shard worker {shard})"
                )
            regions.append(region)
        if obs is not None:
            elapsed = monotonic() - start
            for uid, region, (shard, _) in zip(uids, regions, placements):
                profile = self._records[uid].profile
                _telemetry.record_cloak(
                    obs, self.kind, elapsed / max(len(uids), 1), region.area,
                    profile.a_min, region.achieved_k, profile.k,
                )
                _telemetry.record_shard_cloak(
                    obs, shard, self._route_of(region)
                )
        return regions

    def cell_count(self, cell: CellId) -> int:
        """Population of one maintained cell, read from the replica
        that is authoritative for it."""
        if (
            self._replication == "broadcast"
            or cell.level < self.router.spine_level
        ):
            shard = 0
        else:
            shard = self.router.shard_of(cell)
        self._enqueue(shard, op_cell_count(cell), "count")
        return self._flush_shard(shard)[-1]

    def _route_of(self, region: CloakedRegion) -> str:
        settled = min(c.level for c in region.cells)
        if settled > self.router.spine_level:
            return "local"
        if settled == self.router.spine_level:
            return "boundary"
        return "spine"

    # ------------------------------------------------------------------
    # Crash recovery and diagnostics
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        """Whole-fleet snapshot.  Basic snapshots are pure parent state
        (cheap — no wire traffic); adaptive snapshots additionally
        capture worker 0's cut, which point data alone cannot rebuild."""
        records = tuple(
            (uid, rec.point, rec.profile) for uid, rec in self._records.items()
        )
        if self._replication == "partition":
            return _ParallelSnapshot(self.kind, records)
        self.flush()
        self._enqueue(0, op_snapshot(), "blob")
        blob = self._flush_shard(0)[-1]
        return _ParallelSnapshot(self.kind, records, blob)

    def restore(self, state: object) -> None:
        """Restore the fleet from a :meth:`snapshot` copy.

        Basic workers rebuild from the restored mirror (fresh replicas,
        so unlike the in-process fleet the cache *counters* restart at
        zero); adaptive workers re-install the captured cut, keeping
        their own maintenance stats exactly like the in-process
        ``restore``.
        """
        if not isinstance(state, _ParallelSnapshot) or state.kind != self.kind:
            raise TypeError("not a ParallelShardedAnonymizer snapshot")
        self._discard_pending()
        self._records = {
            uid: _MirrorRecord(profile, point, self.grid.cell_of(point))
            for uid, point, profile in state.records
        }
        self._directory = {
            uid: self.router.shard_of(rec.cell)
            for uid, rec in self._records.items()
        }
        if self._replication == "partition":
            package = ("bootstrap", list(state.records))
        else:
            snapshot, _stats = pickle.loads(state.blob)
            package = ("install", (snapshot, None))
        blob = pickle.dumps(package)
        # Until a worker's install lands it may hold pre-restore state,
        # so none is a valid heal source for the duration.  An install
        # that dies mid-exchange surfaces as ``None`` (the heal that
        # caught it rebuilt the worker from a *peer*, which may itself
        # be pre-restore here), so re-issue it until it lands — the
        # install is a full state replacement, safe to repeat.
        for shard in range(self.num_shards):
            self._authoritative[shard] = False
        for shard in range(self.num_shards):
            for _ in range(_HEAL_LIMIT):
                self._enqueue(shard, op_install(blob), "ack")
                if self._flush_shard(shard)[-1] is not None:
                    break
            else:
                raise RuntimeError(
                    f"shard worker {shard}: restore install kept dying"
                )
            self._authoritative[shard] = True

    def crash_worker(self, victim: int) -> None:
        """Kill one worker process and heal its replacement — the
        chaos harness's worker-crash fault, exercised over the real
        transport."""
        if not 0 <= victim < self.num_shards:
            raise ValueError(f"no such shard: {victim}")
        self.flush()
        self._crash_and_heal(victim)

    def check_invariants(self) -> None:
        """Assert parent-mirror consistency, then every worker's
        replica invariants (full check on adaptive replicas, the
        partial-replication check on basic ones)."""
        assert set(self._records) == set(self._directory), (
            "parent mirror/directory key drift"
        )
        for uid, rec in self._records.items():
            assert rec.cell == self.grid.cell_of(rec.point), (
                f"parent mirror stale cell for {uid!r}"
            )
            assert self._directory[uid] == self.router.shard_of(rec.cell), (
                f"parent directory mis-homes {uid!r}"
            )
        for shard in range(self.num_shards):
            self._enqueue(shard, op_check(), "check")
        self.flush()

    def ping(self) -> bool:
        """Health-check every worker with a real round trip."""
        for shard in range(self.num_shards):
            self._enqueue(shard, op_ping(), "ping")
        self.flush()
        return all(self._pool.alive(shard) for shard in range(self.num_shards))

    def attach_injector(self, injector: object) -> None:
        """Route every frame through a resilience fault injector
        (channels ``shard:<i>`` parent→worker, ``shard-resp:<i>``
        worker→parent)."""
        self._injector = injector

    def close(self) -> None:
        """Drain and stop the worker fleet.  Idempotent and
        exception-safe: the pool reaps every process even when the
        graceful shutdown handshake fails."""
        if self._closed:
            return
        self._closed = True
        try:
            self._discard_pending()
            for shard in range(self.num_shards):
                if not self._pool.alive(shard):
                    continue
                try:
                    self._seq += 1
                    frame = encode_frame(
                        KIND_REQUEST,
                        self._seq,
                        [ShardEnvelope(shard, op_shutdown())],
                    )
                    conn = self._pool.conn(shard)
                    conn.send_bytes(frame)
                    if conn.poll(1.0):
                        conn.recv_bytes()
                except (OSError, EOFError, RuntimeError, WireError):
                    pass
                obs = _telemetry.active()
                if obs is not None:
                    _telemetry.record_worker_event(obs, shard, "shutdown")
        finally:
            self._pool.shutdown()

    # ------------------------------------------------------------------
    # Transport: pending batches, stop-and-wait exchange, healing
    # ------------------------------------------------------------------
    def _enqueue(self, shard: int, op: bytes, spec: str) -> int:
        """Queue one operation for a shard; returns its position in the
        shard's pending batch (stable across the closing flush)."""
        if self._closed:
            raise RuntimeError("parallel anonymizer is closed")
        self._pending[shard].append((op, spec))
        return len(self._pending[shard]) - 1

    def _broadcast(self, op: bytes, spec: str) -> None:
        for shard in range(self.num_shards):
            self._enqueue(shard, op, spec)

    def _discard_pending(self) -> None:
        for shard in range(self.num_shards):
            self._pending[shard] = []

    def flush(self) -> dict[int, list]:
        """Deliver every shard's pending batch; per-shard result lists
        align with enqueue order."""
        return {
            shard: self._flush_shard(shard)
            for shard in range(self.num_shards)
        }

    def _flush_shard(self, shard: int) -> list:
        pending = self._pending[shard]
        if not pending:
            return []
        self._pending[shard] = []
        results: list = []
        for start in range(0, len(pending), MAX_BATCH):
            chunk = pending[start : start + MAX_BATCH]
            results.extend(
                self._exchange(
                    shard,
                    [op for op, _ in chunk],
                    [spec for _, spec in chunk],
                )
            )
        return results

    def _next_seq(self) -> int:
        self._seq = (self._seq + 1) % 2**32 or 1
        return self._seq

    def _exchange(
        self, shard: int, ops: list[bytes], specs: list[str], depth: int = 0
    ) -> list:
        """One stop-and-wait exchange, healing through worker deaths.

        Returns one result per op.  After a mid-exchange death the
        victim is rebuilt to *post-batch* state (survivors were flushed
        first, so a parent-mirror or survivor-snapshot heal already
        reflects this batch's mutations); only side-effect-free reads
        re-run, and lost mutation results surface as ``None``.
        """
        seq = self._next_seq()
        wire_bytes = encode_frame(
            KIND_REQUEST, seq, [ShardEnvelope(shard, op) for op in ops]
        )
        try:
            reply = self._roundtrip(shard, wire_bytes, seq)
        except _WorkerDied:
            if depth >= _HEAL_LIMIT:
                raise RuntimeError(
                    f"shard worker {shard} kept dying; giving up"
                ) from None
            self._crash_and_heal(shard)
            results: list = [None] * len(specs)
            retry = [
                (index, op)
                for index, (op, spec) in enumerate(zip(ops, specs))
                if spec in _READ_SPECS
            ]
            if retry:
                retried = self._exchange(
                    shard,
                    [op for _, op in retry],
                    [specs[index] for index, _ in retry],
                    depth + 1,
                )
                for (index, _), value in zip(retry, retried):
                    results[index] = value
            return results
        return self._decode_replies(shard, reply, specs)

    def _roundtrip(self, shard: int, wire_bytes: bytes, seq: int) -> Frame:
        """Deliver one request frame and wait for its matching reply,
        retransmitting through injected drops, corruption and NACKs."""
        conn = self._pool.conn(shard)
        start = monotonic()
        attempts = self._transmit(shard, conn, wire_bytes)
        deadline = start + self._hang_timeout
        while True:
            remaining = deadline - monotonic()
            if remaining <= 0 or not conn.poll(remaining):
                self._note_event(shard, "timeout")
                raise _WorkerDied(shard, "no reply within the hang timeout")
            try:
                raw = conn.recv_bytes()
            except (EOFError, OSError) as exc:
                raise _WorkerDied(shard, f"pipe closed ({exc!r})") from None
            payloads = self._deliver_response(shard, raw)
            if not payloads:
                # The injector dropped/held the reply; ask for a replay.
                attempts += self._transmit(shard, conn, wire_bytes, attempts)
                continue
            for payload in payloads:
                try:
                    reply = decode_frame(payload)
                except WireError:
                    # Reply corrupted on the wire: replay, like a NACK.
                    self._note_event(shard, "nack")
                    attempts += self._transmit(shard, conn, wire_bytes, attempts)
                    continue
                if reply.kind == KIND_NACK:
                    # The worker CRC-rejected our (corrupted) request.
                    self._note_event(shard, "nack")
                    attempts += self._transmit(shard, conn, wire_bytes, attempts)
                    continue
                if reply.kind == KIND_RESPONSE and reply.seq == seq:
                    obs = _telemetry.active()
                    if obs is not None:
                        _telemetry.record_worker_roundtrip(
                            obs, shard, monotonic() - start
                        )
                        _telemetry.record_worker_batch(
                            obs, shard, len(reply.envelopes)
                        )
                    return reply
                # A stale duplicate of an already-finished exchange:
                # drain silently, the reply for `seq` is still coming.

    def _transmit(
        self,
        shard: int,
        conn: Connection,
        wire_bytes: bytes,
        prior_attempts: int = 0,
    ) -> int:
        """Push one request frame through the (possibly faulty)
        transmit seam until at least one copy enters the pipe; returns
        the number of transmit attempts made."""
        attempts = 0
        while True:
            if prior_attempts + attempts >= _RETRY_LIMIT:
                raise RuntimeError(
                    f"shard worker {shard}: retransmission budget exhausted"
                )
            attempts += 1
            if attempts > 1:
                self._note_event(shard, "retransmit")
            if self._injector is None:
                deliveries = None
            else:
                deliveries = self._injector.transmit(
                    f"shard:{shard}", wire_bytes
                )
            try:
                if deliveries is None:
                    conn.send_bytes(wire_bytes)
                    return attempts
                for delivery in deliveries:
                    conn.send_bytes(delivery.payload)
                # Only a copy of the *current* frame counts as delivered.
                # A late (held-back) delivery may be stale traffic from an
                # earlier exchange, which the worker drops without
                # replying — counting it would leave the parent waiting
                # for a reply that never comes until the hang timeout
                # declares a perfectly healthy worker dead.  Fresh
                # deliveries always elicit a reply or a NACK, so they
                # count even when corrupted.
                if any(
                    not delivery.late or delivery.payload == wire_bytes
                    for delivery in deliveries
                ):
                    return attempts
            except (BrokenPipeError, OSError) as exc:
                raise _WorkerDied(shard, f"pipe broke ({exc!r})") from None
            # Every copy of the current frame dropped or held: transmit
            # again (releasing any ripe held copies is itself
            # deterministic).

    def _deliver_response(self, shard: int, raw: bytes) -> list[bytes]:
        if self._injector is None:
            return [raw]
        deliveries = self._injector.transmit(f"shard-resp:{shard}", raw)
        return [delivery.payload for delivery in deliveries]

    def _decode_replies(
        self, shard: int, reply: Frame, specs: list[str]
    ) -> list:
        if len(reply.envelopes) != len(specs):
            raise RuntimeError(
                f"shard worker {shard}: expected {len(specs)} replies, "
                f"got {len(reply.envelopes)}"
            )
        results: list = []
        for envelope, spec in zip(reply.envelopes, specs):
            decoded = decode_response(envelope.payload)
            name = decoded[0]
            if name == "error":
                if spec == "check":
                    raise AssertionError(decoded[1])
                raise RuntimeError(
                    f"shard worker {shard} rejected an operation: {decoded[1]}"
                )
            if spec in ("ack", "ping", "check"):
                if name != "ack":
                    raise RuntimeError(
                        f"shard worker {shard}: expected ack, got {name}"
                    )
                results.append(True)
            elif spec == "cost":
                if name != "cost":
                    raise RuntimeError(
                        f"shard worker {shard}: expected cost, got {name}"
                    )
                results.append(decoded[1])
            elif spec == "cloak":
                if name == "cloak":
                    results.append(decoded[1])
                elif name == "unsat":
                    results.append(_UNSAT)
                else:
                    raise RuntimeError(
                        f"shard worker {shard}: expected cloak, got {name}"
                    )
            elif spec == "count":
                if name != "count":
                    raise RuntimeError(
                        f"shard worker {shard}: expected count, got {name}"
                    )
                results.append(decoded[1])
            elif spec == "blob":
                if name != "blob":
                    raise RuntimeError(
                        f"shard worker {shard}: expected blob, got {name}"
                    )
                results.append(decoded[1])
            else:
                raise RuntimeError(f"unknown reply spec {spec!r}")
        return results

    # ------------------------------------------------------------------
    # Healing
    # ------------------------------------------------------------------
    def _crash_and_heal(self, victim: int) -> None:
        """Reap a dead (or deliberately killed) worker, flush the
        survivors, respawn and rebuild the victim's replica."""
        self.worker_crashes += 1
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_worker_event(obs, victim, "crash")
            _telemetry.note_recovery("worker_respawn")
        self._pool.kill(victim)
        self._authoritative[victim] = False
        # Survivors must apply their queued traffic first: the heal
        # source (parent mirror or survivor snapshot) has to reflect
        # every mutation the victim's lost batch carried.
        for shard in range(self.num_shards):
            if shard != victim:
                self._flush_shard(shard)
        self._pool.spawn(victim)
        if obs is not None:
            _telemetry.record_worker_event(obs, victim, "spawn")
        survivors = [
            shard
            for shard in range(self.num_shards)
            if shard != victim
            and self._pool.alive(shard)
            and self._authoritative[shard]
        ]
        if self._replication == "broadcast" and survivors:
            source = survivors[0]
            self._enqueue(source, op_snapshot(), "blob")
            blob = self._flush_shard(source)[-1]
            snapshot, stats = pickle.loads(blob)
            package = ("install", (snapshot, stats))
        else:
            # Partition replication always heals from the parent mirror
            # (lossless: the mirror is authoritative for every record).
            # Broadcast policies fall back to it only with no survivor;
            # history-dependent structure (the adaptive cut) re-deepens
            # from current points, and worker stats restart.
            package = (
                "bootstrap",
                [
                    (uid, rec.point, rec.profile)
                    for uid, rec in self._records.items()
                ],
            )
        self._enqueue(victim, op_install(pickle.dumps(package)), "ack")
        self._flush_shard(victim)
        # If the install exchange itself died, the nested heal that
        # caught it already re-installed the victim, so authority is
        # restored either way.
        self._authoritative[victim] = True
        self.worker_heals += 1
        if obs is not None:
            _telemetry.record_worker_event(obs, victim, "heal")

    def _fetch_stats(self) -> list[dict]:
        """One decoded stats payload per worker (flushes everything)."""
        for shard in range(self.num_shards):
            self._enqueue(shard, op_stats(), "blob")
        results = self.flush()
        return [
            pickle.loads(results[shard][-1])
            for shard in range(self.num_shards)
        ]

    def _note_event(self, shard: int, event: str) -> None:
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_worker_event(obs, shard, event)
