"""Sharded anonymizer runtime (deterministic spatial partitioning).

Partitions the Casper grid pyramid across ``N`` shard-owned subtrees
behind a :class:`~repro.sharding.router.ShardRouter`: the top of the
pyramid (levels above the block level) is a replicated spine, every
deeper cell is owned by exactly one shard.  The sharded anonymizers
implement the exact interface of
:class:`~repro.anonymizer.basic.BasicAnonymizer` /
:class:`~repro.anonymizer.adaptive.AdaptiveAnonymizer` and are
**byte-for-byte equivalent** to them for any shard count — cloaks,
candidate lists, and maintenance statistics are identical; sharding
changes only where state lives and which caches a mutation invalidates.

Two runtimes share that routing scheme:

* the in-process fleets (:class:`ShardedBasicAnonymizer` /
  :class:`ShardedAdaptiveAnonymizer`) — one address space, shard cores
  as plain objects;
* the process pool (:class:`ParallelShardedAnonymizer`,
  ``parallel=True``) — one OS process per shard speaking the framed,
  CRC'd wire protocol of :mod:`repro.sharding.wire` over pipes, with
  an asyncio socket front door
  (:class:`~repro.sharding.frontdoor.ShardFrontDoor`) for remote
  peers.  Same interface, same bytes out.

See ``docs/sharding.md`` for the partitioning scheme, the composite
cache-epoch rule, the wire format and the worker crash/heal protocol.
"""

from __future__ import annotations

from repro.anonymizer.policy import get_policy
from repro.geometry import Rect
from repro.sharding.adaptive import ShardedAdaptiveAnonymizer
from repro.sharding.basic import ShardedBasicAnonymizer
from repro.sharding.replicated import ReplicatedShardedAnonymizer
from repro.sharding.router import ShardRouter, morton_cell, morton_rank
from repro.sharding.workers import (
    ParallelShardedAnonymizer,
    ShardWorker,
    WorkerPool,
)

__all__ = [
    "ParallelShardedAnonymizer",
    "ReplicatedShardedAnonymizer",
    "ShardRouter",
    "ShardWorker",
    "ShardedAdaptiveAnonymizer",
    "ShardedAnonymizer",
    "ShardedBasicAnonymizer",
    "WorkerPool",
    "make_sharded",
    "morton_cell",
    "morton_rank",
]

ShardedAnonymizer = (
    ShardedBasicAnonymizer
    | ShardedAdaptiveAnonymizer
    | ParallelShardedAnonymizer
    | ReplicatedShardedAnonymizer
)
"""Union of the sharded anonymizer implementations."""


def make_sharded(
    bounds: Rect,
    height: int = 9,
    num_shards: int = 1,
    kind: str = "basic",
    cloak_cache_size: int = 8192,
    parallel: bool = False,
    vectorized: bool | None = None,
) -> ShardedAnonymizer:
    """Build a sharded anonymizer of the requested ``kind`` — any name
    in :func:`repro.anonymizer.policy.available_policies`;
    ``parallel=True`` runs each shard in its own worker process over
    the wire protocol.  Policies without a native sharded fleet deploy
    through the generic broadcast wrapper
    (:class:`~repro.sharding.replicated.ReplicatedShardedAnonymizer`).
    ``vectorized`` selects the numpy array backend (``None`` =
    environment default, see
    :func:`repro.anonymizer.soa.default_vectorized`)."""
    spec = get_policy(kind)
    if parallel:
        return ParallelShardedAnonymizer(
            bounds, height=height, num_shards=num_shards, kind=kind,
            cloak_cache_size=cloak_cache_size, vectorized=vectorized,
        )
    if spec.sharded is not None:
        return spec.sharded(
            bounds, height, num_shards, cloak_cache_size, vectorized
        )
    return ReplicatedShardedAnonymizer(
        spec, bounds, height=height, num_shards=num_shards,
        cloak_cache_size=cloak_cache_size, vectorized=vectorized,
    )
