"""Sharded anonymizer runtime (deterministic spatial partitioning).

Partitions the Casper grid pyramid across ``N`` shard-owned subtrees
behind a :class:`~repro.sharding.router.ShardRouter`: the top of the
pyramid (levels above the block level) is a replicated spine, every
deeper cell is owned by exactly one shard.  The sharded anonymizers
implement the exact interface of
:class:`~repro.anonymizer.basic.BasicAnonymizer` /
:class:`~repro.anonymizer.adaptive.AdaptiveAnonymizer` and are
**byte-for-byte equivalent** to them for any shard count — cloaks,
candidate lists, and maintenance statistics are identical; sharding
changes only where state lives and which caches a mutation invalidates.

See ``docs/sharding.md`` for the partitioning scheme, the composite
cache-epoch rule, and the per-shard crash/heal protocol.
"""

from __future__ import annotations

from repro.geometry import Rect
from repro.sharding.adaptive import ShardedAdaptiveAnonymizer
from repro.sharding.basic import ShardedBasicAnonymizer
from repro.sharding.router import ShardRouter, morton_cell, morton_rank

__all__ = [
    "ShardRouter",
    "ShardedAdaptiveAnonymizer",
    "ShardedAnonymizer",
    "ShardedBasicAnonymizer",
    "make_sharded",
    "morton_cell",
    "morton_rank",
]

ShardedAnonymizer = ShardedBasicAnonymizer | ShardedAdaptiveAnonymizer
"""Union of the sharded anonymizer implementations."""


def make_sharded(
    bounds: Rect,
    height: int = 9,
    num_shards: int = 1,
    kind: str = "basic",
    cloak_cache_size: int = 8192,
) -> ShardedAnonymizer:
    """Build a sharded anonymizer of the requested ``kind``
    (``"basic"`` or ``"adaptive"``)."""
    if kind == "basic":
        return ShardedBasicAnonymizer(
            bounds, height=height, num_shards=num_shards,
            cloak_cache_size=cloak_cache_size,
        )
    if kind == "adaptive":
        return ShardedAdaptiveAnonymizer(
            bounds, height=height, num_shards=num_shards,
            cloak_cache_size=cloak_cache_size,
        )
    raise ValueError(f"unknown anonymizer kind {kind!r}")
