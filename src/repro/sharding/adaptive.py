"""Sharded incomplete-pyramid anonymizer (adaptive variant).

Replicates :class:`~repro.anonymizer.adaptive.AdaptiveAnonymizer`'s
*global* quadtree cut across ``N`` shards: cut cells at level ``>= S``
live in the core owning their block, cut cells above the block level
live in the shared spine.  The split/merge decisions are the exact
Section 4.2 predicates (:func:`~repro.anonymizer.adaptive.choose_split`
/ :func:`~repro.anonymizer.adaptive.merge_is_blocked` — shared code,
not a reimplementation), driven by the same global counts, so the
maintained cut is identical for every shard count and cloaks are
byte-for-byte equal to the single-pyramid implementation.

Partition facts that make this sound:

* a cut cell at level ``>= S`` holds only users from its own block,
  hence from one shard — core user sets never mix shards;
* a *spine* leaf (cut above the block level) can cover many blocks, so
  its uid set may span shards; the set lives in the spine while each
  user's record stays in their home core (uids are opaque — no
  coordinate crosses the shard boundary through the spine);
* splitting a spine leaf at level ``S - 1`` materialises block roots
  across several shards — the one maintenance action that fans out,
  and it routes through the spine by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymizer.adaptive import (
    _Cell,
    _UserRecord,
    choose_split,
    merge_is_blocked,
)
from repro.anonymizer.soa import (
    UserTable,
    choose_split_vec,
    default_vectorized,
    merge_blocked_vec,
)
from repro.anonymizer.cache import CloakCache
from repro.anonymizer.cells import CellGrid, CellId
from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.profile import PrivacyProfile
from repro.anonymizer.stats import MaintenanceStats
from repro.errors import DuplicateUserError, UnknownUserError
from repro.geometry import Point, Rect
from repro.observability import runtime as _telemetry
from repro.sharding.core import AdaptiveShardCore, SpineState, cache_counters
from repro.sharding.router import ShardRouter
from repro.utils.timer import monotonic

__all__ = ["ShardedAdaptiveAnonymizer"]

_ROOT = CellId(0, 0, 0)


@dataclass(frozen=True)
class _CoreSnapshot:
    """Deep copy of one adaptive core's population state."""

    cells: dict[CellId, _Cell]
    users: dict[object, _UserRecord]


@dataclass(frozen=True)
class _FleetSnapshot:
    """Atomic deep copy of the whole adaptive fleet."""

    cores: tuple[_CoreSnapshot, ...]
    spine_cells: dict[CellId, _Cell]
    directory: dict[object, int]


def _copy_cells(cells: dict[CellId, _Cell]) -> dict[CellId, _Cell]:
    return {
        cid: _Cell(cell.count, cell.is_leaf, set(cell.users))
        for cid, cell in cells.items()
    }


def _copy_users(users: dict[object, _UserRecord]) -> dict[object, _UserRecord]:
    return {
        uid: _UserRecord(rec.profile, rec.point, rec.leaf)
        for uid, rec in users.items()
    }


class ShardedAdaptiveAnonymizer:
    """Incomplete-pyramid anonymizer partitioned across ``num_shards``."""

    kind = "adaptive"

    def __init__(
        self,
        bounds: Rect,
        height: int = 9,
        num_shards: int = 1,
        cloak_cache_size: int = 8192,
        vectorized: bool | None = None,
    ) -> None:
        self.grid = CellGrid(bounds, height)
        self.stats = MaintenanceStats()
        self.router = ShardRouter(num_shards, height)
        if vectorized is None:
            vectorized = default_vectorized()
        self.vectorized = vectorized
        # Fleet-wide numpy gate table mirroring every core's user
        # records (uids are opaque slots; no per-shard partitioning
        # needed — split/merge decisions are global anyway).  The cut
        # itself stays dicts: maintenance walks are pointer-chasing by
        # nature, the wins are in the gate scans.
        self._table: UserTable | None = UserTable() if vectorized else None
        self._spine = SpineState(
            cache=CloakCache(cloak_cache_size, shard_label="spine")
        )
        self._cores = [
            AdaptiveShardCore(
                index=i, cache=CloakCache(cloak_cache_size, shard_label=str(i))
            )
            for i in range(num_shards)
        ]
        self._directory: dict[object, int] = {}
        # The root is always maintained; it is a spine cell whenever a
        # spine exists at all (S > 0), else it belongs to shard 0.
        if self.router.spine_level > 0:
            self._spine.cells[_ROOT] = _Cell()
        else:
            self._cores[0].cells[_ROOT] = _Cell()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> Rect:
        return self.grid.bounds

    @property
    def height(self) -> int:
        return self.grid.height

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    @property
    def num_users(self) -> int:
        return len(self._directory)

    @property
    def num_maintained_cells(self) -> int:
        return len(self._spine.cells) + sum(
            len(core.cells) for core in self._cores
        )

    def __contains__(self, uid: object) -> bool:
        return uid in self._directory

    def shard_of_user(self, uid: object) -> int:
        """The shard currently homing ``uid``."""
        try:
            return self._directory[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    def shard_occupancy(self) -> list[int]:
        """Registered users homed per shard, indexed by shard id."""
        return [len(core.users) for core in self._cores]

    def cache_stats(self) -> dict[str, int]:
        """Aggregate cloak-cache traffic across all cores + spine."""
        caches = [core.cache for core in self._cores] + [self._spine.cache]
        return {
            "hits": sum(c.hits for c in caches),
            "misses": sum(c.misses for c in caches),
            "invalidations": sum(c.invalidations for c in caches),
            "evictions": sum(c.evictions for c in caches),
        }

    def cache_stats_per_shard(self) -> dict[str, dict[str, int]]:
        """Cloak-cache traffic per shard core (plus the spine cache),
        keyed ``"0"``..``"N-1"`` / ``"spine"``."""
        stats = {
            str(core.index): cache_counters(core.cache)
            for core in self._cores
        }
        stats["spine"] = cache_counters(self._spine.cache)
        return stats

    def profile_of(self, uid: object) -> PrivacyProfile:
        return self._record(uid).profile

    def location_of(self, uid: object) -> Point:
        return self._record(uid).point

    def cell_count(self, cell: CellId) -> int:
        entry = self._entry(cell)
        return entry.count if entry is not None else 0

    def users_in_rect(self, rect: Rect) -> int:
        if self._table is not None:
            return self._table.count_in_rect(rect)
        return sum(
            1
            for core in self._cores
            for rec in core.users.values()
            if rect.contains_point(rec.point)
        )

    def _record(self, uid: object) -> _UserRecord:
        try:
            return self._cores[self._directory[uid]].users[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    # ------------------------------------------------------------------
    # Routed cell access
    # ------------------------------------------------------------------
    def _entry(self, cell: CellId) -> _Cell | None:
        if cell.level < self.router.spine_level:
            return self._spine.cells.get(cell)
        return self._cores[self.router.shard_of(cell)].cells.get(cell)

    def _entry_required(self, cell: CellId) -> _Cell:
        entry = self._entry(cell)
        if entry is None:
            raise KeyError(cell)
        return entry

    def _set_entry(self, cell: CellId, entry: _Cell) -> None:
        if cell.level < self.router.spine_level:
            self._spine.cells[cell] = entry
        else:
            self._cores[self.router.shard_of(cell)].cells[cell] = entry

    def _del_entry(self, cell: CellId) -> None:
        if cell.level < self.router.spine_level:
            del self._spine.cells[cell]
        else:
            del self._cores[self.router.shard_of(cell)].cells[cell]

    def _bump_gen(self, cell: CellId) -> None:
        if cell.level < self.router.spine_level:
            self._spine.bump_gen(cell)
        else:
            gens = self._cores[self.router.shard_of(cell)].gens
            gens[cell] = gens.get(cell, 0) + 1

    def _gen_of(self, cell: CellId) -> int:
        if cell.level < self.router.spine_level:
            return self._spine.gens.get(cell, 0)
        return self._cores[self.router.shard_of(cell)].gens.get(cell, 0)

    def leaf_for_point(self, point: Point) -> CellId:
        """Descend the maintained cut to the leaf containing ``point``
        (spine first, then the owning core's subtree)."""
        cell = _ROOT
        while not self._entry_required(cell).is_leaf:
            cell = self.grid.cell_of(point, cell.level + 1)
        return cell

    # ------------------------------------------------------------------
    # Registration and location updates
    # ------------------------------------------------------------------
    def register(self, uid: object, point: Point, profile: PrivacyProfile) -> None:
        if uid in self._directory:
            raise DuplicateUserError(uid)
        leaf = self.leaf_for_point(point)
        home = self.router.shard_of(self.grid.cell_of(point))
        self._cores[home].users[uid] = _UserRecord(profile, point, leaf)
        self._directory[uid] = home
        if self._table is not None:
            self._table.add(uid, point.x, point.y, profile.k, profile.a_min, 0)
        self._add_to_leaf(uid, leaf)
        self.stats.registrations += 1
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_shard_op(obs, home, "register")
            _telemetry.record_shard_occupancy(obs, self.shard_occupancy())
        self._maybe_split(leaf)

    def deregister(self, uid: object) -> None:
        record = self._record(uid)
        home = self._directory[uid]
        self._remove_from_leaf(uid, record.leaf)
        del self._cores[home].users[uid]
        del self._directory[uid]
        if self._table is not None:
            self._table.remove(uid)
        self.stats.deregistrations += 1
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_shard_op(obs, home, "deregister")
            _telemetry.record_shard_occupancy(obs, self.shard_occupancy())
        self._maybe_merge(record.leaf)

    def set_profile(self, uid: object, profile: PrivacyProfile) -> None:
        record = self._record(uid)
        record.profile = profile
        if self._table is not None:
            slot = self._table.slot_of(uid)
            assert slot is not None
            self._table.ks[slot] = profile.k
            self._table.a_mins[slot] = profile.a_min
        self._maybe_split(record.leaf)
        self._maybe_merge(record.leaf)

    def update(self, uid: object, point: Point) -> int:
        """Process a location update; returns its counter-update cost
        (identical to the single-pyramid cost)."""
        return self._update_routed(uid, point, None)

    def _update_routed(
        self, uid: object, point: Point, home_hint: int | None
    ) -> int:
        record = self._record(uid)
        home = self._directory[uid]
        record.point = point
        if self._table is not None:
            slot = self._table.slot_of(uid)
            assert slot is not None
            self._table.xs[slot] = point.x
            self._table.ys[slot] = point.y
        self.stats.location_updates += 1
        new_leaf = self.leaf_for_point(point)
        new_home = (
            home_hint
            if home_hint is not None
            else self.router.shard_of(self.grid.cell_of(point))
        )
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_shard_op(obs, home, "update")
        if new_leaf == record.leaf:
            # Same cut leaf (possibly a spine leaf spanning blocks); the
            # record may still need rehoming even though no count moved.
            if new_home != home:
                self._rehome(uid, record, home, new_home, obs)
            return 0
        old_leaf = record.leaf
        cost = self._move_between_leaves(uid, old_leaf, new_leaf)
        record.leaf = new_leaf
        if new_home != home:
            self._rehome(uid, record, home, new_home, obs)
        self.stats.counter_updates += cost
        self.stats.cell_changes += 1
        self._maybe_split(new_leaf)
        self._maybe_merge(old_leaf)
        return cost

    def update_batch(self, moves: list[tuple[object, Point]]) -> list[int]:
        """Apply a tick's worth of location updates.

        Adaptive updates do *not* commute — split/merge cascades depend
        on the interleaving — so the batch applies strictly in arrival
        order; :meth:`~repro.sharding.router.ShardRouter.route_batch`
        still resolves every move's destination shard in one memoized
        pass, replacing the per-move ``shard_of`` walk :meth:`update`
        would otherwise do, and its grouping is what the process pool
        ships one frame per shard with.
        """
        cells = [self.grid.cell_of(point) for _, point in moves]
        owners, _by_shard = self.router.route_batch(cells)
        return [
            self._update_routed(uid, point, owner)
            for (uid, point), owner in zip(moves, owners)
        ]

    def _rehome(
        self,
        uid: object,
        record: _UserRecord,
        home: int,
        new_home: int,
        obs: object,
    ) -> None:
        del self._cores[home].users[uid]
        self._cores[new_home].users[uid] = record
        self._directory[uid] = new_home
        if obs is not None:
            _telemetry.record_shard_op(obs, new_home, "rehome")
            _telemetry.record_shard_occupancy(obs, self.shard_occupancy())

    def _move_between_leaves(self, uid: object, old: CellId, new: CellId) -> int:
        """Transfer one user between cut leaves; identical walk (and
        cost) to the single-pyramid implementation, with epoch effects
        routed per touched shard."""
        self._entry_required(old).users.discard(uid)
        self._entry_required(new).users.add(uid)
        old_path = self.grid.path_to_root(old)
        new_path = self.grid.path_to_root(new)
        common = {c for c in new_path}
        spine_level = self.router.spine_level
        shards: set[int] = set()
        boundary = False
        cost = 0
        for cell in old_path:
            if cell in common:
                break
            self._entry_required(cell).count -= 1
            self._bump_gen(cell)
            if cell.level >= spine_level:
                shards.add(self.router.shard_of(cell))
            if cell.level <= spine_level:
                boundary = True
            cost += 1
        stop_at = None
        for cell in old_path:
            if cell in common:
                stop_at = cell
                break
        for cell in new_path:
            if cell == stop_at:
                break
            self._entry_required(cell).count += 1
            self._bump_gen(cell)
            if cell.level >= spine_level:
                shards.add(self.router.shard_of(cell))
            if cell.level <= spine_level:
                boundary = True
            cost += 1
        for shard in shards:
            self._cores[shard].epoch += 1
        if boundary:
            self._spine.boundary_epoch += 1
        return cost

    def _add_to_leaf(self, uid: object, leaf: CellId) -> None:
        self._entry_required(leaf).users.add(uid)
        path = self.grid.path_to_root(leaf)
        for cell in path:
            self._entry_required(cell).count += 1
            self._bump_gen(cell)
        if leaf.level >= self.router.spine_level:
            self._cores[self.router.shard_of(leaf)].epoch += 1
        self._spine.boundary_epoch += 1
        self.stats.counter_updates += len(path)

    def _remove_from_leaf(self, uid: object, leaf: CellId) -> None:
        self._entry_required(leaf).users.discard(uid)
        path = self.grid.path_to_root(leaf)
        for cell in path:
            self._entry_required(cell).count -= 1
            self._bump_gen(cell)
        if leaf.level >= self.router.spine_level:
            self._cores[self.router.shard_of(leaf)].epoch += 1
        self._spine.boundary_epoch += 1
        self.stats.counter_updates += len(path)

    # ------------------------------------------------------------------
    # Splitting and merging (decisions shared with the single pyramid)
    # ------------------------------------------------------------------
    def _point_of(self, uid: object) -> Point:
        return self._cores[self._directory[uid]].users[uid].point

    def _profile_of(self, uid: object) -> PrivacyProfile:
        return self._cores[self._directory[uid]].users[uid].profile

    def _maybe_split(self, leaf: CellId) -> None:
        while True:
            entry = self._entry(leaf)
            if entry is None or not entry.is_leaf or leaf.level >= self.height:
                return
            if self._table is not None:
                decision = choose_split_vec(
                    self.grid, leaf, entry.count, entry.users, self._table
                )
            else:
                decision = choose_split(
                    self.grid, leaf, entry.count, entry.users,
                    self._point_of, self._profile_of,
                )
            if decision is None:
                return
            child_users, satisfiable = decision
            self._split(leaf, child_users)
            leaf = satisfiable

    def _split(self, leaf: CellId, child_users: dict[CellId, set[object]]) -> None:
        entry = self._entry_required(leaf)
        entry.is_leaf = False
        entry.users = set()
        spine_level = self.router.spine_level
        child_level = leaf.level + 1
        shards: set[int] = set()
        for child, members in child_users.items():
            self._set_entry(
                child, _Cell(count=len(members), is_leaf=True, users=members)
            )
            self._bump_gen(child)
            if child_level >= spine_level:
                shards.add(self.router.shard_of(child))
            for uid in members:
                self._cores[self._directory[uid]].users[uid].leaf = child
        for shard in shards:
            self._cores[shard].epoch += 1
        if child_level <= spine_level:
            self._spine.boundary_epoch += 1
        self.stats.splits += 1
        self.stats.counter_updates += 4 + sum(
            len(m) for m in child_users.values()
        )

    def _maybe_merge(self, leaf: CellId) -> None:
        while leaf.level > 0:
            parent = leaf.parent()
            children = parent.children()
            entries = [self._entry(c) for c in children]
            if any(e is None or not e.is_leaf for e in entries):
                return
            child_area = self.grid.cell_area(leaf.level)
            if self._table is not None:
                blocked = merge_blocked_vec(
                    self._table,
                    child_area,
                    [(e.count, e.users) for e in entries if e is not None],
                )
            else:
                blocked = merge_is_blocked(
                    child_area,
                    [(e.count, e.users) for e in entries if e is not None],
                    self._profile_of,
                )
            if blocked:
                return
            merged_users: set[object] = set()
            for e in entries:
                if e is not None:
                    merged_users |= e.users
            parent_entry = self._entry_required(parent)
            parent_entry.is_leaf = True
            parent_entry.users = merged_users
            for uid in merged_users:
                self._cores[self._directory[uid]].users[uid].leaf = parent
            spine_level = self.router.spine_level
            shards: set[int] = set()
            for child in children:
                self._del_entry(child)
                self._bump_gen(child)
                if child.level >= spine_level:
                    shards.add(self.router.shard_of(child))
            for shard in shards:
                self._cores[shard].epoch += 1
            if leaf.level <= spine_level:
                self._spine.boundary_epoch += 1
            self.stats.merges += 1
            self.stats.counter_updates += 4 + len(merged_users)
            leaf = parent

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def cloak(self, uid: object) -> CloakedRegion:
        record = self._record(uid)
        return self._cloak_cell(record.profile, record.leaf, self._directory[uid])

    def cloak_location(self, point: Point, profile: PrivacyProfile) -> CloakedRegion:
        leaf = self.leaf_for_point(point)
        shard = self.router.shard_of(self.grid.cell_of(point))
        return self._cloak_cell(profile, leaf, shard)

    def _cloak_cell(
        self, profile: PrivacyProfile, leaf: CellId, shard: int
    ) -> CloakedRegion:
        self.stats.cloak_requests += 1
        if leaf.level < self.router.spine_level:
            # Cut sits above the block level: the climb reads boundary
            # state only, so the shared spine cache serves every shard.
            cache = self._spine.cache
            epoch: tuple[int, int] = (-1, self._spine.boundary_epoch)
        else:
            core = self._cores[shard]
            cache = core.cache
            epoch = (core.epoch, self._spine.boundary_epoch)
        obs = _telemetry.active()
        if obs is None:
            return cache.cloak(
                self.grid, self.cell_count, self._gen_of, epoch, profile, leaf
            )
        start = monotonic()
        region = cache.cloak(
            self.grid, self.cell_count, self._gen_of, epoch, profile, leaf
        )
        _telemetry.record_cloak(
            obs, "adaptive", monotonic() - start, region.area,
            profile.a_min, region.achieved_k, profile.k,
        )
        _telemetry.record_shard_cloak(obs, shard, self._route_of(region))
        return region

    def _route_of(self, region: CloakedRegion) -> str:
        settled = min(c.level for c in region.cells)
        if settled > self.router.spine_level:
            return "local"
        if settled == self.router.spine_level:
            return "boundary"
        return "spine"

    # ------------------------------------------------------------------
    # Crash recovery — whole fleet and per shard
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        """Atomic whole-fleet snapshot (cut + user tables + directory)."""
        return _FleetSnapshot(
            cores=tuple(
                _CoreSnapshot(_copy_cells(core.cells), _copy_users(core.users))
                for core in self._cores
            ),
            spine_cells=_copy_cells(self._spine.cells),
            directory=dict(self._directory),
        )

    def restore(self, state: object) -> None:
        """Replace the whole fleet's population state atomically."""
        if not isinstance(state, _FleetSnapshot):
            raise TypeError("not a ShardedAdaptiveAnonymizer snapshot")
        if len(state.cores) != self.num_shards:
            raise ValueError("snapshot shard count mismatch")
        for core, snap in zip(self._cores, state.cores):
            core.cells = _copy_cells(snap.cells)
            core.users = _copy_users(snap.users)
            core.epoch += 1
            core.cache.clear()
        self._spine.cells = _copy_cells(state.spine_cells)
        self._spine.boundary_epoch += 1
        self._spine.cache.clear()
        self._directory = dict(state.directory)
        self._rebuild_table()

    def snapshot_shard(self, shard: int) -> object:
        """Deep copy of one core's population state."""
        core = self._cores[shard]
        return _CoreSnapshot(_copy_cells(core.cells), _copy_users(core.users))

    def restore_shard(self, shard: int, state: object) -> list[object]:
        """Restore one crashed core, reconciling it with the surviving
        fleet.

        The spine's structure is authoritative: the restored shard's
        part of the cut is *rebuilt* from its surviving user records —
        one leaf per still-maintained block, re-deepened through the
        standard split rule — rather than trusting a snapshot cut that
        may contradict post-snapshot spine splits/merges.  Users whose
        directory entry moved away keep their live record elsewhere;
        directory entries pointing here with no restored record are
        purged and returned (they heal via re-registration).
        """
        if not isinstance(state, _CoreSnapshot):
            raise TypeError("not a ShardedAdaptiveAnonymizer shard snapshot")
        core = self._cores[shard]
        spine_level = self.router.spine_level
        users = {
            uid: _UserRecord(rec.profile, rec.point, rec.leaf)
            for uid, rec in state.users.items()
            if self._directory.get(uid) == shard
        }
        purged = [
            uid
            for uid, home in self._directory.items()
            if home == shard and uid not in users
        ]
        for uid in purged:
            del self._directory[uid]
        # Strip this shard's (and the purged) uids from every spine
        # leaf; survivors are re-attached below.
        for entry in self._spine.cells.values():
            if entry.is_leaf and entry.users:
                entry.users = {
                    u
                    for u in entry.users
                    if u in self._directory and self._directory[u] != shard
                }
        old_cells = core.cells
        core.cells = {}
        core.users = users
        # Gate table resyncs to the post-reconciliation fleet before the
        # split/merge passes below consult it.
        self._rebuild_table()
        # Rebuild one leaf per block the spine still maintains.
        maintained: list[CellId] = []
        for block in self.router.blocks_of(shard):
            if spine_level == 0:
                is_maintained = True  # the root block always exists
            else:
                parent_entry = self._spine.cells.get(block.parent())
                is_maintained = (
                    parent_entry is not None and not parent_entry.is_leaf
                )
            if is_maintained:
                members = {
                    uid
                    for uid, rec in users.items()
                    if block.is_ancestor_of(self.grid.cell_of(rec.point))
                }
                core.cells[block] = _Cell(
                    count=len(members), is_leaf=True, users=members
                )
                maintained.append(block)
        # Re-attach every survivor to its cut leaf (a rebuilt block, or
        # a spine leaf when the cut sits above the block level).
        for uid, rec in users.items():
            leaf = self.leaf_for_point(rec.point)
            rec.leaf = leaf
            if leaf.level < spine_level:
                self._spine.cells[leaf].users.add(uid)
        for cell in set(old_cells) | set(core.cells):
            core.gens[cell] = core.gens.get(cell, 0) + 1
        self._recompute_spine_counts()
        core.epoch += 1
        self._spine.boundary_epoch += 1
        core.cache.clear()
        self._spine.cache.clear()
        # Let the standard criteria re-deepen the rebuilt cut, and let
        # underpopulated sibling groups merge upward.
        for block in maintained:
            self._maybe_split(block)
        for cell in [c for c, e in self._spine.cells.items() if e.is_leaf]:
            self._maybe_split(cell)
        for block in maintained:
            self._maybe_merge(block)
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_shard_op(obs, shard, "restore")
            _telemetry.record_shard_occupancy(obs, self.shard_occupancy())
        return purged

    def _rebuild_table(self) -> None:
        """Resync the fleet-wide gate table from every core's live user
        records (no-op on the scalar backend)."""
        if self._table is None:
            return
        self._table.clear()
        for core in self._cores:
            for uid, rec in core.users.items():
                self._table.add(
                    uid,
                    rec.point.x,
                    rec.point.y,
                    rec.profile.k,
                    rec.profile.a_min,
                    0,
                )

    def _recompute_spine_counts(self) -> None:
        """Recompute every spine cell's count bottom-up (leaves from
        their user sets, split cells from their children), bumping
        generations only where the count changed."""
        for level in range(self.router.spine_level - 1, -1, -1):
            for cell, entry in self._spine.cells.items():
                if cell.level != level:
                    continue
                if entry.is_leaf:
                    count = len(entry.users)
                else:
                    count = sum(self.cell_count(c) for c in cell.children())
                if count != entry.count:
                    entry.count = count
                    self._spine.bump_gen(cell)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def _iter_cells(self) -> list[tuple[CellId, _Cell]]:
        items = list(self._spine.cells.items())
        for core in self._cores:
            items.extend(core.cells.items())
        return items

    def check_invariants(self) -> None:
        """Assert incomplete-pyramid + partition consistency."""
        spine_level = self.router.spine_level
        assert self._entry(_ROOT) is not None, "root must always be maintained"
        leaf_population = 0
        for cell, entry in self._iter_cells():
            if entry.is_leaf:
                leaf_population += entry.count
                assert entry.count == len(entry.users), f"leaf {cell} count drift"
                for uid in entry.users:
                    rec = self._record(uid)
                    assert rec.leaf == cell, f"hash table stale for {uid!r}"
                    assert cell.is_ancestor_of(
                        self.grid.cell_of(rec.point)
                    ), f"user {uid!r} outside its leaf"
                if cell.level < self.height:
                    for child in cell.children():
                        assert self._entry(child) is None, "leaf with children"
            else:
                children = cell.children()
                child_entries = [self._entry(c) for c in children]
                assert all(e is not None for e in child_entries), "partial split"
                assert entry.count == sum(
                    e.count for e in child_entries if e is not None
                ), f"internal {cell} count != children sum"
                assert not entry.users, "internal cell holds users"
            if not cell.is_root:
                parent_entry = self._entry(cell.parent())
                assert parent_entry is not None, "orphan maintained cell"
                assert not parent_entry.is_leaf, "parent is leaf"
        assert leaf_population == len(self._directory), "population drift"
        assert self.cell_count(_ROOT) == len(self._directory)
        # Partition discipline.
        for cell in self._spine.cells:
            assert cell.level < spine_level, f"core cell {cell} in the spine"
        for shard, core in enumerate(self._cores):
            for cell, entry in core.cells.items():
                assert cell.level >= spine_level, (
                    f"spine cell {cell} in shard {shard}"
                )
                assert self.router.shard_of(cell) == shard, (
                    f"shard {shard} holds foreign cell {cell}"
                )
                if entry.is_leaf:
                    for uid in entry.users:
                        assert self._directory.get(uid) == shard, (
                            f"foreign user {uid!r} on shard {shard}'s leaf"
                        )
            for uid, rec in core.users.items():
                assert self._directory.get(uid) == shard, (
                    f"directory disagrees with core {shard} about {uid!r}"
                )
                assert self.router.shard_of(
                    self.grid.cell_of(rec.point)
                ) == shard, f"user {uid!r} homed in the wrong shard"
        if self._table is not None:
            assert len(self._table) == len(self._directory), (
                "gate table size drift"
            )
            for core in self._cores:
                for uid, rec in core.users.items():
                    slot = self._table.slot_of(uid)
                    assert slot is not None, f"{uid!r} missing from gate table"
                    # Exact equality on purpose: the table is a bit-copy
                    # of the record floats; any representational
                    # difference IS the drift this assert catches.
                    assert (
                        float(self._table.xs[slot]) == rec.point.x  # casperlint: ignore[CSP004] bit-copy audit
                        and float(self._table.ys[slot]) == rec.point.y  # casperlint: ignore[CSP004] bit-copy audit
                        and int(self._table.ks[slot]) == rec.profile.k
                        and float(self._table.a_mins[slot]) == rec.profile.a_min  # casperlint: ignore[CSP004] bit-copy audit
                    ), f"gate table stale for {uid!r}"
