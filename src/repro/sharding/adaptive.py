"""Sharded incomplete-pyramid anonymizer (adaptive variant).

Replicates :class:`~repro.anonymizer.adaptive.AdaptiveAnonymizer`'s
*global* quadtree cut across ``N`` shards: cut cells at level ``>= S``
live in the core owning their block, cut cells above the block level
live in the shared spine.  The split/merge decisions are the exact
Section 4.2 predicates (:func:`~repro.anonymizer.adaptive.choose_split`
/ :func:`~repro.anonymizer.adaptive.merge_is_blocked` — shared code,
not a reimplementation), driven by the same global counts, so the
maintained cut is identical for every shard count and cloaks are
byte-for-byte equal to the single-pyramid implementation.

Partition facts that make this sound:

* a cut cell at level ``>= S`` holds only users from its own block,
  hence from one shard — core user sets never mix shards;
* a *spine* leaf (cut above the block level) can cover many blocks, so
  its uid set may span shards; the set lives in the spine while each
  user's record stays in their home core (uids are opaque — no
  coordinate crosses the shard boundary through the spine);
* splitting a spine leaf at level ``S - 1`` materialises block roots
  across several shards — the one maintenance action that fans out,
  and it routes through the spine by construction.

This module is routing glue: the maintenance walk *is* the shared
:class:`~repro.anonymizer.policies.adaptive.CutMaintainer` (its storage
hooks route each cell to its owning core or the spine, and its commit
is the fleet's touched-set epoch rule), the facade is
:class:`~repro.sharding.fleet.ShardedFleet`, and the snapshot/restore
and invariant bodies live in :mod:`repro.sharding.recovery` /
:mod:`repro.sharding.invariants`.
"""

from __future__ import annotations

from repro.anonymizer.adaptive import (
    _Cell,
    _UserRecord,
    choose_split,
    merge_is_blocked,
)
from repro.anonymizer.cells import CellId
from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.policies.adaptive import CutMaintainer
from repro.anonymizer.profile import PrivacyProfile
from repro.anonymizer.soa import UserTable, default_vectorized
from repro.errors import DuplicateUserError
from repro.geometry import Point, Rect
from repro.sharding import invariants, recovery
from repro.sharding.core import AdaptiveShardCore
from repro.sharding.fleet import ShardedFleet

__all__ = ["ShardedAdaptiveAnonymizer"]

_ROOT = CellId(0, 0, 0)

# Re-exported for the worker runtime and tests that patch the shared
# decision functions at this import site.
_ = (choose_split, merge_is_blocked)


class ShardedAdaptiveAnonymizer(ShardedFleet, CutMaintainer):
    """Incomplete-pyramid anonymizer partitioned across ``num_shards``."""

    kind = "adaptive"
    label = "adaptive"

    def __init__(
        self,
        bounds: Rect,
        height: int = 9,
        num_shards: int = 1,
        cloak_cache_size: int = 8192,
        vectorized: bool | None = None,
    ) -> None:
        self._init_fleet(
            bounds, height, num_shards, cloak_cache_size, AdaptiveShardCore
        )
        if vectorized is None:
            vectorized = default_vectorized()
        self.vectorized = vectorized
        # Fleet-wide numpy gate table mirroring every core's user
        # records (uids are opaque slots; no per-shard partitioning
        # needed — split/merge decisions are global anyway).  The cut
        # itself stays dicts: maintenance walks are pointer-chasing by
        # nature, the wins are in the gate scans.
        self._table: UserTable | None = UserTable() if vectorized else None
        # The root is always maintained; it is a spine cell whenever a
        # spine exists at all (S > 0), else it belongs to shard 0.
        if self.router.spine_level > 0:
            self._spine.cells[_ROOT] = _Cell()
        else:
            self._cores[0].cells[_ROOT] = _Cell()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_maintained_cells(self) -> int:
        return len(self._spine.cells) + sum(
            len(core.cells) for core in self._cores
        )

    def cell_count(self, cell: CellId) -> int:
        entry = self._entry(cell)
        return entry.count if entry is not None else 0

    # ------------------------------------------------------------------
    # Routed cell access (the maintainer's storage hooks)
    # ------------------------------------------------------------------
    def _entry(self, cell: CellId) -> _Cell | None:
        if cell.level < self.router.spine_level:
            return self._spine.cells.get(cell)
        return self._cores[self.router.shard_of(cell)].cells.get(cell)

    def _entry_required(self, cell: CellId) -> _Cell:
        entry = self._entry(cell)
        if entry is None:
            raise KeyError(cell)
        return entry

    def _set_entry(self, cell: CellId, entry: _Cell) -> None:
        if cell.level < self.router.spine_level:
            self._spine.cells[cell] = entry
        else:
            self._cores[self.router.shard_of(cell)].cells[cell] = entry

    def _del_entry(self, cell: CellId) -> None:
        if cell.level < self.router.spine_level:
            del self._spine.cells[cell]
        else:
            del self._cores[self.router.shard_of(cell)].cells[cell]

    def _bump_gen(self, cell: CellId) -> None:
        if cell.level < self.router.spine_level:
            self._spine.bump_gen(cell)
        else:
            gens = self._cores[self.router.shard_of(cell)].gens
            gens[cell] = gens.get(cell, 0) + 1

    def _point_of(self, uid: object) -> Point:
        return self._cores[self._directory[uid]].users[uid].point

    def _profile_of(self, uid: object) -> PrivacyProfile:
        return self._cores[self._directory[uid]].users[uid].profile

    def _set_leaf(self, uid: object, leaf: CellId) -> None:
        self._cores[self._directory[uid]].users[uid].leaf = leaf

    # ------------------------------------------------------------------
    # Registration and location updates
    # ------------------------------------------------------------------
    def register(self, uid: object, point: Point, profile: PrivacyProfile) -> None:
        if uid in self._directory:
            raise DuplicateUserError(uid)
        leaf = self.leaf_for_point(point)
        home = self.router.shard_of(self.grid.cell_of(point))
        self._cores[home].users[uid] = _UserRecord(profile, point, leaf)
        self._directory[uid] = home
        if self._table is not None:
            self._table.add(uid, point.x, point.y, profile.k, profile.a_min, 0)
        self._add_to_leaf(uid, leaf)
        self.stats.registrations += 1
        self._notify_op(home, "register")
        self._maybe_split(leaf)

    def deregister(self, uid: object) -> None:
        record = self._record(uid)
        home = self._directory[uid]
        self._remove_from_leaf(uid, record.leaf)
        del self._cores[home].users[uid]
        del self._directory[uid]
        if self._table is not None:
            self._table.remove(uid)
        self.stats.deregistrations += 1
        self._notify_op(home, "deregister")
        self._maybe_merge(record.leaf)

    def set_profile(self, uid: object, profile: PrivacyProfile) -> None:
        record = self._record(uid)
        record.profile = profile
        if self._table is not None:
            slot = self._table.slot_of(uid)
            assert slot is not None
            self._table.ks[slot] = profile.k
            self._table.a_mins[slot] = profile.a_min
        self._maybe_split(record.leaf)
        self._maybe_merge(record.leaf)

    def update(self, uid: object, point: Point) -> int:
        """Process a location update; returns its counter-update cost
        (identical to the single-pyramid cost)."""
        return self._update_routed(uid, point, None)

    def _update_routed(
        self, uid: object, point: Point, home_hint: int | None
    ) -> int:
        record = self._record(uid)
        home = self._directory[uid]
        record.point = point
        if self._table is not None:
            slot = self._table.slot_of(uid)
            assert slot is not None
            self._table.xs[slot] = point.x
            self._table.ys[slot] = point.y
        self.stats.location_updates += 1
        new_leaf = self.leaf_for_point(point)
        new_home = (
            home_hint
            if home_hint is not None
            else self.router.shard_of(self.grid.cell_of(point))
        )
        self._notify_op(home, "update", occupancy=False)
        if new_leaf == record.leaf:
            # Same cut leaf (possibly a spine leaf spanning blocks); the
            # record may still need rehoming even though no count moved.
            if new_home != home:
                self._rehome(uid, record, home, new_home)
            return 0
        old_leaf = record.leaf
        cost = self._move_between_leaves(uid, old_leaf, new_leaf)
        record.leaf = new_leaf
        if new_home != home:
            self._rehome(uid, record, home, new_home)
        self.stats.counter_updates += cost
        self.stats.cell_changes += 1
        self._maybe_split(new_leaf)
        self._maybe_merge(old_leaf)
        return cost

    def update_batch(self, moves: list[tuple[object, Point]]) -> list[int]:
        """Apply a tick's worth of location updates.

        Adaptive updates do *not* commute — split/merge cascades depend
        on the interleaving — so the batch applies strictly in arrival
        order; :meth:`~repro.sharding.router.ShardRouter.route_batch`
        still resolves every move's destination shard in one memoized
        pass, replacing the per-move ``shard_of`` walk :meth:`update`
        would otherwise do, and its grouping is what the process pool
        ships one frame per shard with.
        """
        cells = [self.grid.cell_of(point) for _, point in moves]
        owners, _by_shard = self.router.route_batch(cells)
        return [
            self._update_routed(uid, point, owner)
            for (uid, point), owner in zip(moves, owners)
        ]

    def _rehome(
        self, uid: object, record: _UserRecord, home: int, new_home: int
    ) -> None:
        del self._cores[home].users[uid]
        self._cores[new_home].users[uid] = record
        self._directory[uid] = new_home
        self._notify_op(new_home, "rehome")

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def cloak(self, uid: object) -> CloakedRegion:
        record = self._record(uid)
        return self._cloak_cell(record.profile, record.leaf, self._directory[uid])

    def cloak_location(self, point: Point, profile: PrivacyProfile) -> CloakedRegion:
        leaf = self.leaf_for_point(point)
        shard = self.router.shard_of(self.grid.cell_of(point))
        return self._cloak_cell(profile, leaf, shard)

    # ------------------------------------------------------------------
    # Crash recovery and diagnostics
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        """Atomic whole-fleet snapshot (cut + user tables + directory)."""
        return recovery.adaptive_snapshot(self)

    def restore(self, state: object) -> None:
        """Replace the whole fleet's population state atomically."""
        recovery.adaptive_restore(self, state)

    def snapshot_shard(self, shard: int) -> object:
        """Deep copy of one core's population state."""
        return recovery.copy_adaptive_core(self._cores[shard])

    def restore_shard(self, shard: int, state: object) -> list[object]:
        """Restore one crashed core, reconciling it with the surviving
        fleet; returns the purged uids (see
        :func:`repro.sharding.recovery.adaptive_restore_shard`)."""
        return recovery.adaptive_restore_shard(self, shard, state)

    def check_invariants(self) -> None:
        """Assert incomplete-pyramid + partition consistency."""
        invariants.check_adaptive_fleet(self)
