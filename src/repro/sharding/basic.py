"""Sharded complete-pyramid anonymizer (basic variant).

Implements the exact :class:`~repro.anonymizer.basic.BasicAnonymizer`
interface over ``N`` shard cores and a shared spine: every pyramid
counter lives in exactly one place (the owning core for levels
``>= S``, the spine for levels ``< S``), every user record lives in the
core owning their lowest-level cell, and a directory maps each uid to
its home shard.  The spine is maintained *eagerly* — each update walks
the same cells, in the same order, with the same cost accounting as the
single-pyramid implementation — which is how the byte-for-byte cloak
equivalence across shard counts is achieved rather than approximated:
Algorithm 1 sees identical counters no matter how they are partitioned.

What sharding buys is *invalidation locality*, not fewer counter
writes: a location update confined to one shard's blocks bumps only
that shard's epoch, so every other shard keeps serving memoized cloaks
through the single-probe epoch fast path (see
:mod:`repro.sharding.core`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.anonymizer.basic import _UserRecord
from repro.anonymizer.cache import CloakCache
from repro.anonymizer.cells import CellGrid, CellId, branch_pairs
from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.profile import PrivacyProfile
from repro.anonymizer.stats import MaintenanceStats
from repro.errors import DuplicateUserError, UnknownUserError
from repro.geometry import Point, Rect
from repro.observability import runtime as _telemetry
from repro.anonymizer.soa import MAX_SOA_HEIGHT, default_vectorized, morton_of_xy
from repro.sharding.core import BasicShardCore, SpineState, cache_counters
from repro.sharding.router import ShardRouter
from repro.sharding.soa import MortonSlice
from repro.utils.timer import monotonic

__all__ = ["ShardedBasicAnonymizer"]


@dataclass(frozen=True)
class _CoreSnapshot:
    """Deep copy of one shard core's population state."""

    counts: dict[CellId, int]
    users: dict[object, _UserRecord]


@dataclass(frozen=True)
class _FleetSnapshot:
    """Atomic deep copy of the whole fleet (all cores + spine +
    directory), taken in one call so no cross-shard move can straddle
    it."""

    cores: tuple[_CoreSnapshot, ...]
    spine_counts: dict[CellId, int]
    directory: dict[object, int]


def _copy_core(core: BasicShardCore) -> _CoreSnapshot:
    return _CoreSnapshot(
        counts=dict(core.counts),
        users={
            uid: _UserRecord(rec.profile, rec.point, rec.cell)
            for uid, rec in core.users.items()
        },
    )


class ShardedBasicAnonymizer:
    """Complete-pyramid anonymizer partitioned across ``num_shards``."""

    kind = "basic"

    def __init__(
        self,
        bounds: Rect,
        height: int = 9,
        num_shards: int = 1,
        cloak_cache_size: int = 8192,
        vectorized: bool | None = None,
    ) -> None:
        self.grid = CellGrid(bounds, height)
        self.stats = MaintenanceStats()
        self.router = ShardRouter(num_shards, height)
        self._spine = SpineState(
            cache=CloakCache(cloak_cache_size, shard_label="spine")
        )
        if vectorized is None:
            vectorized = default_vectorized() and height <= MAX_SOA_HEIGHT
        self.vectorized = vectorized
        self._cores = [
            BasicShardCore(
                index=i, cache=CloakCache(cloak_cache_size, shard_label=str(i))
            )
            for i in range(num_shards)
        ]
        if vectorized:
            # Counters as contiguous Morton slices (the spine stays a
            # dict: it holds at most 4**S / 3 cells, far too few to be
            # worth arrays).  Gens share the slice layout so the batch
            # kernel scatters both with one index computation.
            spine_level = self.router.spine_level
            for core in self._cores:
                lo, hi = self.router.block_rank_range(core.index)
                core.counts = MortonSlice(height, spine_level, lo, hi)
                core.gens = MortonSlice(height, spine_level, lo, hi)
        self._directory: dict[object, int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> Rect:
        return self.grid.bounds

    @property
    def height(self) -> int:
        return self.grid.height

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    @property
    def num_users(self) -> int:
        return len(self._directory)

    def __contains__(self, uid: object) -> bool:
        return uid in self._directory

    def shard_of_user(self, uid: object) -> int:
        """The shard currently homing ``uid`` (the routing seam the
        server facade exposes)."""
        try:
            return self._directory[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    def shard_occupancy(self) -> list[int]:
        """Registered users homed per shard, indexed by shard id."""
        return [len(core.users) for core in self._cores]

    def cache_stats(self) -> dict[str, int]:
        """Aggregate cloak-cache traffic across all cores + spine."""
        caches = [core.cache for core in self._cores] + [self._spine.cache]
        return {
            "hits": sum(c.hits for c in caches),
            "misses": sum(c.misses for c in caches),
            "invalidations": sum(c.invalidations for c in caches),
            "evictions": sum(c.evictions for c in caches),
        }

    def cache_stats_per_shard(self) -> dict[str, dict[str, int]]:
        """Cloak-cache traffic per shard core (plus the spine cache),
        keyed ``"0"``..``"N-1"`` / ``"spine"`` — the unblended numbers
        the ``shard_scaling`` bench and the ``metrics`` CLI report."""
        stats = {
            str(core.index): cache_counters(core.cache)
            for core in self._cores
        }
        stats["spine"] = cache_counters(self._spine.cache)
        return stats

    def profile_of(self, uid: object) -> PrivacyProfile:
        return self._record(uid).profile

    def location_of(self, uid: object) -> Point:
        return self._record(uid).point

    def cell_count(self, cell: CellId) -> int:
        """The number of users currently inside ``cell`` (routed to the
        owning core, or to the spine above the block level)."""
        if cell.level < self.router.spine_level:
            return self._spine.counts.get(cell, 0)
        return self._cores[self.router.shard_of(cell)].counts.get(cell, 0)

    def users_in_rect(self, rect: Rect) -> int:
        """Exact population of an arbitrary rectangle (verification
        aid; scans every core)."""
        return sum(
            1
            for core in self._cores
            for rec in core.users.values()
            if rect.contains_point(rec.point)
        )

    def _record(self, uid: object) -> _UserRecord:
        try:
            return self._cores[self._directory[uid]].users[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    # ------------------------------------------------------------------
    # Registration and location updates
    # ------------------------------------------------------------------
    def register(self, uid: object, point: Point, profile: PrivacyProfile) -> None:
        if uid in self._directory:
            raise DuplicateUserError(uid)
        cell = self.grid.cell_of(point)
        shard = self.router.shard_of(cell)
        self._cores[shard].users[uid] = _UserRecord(profile, point, cell)
        self._directory[uid] = shard
        self._apply_delta(cell, +1)
        self.stats.registrations += 1
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_shard_op(obs, shard, "register")
            _telemetry.record_shard_occupancy(obs, self.shard_occupancy())

    def deregister(self, uid: object) -> None:
        record = self._record(uid)
        shard = self._directory[uid]
        self._apply_delta(record.cell, -1)
        del self._cores[shard].users[uid]
        del self._directory[uid]
        self.stats.deregistrations += 1
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_shard_op(obs, shard, "deregister")
            _telemetry.record_shard_occupancy(obs, self.shard_occupancy())

    def set_profile(self, uid: object, profile: PrivacyProfile) -> None:
        self._record(uid).profile = profile

    def update(self, uid: object, point: Point) -> int:
        """Process a location update; returns the number of counter
        updates it required (identical to the single-pyramid cost)."""
        record = self._record(uid)
        shard = self._directory[uid]
        new_cell = self.grid.cell_of(point)
        record.point = point
        self.stats.location_updates += 1
        if new_cell == record.cell:
            return 0
        ancestor_level = self.grid.common_ancestor_level(record.cell, new_cell)
        cost = 0
        obs = _telemetry.active()
        if not self.router.crosses_boundary(ancestor_level):
            # Confined move: both branches stay strictly below the spine
            # inside the record's level-S block, so every delta lands on
            # the home core — no per-cell shard routing, no boundary or
            # spine effects, no rehome.
            core = self._cores[shard]
            for old, new in branch_pairs(record.cell, new_cell, ancestor_level):
                core.apply(old, -1)
                core.apply(new, +1)
                cost += 2
            record.cell = new_cell
            core.epoch += 1
            if obs is not None:
                _telemetry.record_shard_op(obs, shard, "update")
        else:
            for old, new in branch_pairs(record.cell, new_cell, ancestor_level):
                self._bump(old, -1)
                self._bump(new, +1)
                cost += 2
            record.cell = new_cell
            self._cores[shard].epoch += 1
            if obs is not None:
                _telemetry.record_shard_op(obs, shard, "update")
            # The move left its level-S block: spine/block-root counts
            # changed, and the user may need rehoming to another core.
            self._spine.boundary_epoch += 1
            new_shard = self.router.shard_of(new_cell)
            if new_shard != shard:
                self._cores[new_shard].epoch += 1
                del self._cores[shard].users[uid]
                self._cores[new_shard].users[uid] = record
                self._directory[uid] = new_shard
                if obs is not None:
                    _telemetry.record_shard_op(obs, new_shard, "rehome")
                    _telemetry.record_shard_occupancy(
                        obs, self.shard_occupancy()
                    )
        self.stats.counter_updates += cost
        self.stats.cell_changes += 1
        return cost

    def update_batch(self, moves: list[tuple[object, Point]]) -> list[int]:
        """Apply a tick's worth of location updates, routed per shard in
        one :meth:`~repro.sharding.router.ShardRouter.route_batch` pass.

        Per-shard groups are applied in shard order.  Distinct users'
        updates commute — counter deltas, generation bumps and epoch
        advances are all additive and no cloak interleaves — so the end
        state and the returned per-move costs are identical to the
        sequential loop.  A batch naming the same user twice is
        order-sensitive and falls back to arrival order.
        """
        if len({uid for uid, _ in moves}) != len(moves):
            return [self.update(uid, point) for uid, point in moves]
        cells = [self.grid.cell_of(point) for _, point in moves]
        if (
            self.vectorized
            and len(moves) >= 2
            and _telemetry.active() is None
            and all(uid in self._directory for uid, _ in moves)
        ):
            return self._update_batch_vec(moves, cells)
        _owners, by_shard = self.router.route_batch(cells)
        costs = [0] * len(moves)
        for shard in sorted(by_shard):
            for index in by_shard[shard]:
                uid, point = moves[index]
                costs[index] = self.update(uid, point)
        return costs

    def _update_batch_vec(
        self, moves: list[tuple[object, Point]], cells: list[CellId]
    ) -> list[int]:
        """The batched-update kernel: confined moves (the common case)
        become per-level ``np.add.at`` scatters on the home core's
        Morton slices; boundary-crossing moves take the scalar routed
        path.  All uids are distinct and known, and all points are in
        bounds — checked by the caller — so deltas, gens and epochs
        commute and the end state matches the sequential loop."""
        n = len(moves)
        records = [self._record(uid) for uid, _ in moves]
        height = self.height
        spine_level = self.router.spine_level
        old_ms = np.fromiter(
            (morton_of_xy(rec.cell.ix, rec.cell.iy) for rec in records),
            dtype=np.int64, count=n,
        )
        new_ms = np.fromiter(
            (morton_of_xy(cell.ix, cell.iy) for cell in cells),
            dtype=np.int64, count=n,
        )
        diff = old_ms ^ new_ms
        _mant, exp = np.frexp(diff.astype(np.float64))
        ancestor_level = height - ((exp.astype(np.int64) + 1) >> 1)
        costs = [0] * n
        by_home: dict[int, list[int]] = {}
        for index, (uid, point) in enumerate(moves):
            if not diff[index]:
                # Same lowest-level cell: point refresh only.
                records[index].point = point
                self.stats.location_updates += 1
                continue
            if ancestor_level[index] < spine_level:
                # Boundary-crossing move: spine counters, boundary
                # epoch and possibly a rehome — the scalar path handles
                # all of it, cost accounting included.
                costs[index] = self.update(uid, point)
                continue
            by_home.setdefault(self._directory[uid], []).append(index)
        for shard in sorted(by_home):
            group = np.asarray(by_home[shard], dtype=np.int64)
            core = self._cores[shard]
            counts = core.counts
            gens = core.gens
            assert isinstance(counts, MortonSlice)
            assert isinstance(gens, MortonSlice)
            old_group = old_ms[group]
            new_group = new_ms[group]
            ca_group = ancestor_level[group]
            deepest_shared = int(ca_group.min())
            for level in range(height, deepest_shared, -1):
                mask = ca_group < level
                shift = 2 * (height - level)
                offset = counts.level_offset(level)
                old_idx = (old_group[mask] >> shift) - offset
                new_idx = (new_group[mask] >> shift) - offset
                count_arr = counts.level_array(level)
                gen_arr = gens.level_array(level)
                np.subtract.at(count_arr, old_idx, 1)
                np.add.at(count_arr, new_idx, 1)
                np.add.at(gen_arr, old_idx, 1)
                np.add.at(gen_arr, new_idx, 1)
            group_costs = 2 * (height - ca_group)
            for index, cost in zip(by_home[shard], group_costs.tolist()):
                uid, point = moves[index]
                record = records[index]
                record.point = point
                record.cell = cells[index]
                costs[index] = cost
            # One epoch bump per cell-changing move, as in the scalar
            # walk (advances are additive across a tick).
            core.epoch += len(group)
            self.stats.location_updates += len(group)
            self.stats.counter_updates += int(group_costs.sum())
            self.stats.cell_changes += len(group)
        return costs

    def _apply_delta(self, cell: CellId, delta: int) -> None:
        for ancestor in self.grid.path_to_root(cell):
            self._bump(ancestor, delta)
        # Register/deregister paths always reach the root, so boundary
        # state (levels <= S) always changes.
        self._cores[self.router.shard_of(cell)].epoch += 1
        self._spine.boundary_epoch += 1
        self.stats.counter_updates += cell.level + 1

    def _bump(self, cell: CellId, delta: int) -> None:
        if cell.level < self.router.spine_level:
            self._spine.apply(cell, delta)
        else:
            self._cores[self.router.shard_of(cell)].apply(cell, delta)

    def _gen_of(self, cell: CellId) -> int:
        if cell.level < self.router.spine_level:
            return self._spine.gens.get(cell, 0)
        return self._cores[self.router.shard_of(cell)].gens.get(cell, 0)

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def cloak(self, uid: object) -> CloakedRegion:
        record = self._record(uid)
        return self._cloak_cell(record.profile, record.cell, self._directory[uid])

    def cloak_location(self, point: Point, profile: PrivacyProfile) -> CloakedRegion:
        cell = self.grid.cell_of(point)
        return self._cloak_cell(profile, cell, self.router.shard_of(cell))

    def _cloak_cell(
        self, profile: PrivacyProfile, cell: CellId, shard: int
    ) -> CloakedRegion:
        self.stats.cloak_requests += 1
        core = self._cores[shard]
        epoch = (core.epoch, self._spine.boundary_epoch)
        obs = _telemetry.active()
        if obs is None:
            return core.cache.cloak(
                self.grid, self.cell_count, self._gen_of, epoch, profile, cell
            )
        start = monotonic()
        region = core.cache.cloak(
            self.grid, self.cell_count, self._gen_of, epoch, profile, cell
        )
        _telemetry.record_cloak(
            obs, "basic", monotonic() - start, region.area,
            profile.a_min, region.achieved_k, profile.k,
        )
        _telemetry.record_shard_cloak(obs, shard, self._route_of(region))
        return region

    def _route_of(self, region: CloakedRegion) -> str:
        settled = min(c.level for c in region.cells)
        if settled > self.router.spine_level:
            return "local"
        if settled == self.router.spine_level:
            return "boundary"
        return "spine"

    # ------------------------------------------------------------------
    # Crash recovery — whole fleet and per shard
    # ------------------------------------------------------------------
    def _load_core_counts(
        self, core: BasicShardCore, counts: Mapping[CellId, int]
    ) -> None:
        """Install a plain-dict counter snapshot into ``core``,
        rebuilding the Morton-slice arrays in place on the vectorized
        backend (snapshots are backend-independent dicts)."""
        if isinstance(core.counts, MortonSlice):
            core.counts.load(counts)
        else:
            core.counts = dict(counts)

    def snapshot(self) -> object:
        """Atomic whole-fleet snapshot (all cores + spine + directory).
        Generations, epochs and statistics are excluded: monotone
        observability state, exactly as in the single-pyramid
        implementations."""
        return _FleetSnapshot(
            cores=tuple(_copy_core(core) for core in self._cores),
            spine_counts=dict(self._spine.counts),
            directory=dict(self._directory),
        )

    def restore(self, state: object) -> None:
        """Replace the whole fleet's population state with a
        :meth:`snapshot` copy (re-copied, so one snapshot serves many
        crashes).  Every epoch advances and every cache drops."""
        if not isinstance(state, _FleetSnapshot):
            raise TypeError("not a ShardedBasicAnonymizer snapshot")
        if len(state.cores) != self.num_shards:
            raise ValueError("snapshot shard count mismatch")
        for core, snap in zip(self._cores, state.cores):
            self._load_core_counts(core, snap.counts)
            core.users = {
                uid: _UserRecord(rec.profile, rec.point, rec.cell)
                for uid, rec in snap.users.items()
            }
            core.epoch += 1
            core.cache.clear()
        self._spine.counts = dict(state.spine_counts)
        self._spine.boundary_epoch += 1
        self._spine.cache.clear()
        self._directory = dict(state.directory)

    def snapshot_shard(self, shard: int) -> object:
        """Deep copy of one core's population state."""
        return _copy_core(self._cores[shard])

    def restore_shard(self, shard: int, state: object) -> list[object]:
        """Restore one crashed core from a :meth:`snapshot_shard` copy,
        reconciling it with the surviving fleet.

        Users the directory says have since moved *away* are dropped
        from the restored copy (the destination shard's live record
        wins); directory entries pointing here with no restored record
        are purged and returned — those users lost state and heal
        through the normal re-registration path.  Counters are rebuilt
        from the surviving records and the spine is recomputed from all
        cores' block contributions, so fleet-wide invariants hold
        immediately after the restore.
        """
        if not isinstance(state, _CoreSnapshot):
            raise TypeError("not a ShardedBasicAnonymizer shard snapshot")
        core = self._cores[shard]
        users = {
            uid: _UserRecord(rec.profile, rec.point, rec.cell)
            for uid, rec in state.users.items()
            if self._directory.get(uid) == shard
        }
        purged = [
            uid
            for uid, home in self._directory.items()
            if home == shard and uid not in users
        ]
        for uid in purged:
            del self._directory[uid]
        # Rebuild this core's counters from the surviving records.
        spine_level = self.router.spine_level
        counts: dict[CellId, int] = {}
        for rec in users.values():
            cell = rec.cell
            while cell.level >= spine_level:
                counts[cell] = counts.get(cell, 0) + 1
                if cell.level == 0:
                    break
                cell = cell.parent()
        for cell in set(core.counts) | set(counts):
            if core.counts.get(cell, 0) != counts.get(cell, 0):
                core.gens[cell] = core.gens.get(cell, 0) + 1
        self._load_core_counts(core, counts)
        core.users = users
        core.epoch += 1
        core.cache.clear()
        self._rebuild_spine_counts()
        self._spine.boundary_epoch += 1
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_shard_op(obs, shard, "restore")
            _telemetry.record_shard_occupancy(obs, self.shard_occupancy())
        return purged

    def _rebuild_spine_counts(self) -> None:
        """Recompute spine counts from every core's block populations,
        bumping generations only where the count actually changed."""
        new_counts: dict[CellId, int] = {}
        for core in self._cores:
            for block in self.router.blocks_of(core.index):
                population = core.counts.get(block, 0)
                if not population:
                    continue
                cell = block
                while cell.level > 0:
                    cell = cell.parent()
                    new_counts[cell] = new_counts.get(cell, 0) + population
        for cell in set(self._spine.counts) | set(new_counts):
            if self._spine.counts.get(cell, 0) != new_counts.get(cell, 0):
                self._spine.bump_gen(cell)
        self._spine.counts = new_counts

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert fleet-wide pyramid + partition consistency."""
        spine_level = self.router.spine_level
        expected: list[dict[CellId, int]] = [dict() for _ in self._cores]
        expected_spine: dict[CellId, int] = {}
        population = 0
        for shard, core in enumerate(self._cores):
            for uid, rec in core.users.items():
                assert self._directory.get(uid) == shard, (
                    f"directory disagrees with core {shard} about {uid!r}"
                )
                assert rec.cell == self.grid.cell_of(rec.point), (
                    f"stale cell for {uid!r}"
                )
                assert self.router.shard_of(rec.cell) == shard, (
                    f"user {uid!r} homed in the wrong shard"
                )
                population += 1
                for ancestor in self.grid.path_to_root(rec.cell):
                    if ancestor.level < spine_level:
                        expected_spine[ancestor] = (
                            expected_spine.get(ancestor, 0) + 1
                        )
                    else:
                        expected[shard][ancestor] = (
                            expected[shard].get(ancestor, 0) + 1
                        )
        assert population == len(self._directory), "directory population drift"
        for shard, core in enumerate(self._cores):
            assert core.counts == expected[shard], (
                f"shard {shard} counters inconsistent with its user table"
            )
            for cell in core.counts:
                assert cell.level >= spine_level, (
                    f"shard {shard} holds spine cell {cell}"
                )
                assert self.router.shard_of(cell) == shard, (
                    f"shard {shard} holds foreign cell {cell}"
                )
        assert self._spine.counts == expected_spine, (
            "spine counters inconsistent with core populations"
        )
        root_count = self.cell_count(CellId(0, 0, 0))
        assert root_count == len(self._directory), "root count != population"
