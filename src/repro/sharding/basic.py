"""Sharded complete-pyramid anonymizer (basic variant).

Implements the exact :class:`~repro.anonymizer.basic.BasicAnonymizer`
interface over ``N`` shard cores and a shared spine: every pyramid
counter lives in exactly one place (the owning core for levels
``>= S``, the spine for levels ``< S``), every user record lives in the
core owning their lowest-level cell, and a directory maps each uid to
its home shard.  The spine is maintained *eagerly* — each update walks
the same cells, in the same order, with the same cost accounting as the
single-pyramid implementation — which is how the byte-for-byte cloak
equivalence across shard counts is achieved rather than approximated:
Algorithm 1 sees identical counters no matter how they are partitioned.

What sharding buys is *invalidation locality*, not fewer counter
writes: a location update confined to one shard's blocks bumps only
that shard's epoch, so every other shard keeps serving memoized cloaks
through the single-probe epoch fast path (see
:mod:`repro.sharding.core`).

This module is routing glue: the maintenance walk is the shared
:class:`~repro.anonymizer.policies.basic.CompletePyramidMaintainer`
(hooked up to route each touched cell to its owning core or the spine),
the facade is :class:`~repro.sharding.fleet.ShardedFleet`, and the
snapshot/restore and invariant bodies live in
:mod:`repro.sharding.recovery` / :mod:`repro.sharding.invariants`.
"""

from __future__ import annotations

import numpy as np

from repro.anonymizer.basic import _UserRecord
from repro.anonymizer.cells import CellId, branch_pairs
from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.policies.basic import CompletePyramidMaintainer
from repro.anonymizer.profile import PrivacyProfile
from repro.anonymizer.soa import MAX_SOA_HEIGHT, default_vectorized, morton_of_xy
from repro.errors import DuplicateUserError
from repro.geometry import Point, Rect
from repro.observability import runtime as _telemetry
from repro.sharding import invariants, recovery
from repro.sharding.core import BasicShardCore
from repro.sharding.fleet import ShardedFleet
from repro.sharding.soa import MortonSlice, scatter_confined_moves

__all__ = ["ShardedBasicAnonymizer"]


class ShardedBasicAnonymizer(ShardedFleet, CompletePyramidMaintainer):
    """Complete-pyramid anonymizer partitioned across ``num_shards``."""

    kind = "basic"
    label = "basic"

    def __init__(
        self,
        bounds: Rect,
        height: int = 9,
        num_shards: int = 1,
        cloak_cache_size: int = 8192,
        vectorized: bool | None = None,
    ) -> None:
        self._init_fleet(
            bounds, height, num_shards, cloak_cache_size, BasicShardCore
        )
        if vectorized is None:
            vectorized = default_vectorized() and height <= MAX_SOA_HEIGHT
        self.vectorized = vectorized
        if vectorized:
            # Counters as contiguous Morton slices (the spine stays a
            # dict: it holds at most 4**S / 3 cells, far too few to be
            # worth arrays).  Gens share the slice layout so the batch
            # kernel scatters both with one index computation.
            spine_level = self.router.spine_level
            for core in self._cores:
                lo, hi = self.router.block_rank_range(core.index)
                core.counts = MortonSlice(height, spine_level, lo, hi)
                core.gens = MortonSlice(height, spine_level, lo, hi)

    # ------------------------------------------------------------------
    # Routed counter access (the maintainer's storage hook)
    # ------------------------------------------------------------------
    def cell_count(self, cell: CellId) -> int:
        """The number of users currently inside ``cell`` (routed to the
        owning core, or to the spine above the block level)."""
        if cell.level < self.router.spine_level:
            return self._spine.counts.get(cell, 0)
        return self._cores[self.router.shard_of(cell)].counts.get(cell, 0)

    def _apply_cell(self, cell: CellId, delta: int) -> None:
        if cell.level < self.router.spine_level:
            self._spine.apply(cell, delta)
        else:
            self._cores[self.router.shard_of(cell)].apply(cell, delta)

    # ------------------------------------------------------------------
    # Registration and location updates
    # ------------------------------------------------------------------
    def register(self, uid: object, point: Point, profile: PrivacyProfile) -> None:
        if uid in self._directory:
            raise DuplicateUserError(uid)
        cell = self.grid.cell_of(point)
        shard = self.router.shard_of(cell)
        self._cores[shard].users[uid] = _UserRecord(profile, point, cell)
        self._directory[uid] = shard
        self._apply_delta(cell, +1)
        self.stats.registrations += 1
        self._notify_op(shard, "register")

    def deregister(self, uid: object) -> None:
        record = self._record(uid)
        shard = self._directory[uid]
        self._apply_delta(record.cell, -1)
        del self._cores[shard].users[uid]
        del self._directory[uid]
        self.stats.deregistrations += 1
        self._notify_op(shard, "deregister")

    def set_profile(self, uid: object, profile: PrivacyProfile) -> None:
        self._record(uid).profile = profile

    def update(self, uid: object, point: Point) -> int:
        """Process a location update; returns the number of counter
        updates it required (identical to the single-pyramid cost)."""
        record = self._record(uid)
        shard = self._directory[uid]
        new_cell = self.grid.cell_of(point)
        record.point = point
        self.stats.location_updates += 1
        if new_cell == record.cell:
            return 0
        ancestor_level = self.grid.common_ancestor_level(record.cell, new_cell)
        if not self.router.crosses_boundary(ancestor_level):
            # Confined move: both branches stay strictly below the spine
            # inside the record's level-S block, so every delta lands on
            # the home core — no per-cell shard routing, no boundary or
            # spine effects, no rehome.
            core = self._cores[shard]
            cost = 0
            for old, new in branch_pairs(record.cell, new_cell, ancestor_level):
                core.apply(old, -1)
                core.apply(new, +1)
                cost += 2
            record.cell = new_cell
            core.epoch += 1
            self._notify_op(shard, "update", occupancy=False)
        else:
            # Crossing move: per-cell routing through the shared walk;
            # the commit bumps every touched core and the boundary
            # epoch, then the user may need rehoming to another core.
            cost = self._apply_branches(record.cell, new_cell, ancestor_level)
            record.cell = new_cell
            self._notify_op(shard, "update", occupancy=False)
            new_shard = self.router.shard_of(new_cell)
            if new_shard != shard:
                del self._cores[shard].users[uid]
                self._cores[new_shard].users[uid] = record
                self._directory[uid] = new_shard
                self._notify_op(new_shard, "rehome")
        self.stats.counter_updates += cost
        self.stats.cell_changes += 1
        return cost

    def update_batch(self, moves: list[tuple[object, Point]]) -> list[int]:
        """Apply a tick's worth of location updates, routed per shard in
        one :meth:`~repro.sharding.router.ShardRouter.route_batch` pass.

        Per-shard groups are applied in shard order.  Distinct users'
        updates commute — counter deltas, generation bumps and epoch
        advances are all additive and no cloak interleaves — so the end
        state and the returned per-move costs are identical to the
        sequential loop.  A batch naming the same user twice is
        order-sensitive and falls back to arrival order.
        """
        if len({uid for uid, _ in moves}) != len(moves):
            return [self.update(uid, point) for uid, point in moves]
        cells = [self.grid.cell_of(point) for _, point in moves]
        if (
            self.vectorized
            and len(moves) >= 2
            and _telemetry.active() is None
            and all(uid in self._directory for uid, _ in moves)
        ):
            return self._update_batch_vec(moves, cells)
        _owners, by_shard = self.router.route_batch(cells)
        costs = [0] * len(moves)
        for shard in sorted(by_shard):
            for index in by_shard[shard]:
                uid, point = moves[index]
                costs[index] = self.update(uid, point)
        return costs

    def _update_batch_vec(
        self, moves: list[tuple[object, Point]], cells: list[CellId]
    ) -> list[int]:
        """The batched-update kernel: confined moves (the common case)
        become per-level ``np.add.at`` scatters on the home core's
        Morton slices (:func:`~repro.sharding.soa.scatter_confined_moves`);
        boundary-crossing moves take the scalar routed path.  All uids
        are distinct and known, and all points are in bounds — checked
        by the caller — so deltas, gens and epochs commute and the end
        state matches the sequential loop."""
        n = len(moves)
        records = [self._record(uid) for uid, _ in moves]
        height = self.height
        spine_level = self.router.spine_level
        old_ms = np.fromiter(
            (morton_of_xy(rec.cell.ix, rec.cell.iy) for rec in records),
            dtype=np.int64, count=n,
        )
        new_ms = np.fromiter(
            (morton_of_xy(cell.ix, cell.iy) for cell in cells),
            dtype=np.int64, count=n,
        )
        diff = old_ms ^ new_ms
        _mant, exp = np.frexp(diff.astype(np.float64))
        ancestor_level = height - ((exp.astype(np.int64) + 1) >> 1)
        costs = [0] * n
        by_home: dict[int, list[int]] = {}
        for index, (uid, point) in enumerate(moves):
            if not diff[index]:
                # Same lowest-level cell: point refresh only.
                records[index].point = point
                self.stats.location_updates += 1
                continue
            if ancestor_level[index] < spine_level:
                # Boundary-crossing move: spine counters, boundary
                # epoch and possibly a rehome — the scalar path handles
                # all of it, cost accounting included.
                costs[index] = self.update(uid, point)
                continue
            by_home.setdefault(self._directory[uid], []).append(index)
        for shard in sorted(by_home):
            group = np.asarray(by_home[shard], dtype=np.int64)
            core = self._cores[shard]
            counts = core.counts
            gens = core.gens
            assert isinstance(counts, MortonSlice)
            assert isinstance(gens, MortonSlice)
            group_costs = scatter_confined_moves(
                counts, gens, old_ms[group], new_ms[group],
                ancestor_level[group], height,
            )
            for index, cost in zip(by_home[shard], group_costs.tolist()):
                uid, point = moves[index]
                record = records[index]
                record.point = point
                record.cell = cells[index]
                costs[index] = cost
            # One epoch bump per cell-changing move, as in the scalar
            # walk (advances are additive across a tick).
            core.epoch += len(group)
            self.stats.location_updates += len(group)
            self.stats.counter_updates += int(group_costs.sum())
            self.stats.cell_changes += len(group)
        return costs

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def cloak(self, uid: object) -> CloakedRegion:
        record = self._record(uid)
        return self._cloak_cell(record.profile, record.cell, self._directory[uid])

    def cloak_location(self, point: Point, profile: PrivacyProfile) -> CloakedRegion:
        cell = self.grid.cell_of(point)
        return self._cloak_cell(profile, cell, self.router.shard_of(cell))

    # ------------------------------------------------------------------
    # Crash recovery and diagnostics
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        """Atomic whole-fleet snapshot (all cores + spine + directory).
        Generations, epochs and statistics are excluded: monotone
        observability state, exactly as in the single-pyramid
        implementations."""
        return recovery.basic_snapshot(self)

    def restore(self, state: object) -> None:
        """Replace the whole fleet's population state with a
        :meth:`snapshot` copy (re-copied, so one snapshot serves many
        crashes).  Every epoch advances and every cache drops."""
        recovery.basic_restore(self, state)

    def snapshot_shard(self, shard: int) -> object:
        """Deep copy of one core's population state."""
        return recovery.copy_basic_core(self._cores[shard])

    def restore_shard(self, shard: int, state: object) -> list[object]:
        """Restore one crashed core from a :meth:`snapshot_shard` copy,
        reconciling it with the surviving fleet; returns the purged
        uids (see :func:`repro.sharding.recovery.basic_restore_shard`)."""
        return recovery.basic_restore_shard(self, shard, state)

    def check_invariants(self) -> None:
        """Assert fleet-wide pyramid + partition consistency."""
        invariants.check_basic_fleet(self)
