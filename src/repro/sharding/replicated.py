"""Generic sharded deployment for policies without a native fleet.

The pyramid policies ship purpose-built sharded implementations
(:mod:`repro.sharding.basic` / :mod:`repro.sharding.adaptive`) whose
cores partition the actual counter state.  Any other registered
:class:`~repro.anonymizer.policy.CloakingPolicy` — the related-work
baselines, or a user-registered cloaker — still has to run behind
``make_sharded`` and the parallel worker runtime.  This module is that
adapter: it wraps one *whole* single-instance policy per replica and
adds the sharded surface on top (shard directory, occupancy, per-shard
cache stats, shard-tagged snapshots), using broadcast replication —
every worker applies every mutation, so every replica answers every
question.  That is exactly the ``replication="broadcast"`` contract the
parallel runtime already implements for the adaptive pyramid, which is
why a policy gains process parallelism from nothing but its registry
entry.

Shard homes are geometric (the level-``S`` block of the user's lowest
level cell, same as the fleets) so occupancy, routing and telemetry
stay meaningful even though the wrapped policy keeps no per-shard
state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymizer.cells import CellGrid, CellId
from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.policy import CloakingPolicy, PolicySpec
from repro.anonymizer.profile import PrivacyProfile
from repro.anonymizer.stats import MaintenanceStats
from repro.errors import UnknownUserError
from repro.geometry import Point, Rect
from repro.observability import runtime as _telemetry
from repro.sharding.core import cache_counters
from repro.sharding.router import ShardRouter

__all__ = ["ReplicatedShardedAnonymizer"]

_CACHE_KEYS = ("hits", "misses", "invalidations", "evictions")


@dataclass(frozen=True)
class _ReplicatedSnapshot:
    policy: str
    inner: object
    directory: dict[object, int]


class ReplicatedShardedAnonymizer:
    """One whole-policy replica with the sharded-anonymizer surface.

    ``shard`` tags which worker this replica serves (its cloak-cache
    traffic reports under that key); ``None`` for the in-process
    deployment, which owns every shard at once.
    """

    def __init__(
        self,
        spec: PolicySpec,
        bounds: Rect,
        height: int = 9,
        num_shards: int = 1,
        cloak_cache_size: int = 8192,
        vectorized: bool | None = None,
        shard: int | None = None,
    ) -> None:
        self.kind = spec.name
        self.label = spec.name
        self.spec = spec
        self.grid = CellGrid(bounds, height)
        self.router = ShardRouter(num_shards, height)
        self.shard = shard
        self._inner: CloakingPolicy = spec.single(
            bounds, height, cloak_cache_size, vectorized
        )
        self._directory: dict[object, int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bounds(self) -> Rect:
        return self.grid.bounds

    @property
    def height(self) -> int:
        return self.grid.height

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    @property
    def num_users(self) -> int:
        return self._inner.num_users

    def __contains__(self, uid: object) -> bool:
        return uid in self._inner

    @property
    def stats(self) -> MaintenanceStats:
        return self._inner.stats

    @stats.setter
    def stats(self, value: MaintenanceStats) -> None:
        self._inner.stats = value

    def shard_of_user(self, uid: object) -> int:
        try:
            return self._directory[uid]
        except KeyError:
            raise UnknownUserError(uid) from None

    def shard_occupancy(self) -> list[int]:
        occupancy = [0] * self.num_shards
        for home in self._directory.values():
            occupancy[home] += 1
        return occupancy

    def profile_of(self, uid: object) -> PrivacyProfile:
        return self._inner.profile_of(uid)

    def location_of(self, uid: object) -> Point:
        return self._inner.location_of(uid)

    def users_in_rect(self, rect: Rect) -> int:
        return self._inner.users_in_rect(rect)

    def cell_count(self, cell: CellId) -> int:
        """Population of one grid cell.  Most wrapped policies keep no
        cell index, so this falls back to a rect count."""
        counter = getattr(self._inner, "cell_count", None)
        if counter is not None:
            return counter(cell)
        return self._inner.users_in_rect(self.grid.cell_rect(cell))

    def cache_stats(self) -> dict[str, int]:
        cache = getattr(self._inner, "cloak_cache", None)
        if cache is not None:
            return cache_counters(cache)
        return dict.fromkeys(_CACHE_KEYS, 0)

    def cache_stats_per_shard(self) -> dict[str, dict[str, int]]:
        """Per-shard traffic in the fleet shape (``"0"``..``"N-1"`` +
        ``"spine"``).  The single wrapped cache reports under this
        replica's worker shard; everything else is zero."""
        stats = {
            str(shard): dict.fromkeys(_CACHE_KEYS, 0)
            for shard in range(self.num_shards)
        }
        stats["spine"] = dict.fromkeys(_CACHE_KEYS, 0)
        if self.shard is not None:
            stats[str(self.shard)] = self.cache_stats()
        return stats

    def _home_of(self, point: Point) -> int:
        return self.router.shard_of(self.grid.cell_of(point))

    # ------------------------------------------------------------------
    # Population maintenance
    # ------------------------------------------------------------------
    def register(self, uid: object, point: Point, profile: PrivacyProfile) -> None:
        self._inner.register(uid, point, profile)
        shard = self._home_of(point)
        self._directory[uid] = shard
        self._notify_op(shard, "register")

    def deregister(self, uid: object) -> None:
        self._inner.deregister(uid)
        shard = self._directory.pop(uid)
        self._notify_op(shard, "deregister")

    def set_profile(self, uid: object, profile: PrivacyProfile) -> None:
        self._inner.set_profile(uid, profile)

    def update(self, uid: object, point: Point) -> int:
        home = self.shard_of_user(uid)
        cost = self._inner.update(uid, point)
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_shard_op(obs, home, "update")
        new_home = self._home_of(point)
        if new_home != home:
            self._directory[uid] = new_home
            self._notify_op(new_home, "rehome")
        return cost

    def update_batch(self, moves: list[tuple[object, Point]]) -> list[int]:
        return [self.update(uid, point) for uid, point in moves]

    def _notify_op(self, shard: int, op: str) -> None:
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_shard_op(obs, shard, op)
            _telemetry.record_shard_occupancy(obs, self.shard_occupancy())

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------
    def cloak(self, uid: object) -> CloakedRegion:
        shard = self.shard_of_user(uid)
        region = self._inner.cloak(uid)
        self._note_cloak(shard, region)
        return region

    def cloak_location(self, point: Point, profile: PrivacyProfile) -> CloakedRegion:
        shard = self._home_of(point)
        region = self._inner.cloak_location(point, profile)
        self._note_cloak(shard, region)
        return region

    def _note_cloak(self, shard: int, region: CloakedRegion) -> None:
        obs = _telemetry.active()
        if obs is not None:
            _telemetry.record_shard_cloak(obs, shard, self._route_of(region))

    def _route_of(self, region: CloakedRegion) -> str:
        if not region.cells:
            # Non-pyramid answer (no settled cells): the whole replica
            # served it, which is what "local" means here.
            return "local"
        settled = min(c.level for c in region.cells)
        if settled > self.router.spine_level:
            return "local"
        if settled == self.router.spine_level:
            return "boundary"
        return "spine"

    # ------------------------------------------------------------------
    # Crash recovery and diagnostics
    # ------------------------------------------------------------------
    def snapshot(self) -> object:
        return _ReplicatedSnapshot(
            self.kind, self._inner.snapshot(), dict(self._directory)
        )

    def restore(self, state: object) -> None:
        if (
            not isinstance(state, _ReplicatedSnapshot)
            or state.policy != self.kind
        ):
            raise TypeError("not a ReplicatedShardedAnonymizer snapshot")
        self._inner.restore(state.inner)
        self._directory = dict(state.directory)

    def snapshot_shard(self, shard: int) -> object:
        # Broadcast replication: there is no narrower unit of state
        # than the whole replica.
        return self.snapshot()

    def restore_shard(self, shard: int, state: object) -> list[object]:
        self.restore(state)
        return []

    def check_invariants(self) -> None:
        self._inner.check_invariants()
        assert self.num_users == len(self._directory), (
            "directory population drift"
        )
        for uid, home in self._directory.items():
            assert uid in self._inner, f"directory ghost {uid!r}"
            assert self._home_of(self._inner.location_of(uid)) == home, (
                f"user {uid!r} homed in the wrong shard"
            )
