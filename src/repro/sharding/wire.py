"""The shard wire protocol: framed, CRC'd, batched envelopes.

This module promotes :class:`repro.messages.ShardEnvelope` from an
in-process routing record into a genuine wire protocol.  A **frame** is
the unit of transmission between the parent runtime and a shard worker
process (or a socket peer): a length-prefixed binary header, a batch of
whole shard envelopes, and a trailing CRC-32 over everything, so any
single corrupted byte anywhere in the frame is detected before a single
envelope is looked at.

Frame layout (little-endian, 16-byte header)::

    ========  =====  ==========================================
    offset    size   field
    ========  =====  ==========================================
    0         4      magic ``b"CFRM"``
    4         1      format version (currently 1)
    5         1      frame kind (request / response / nack)
    6         2      envelope count (uint16)
    8         4      sequence number (uint32)
    12        4      payload length (uint32)
    16        n      payload: ``count`` concatenated shard envelopes,
                     each exactly as ``encode_envelope`` emits it
    16 + n    4      CRC-32 of bytes [0, 16 + n)
    ========  =====  ==========================================

Batching many envelopes per frame is what amortizes the IPC cost of the
process pool: one pipe round trip carries a whole tick's worth of
mutations plus the cloak that needs their effects.  The sequence number
implements stop-and-wait retransmission over lossy transports — a
worker that sees a repeated sequence replays its cached reply instead
of re-applying the batch, and answers a corrupt frame with a ``NACK``
frame so the sender retransmits instead of timing out.

Envelope payloads carry one shard **operation** each, encoded by the
``op_*`` / ``response_*`` helpers below: a one-byte opcode, fixed-width
little-endian fields, and a tagged user id (int64 or UTF-8) last.
Operations never carry pyramid state; snapshots travel as opaque blobs
that a parent only unpickles after the frame CRC has verified — bytes
that fail the CRC are rejected, never parsed, and *never* unpickled.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.anonymizer.cells import CellId
from repro.anonymizer.cloak import CloakedRegion
from repro.anonymizer.profile import PrivacyProfile
from repro.geometry import Point, Rect
from repro.messages import (
    ENVELOPE_HEADER_SIZE,
    ShardEnvelope,
    decode_envelope,
    encode_envelope,
)

__all__ = [
    "FRAME_HEADER_SIZE",
    "FRAME_VERSION",
    "Frame",
    "FrameDecoder",
    "KIND_NACK",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "WireError",
    "decode_frame",
    "decode_op",
    "decode_response",
    "encode_frame",
]


class WireError(ValueError):
    """A malformed, truncated or corrupted wire artifact."""


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
FRAME_HEADER_SIZE = 16
FRAME_VERSION = 1
_FRAME_MAGIC = b"CFRM"
_FRAME_HEADER = struct.Struct("<4sBBHII")
assert _FRAME_HEADER.size == FRAME_HEADER_SIZE

KIND_REQUEST = 1
KIND_RESPONSE = 2
KIND_NACK = 3
_FRAME_KINDS = frozenset({KIND_REQUEST, KIND_RESPONSE, KIND_NACK})


@dataclass(frozen=True, slots=True)
class Frame:
    """One decoded wire frame: a batch of envelopes under one sequence
    number."""

    kind: int
    seq: int
    envelopes: tuple[ShardEnvelope, ...]


def encode_frame(
    kind: int, seq: int, envelopes: tuple[ShardEnvelope, ...] | list[ShardEnvelope]
) -> bytes:
    """Serialize a batch of envelopes into one framed transmission."""
    if kind not in _FRAME_KINDS:
        raise WireError(f"unknown frame kind {kind}")
    if not 0 <= seq < 2**32:
        raise WireError(f"frame sequence number out of uint32 range: {seq}")
    if len(envelopes) >= 2**16:
        raise WireError(f"too many envelopes for one frame: {len(envelopes)}")
    payload = b"".join(encode_envelope(envelope) for envelope in envelopes)
    header = _FRAME_HEADER.pack(
        _FRAME_MAGIC, FRAME_VERSION, kind, len(envelopes), seq, len(payload)
    )
    body = header + payload
    return body + struct.pack("<I", zlib.crc32(body))


def decode_frame(data: bytes) -> Frame:
    """Deserialize and *verify* one frame.

    Validation order — length, magic, version, kind, length field, CRC,
    then envelope parse — guarantees the CRC has vouched for every byte
    before any envelope is interpreted, so a corrupted frame can never
    deliver a partially-valid batch.  Raises :class:`WireError` (a
    ``ValueError``) on any mismatch.
    """
    if len(data) < FRAME_HEADER_SIZE + 4:
        raise WireError(f"frame too short: {len(data)} bytes")
    magic, version, kind, count, seq, length = _FRAME_HEADER.unpack(
        data[:FRAME_HEADER_SIZE]
    )
    if magic != _FRAME_MAGIC:
        raise WireError("bad frame magic")
    if version != FRAME_VERSION:
        raise WireError(f"unsupported frame version {version}")
    if kind not in _FRAME_KINDS:
        raise WireError(f"unknown frame kind {kind}")
    if len(data) != FRAME_HEADER_SIZE + length + 4:
        raise WireError("frame length field disagrees with the payload size")
    (crc,) = struct.unpack("<I", data[-4:])
    if crc != zlib.crc32(data[:-4]):
        raise WireError("frame failed its CRC check (corrupt payload)")
    envelopes = []
    offset = FRAME_HEADER_SIZE
    end = FRAME_HEADER_SIZE + length
    for _ in range(count):
        if offset + ENVELOPE_HEADER_SIZE + 4 > end:
            raise WireError("frame envelope truncated")
        (env_length,) = struct.unpack_from("<I", data, offset + 8)
        env_end = offset + ENVELOPE_HEADER_SIZE + env_length + 4
        if env_end > end:
            raise WireError("frame envelope truncated")
        envelopes.append(decode_envelope(data[offset:env_end]))
        offset = env_end
    if offset != end:
        raise WireError("frame envelope count disagrees with the payload")
    return Frame(kind, seq, tuple(envelopes))


class FrameDecoder:
    """Incremental frame reassembly over a byte stream.

    Feed arbitrarily-chunked reads (pipe fragments, TCP segments) and
    collect whole frames as they complete; partial frames stay buffered
    across calls.  A byte stream that desynchronizes — wrong magic,
    corrupt CRC — raises immediately: stream transports are ordered, so
    recovery is the peer's reconnect, not a resync hunt.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending(self) -> int:
        """Bytes buffered awaiting the rest of their frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Frame]:
        """Buffer ``data`` and return every frame it completed."""
        self._buffer += data
        frames: list[Frame] = []
        while len(self._buffer) >= FRAME_HEADER_SIZE:
            magic, version, kind, _count, _seq, length = _FRAME_HEADER.unpack(
                bytes(self._buffer[:FRAME_HEADER_SIZE])
            )
            if magic != _FRAME_MAGIC:
                raise WireError("bad frame magic")
            if version != FRAME_VERSION:
                raise WireError(f"unsupported frame version {version}")
            if kind not in _FRAME_KINDS:
                raise WireError(f"unknown frame kind {kind}")
            total = FRAME_HEADER_SIZE + length + 4
            if len(self._buffer) < total:
                break
            frames.append(decode_frame(bytes(self._buffer[:total])))
            del self._buffer[:total]
        return frames


# ----------------------------------------------------------------------
# Operation payloads (parent -> worker)
# ----------------------------------------------------------------------
OP_REGISTER = 1
OP_MOVE = 2
OP_DEREGISTER = 3
OP_SET_PROFILE = 4
OP_CLOAK = 5
OP_CLOAK_LOCATION = 6
OP_CELL_COUNT = 7
OP_STATS = 8
OP_SNAPSHOT = 9
OP_INSTALL = 10
OP_RESET = 11
OP_CHECK = 12
OP_PING = 13
OP_HANG = 14
OP_SHUTDOWN = 15

_UID_INT = 0
_UID_STR = 1


def _encode_uid(uid: object) -> bytes:
    if isinstance(uid, bool) or not isinstance(uid, (int, str)):
        raise TypeError(
            f"the shard wire protocol carries int or str user ids, not "
            f"{type(uid).__name__}"
        )
    if isinstance(uid, int):
        return struct.pack("<Bq", _UID_INT, uid)
    raw = uid.encode("utf-8")
    if len(raw) >= 2**16:
        raise WireError("user id too long for the wire format")
    return struct.pack("<BH", _UID_STR, len(raw)) + raw


def _decode_uid(data: bytes, offset: int) -> tuple[object, int]:
    (tag,) = struct.unpack_from("<B", data, offset)
    if tag == _UID_INT:
        (uid,) = struct.unpack_from("<q", data, offset + 1)
        return uid, offset + 9
    if tag == _UID_STR:
        (length,) = struct.unpack_from("<H", data, offset + 1)
        start = offset + 3
        return data[start : start + length].decode("utf-8"), start + length
    raise WireError(f"unknown user-id tag {tag}")


def op_register(uid: object, point: Point, profile: PrivacyProfile) -> bytes:
    return (
        struct.pack(
            "<BddId", OP_REGISTER, point.x, point.y, profile.k, profile.a_min
        )
        + _encode_uid(uid)
    )


def op_move(uid: object, point: Point) -> bytes:
    return struct.pack("<Bdd", OP_MOVE, point.x, point.y) + _encode_uid(uid)


def op_deregister(uid: object) -> bytes:
    return struct.pack("<B", OP_DEREGISTER) + _encode_uid(uid)


def op_set_profile(uid: object, profile: PrivacyProfile) -> bytes:
    return (
        struct.pack("<BId", OP_SET_PROFILE, profile.k, profile.a_min)
        + _encode_uid(uid)
    )


def op_cloak(uid: object) -> bytes:
    return struct.pack("<B", OP_CLOAK) + _encode_uid(uid)


def op_cloak_location(point: Point, profile: PrivacyProfile) -> bytes:
    return struct.pack(
        "<BddId", OP_CLOAK_LOCATION, point.x, point.y, profile.k, profile.a_min
    )


def op_cell_count(cell: CellId) -> bytes:
    return struct.pack("<BBII", OP_CELL_COUNT, cell.level, cell.ix, cell.iy)


def op_stats() -> bytes:
    return struct.pack("<B", OP_STATS)


def op_snapshot() -> bytes:
    return struct.pack("<B", OP_SNAPSHOT)


def op_install(blob: bytes) -> bytes:
    return struct.pack("<B", OP_INSTALL) + blob


def op_reset() -> bytes:
    return struct.pack("<B", OP_RESET)


def op_check() -> bytes:
    return struct.pack("<B", OP_CHECK)


def op_ping() -> bytes:
    return struct.pack("<B", OP_PING)


def op_hang(seconds: float) -> bytes:
    return struct.pack("<Bd", OP_HANG, seconds)


def op_shutdown() -> bytes:
    return struct.pack("<B", OP_SHUTDOWN)


def decode_op(data: bytes) -> tuple:
    """Decode one operation payload into ``(name, *args)``."""
    if not data:
        raise WireError("empty operation payload")
    opcode = data[0]
    if opcode == OP_REGISTER:
        x, y, k, a_min = struct.unpack_from("<ddId", data, 1)
        uid, _ = _decode_uid(data, 29)
        return ("register", uid, Point(x, y), PrivacyProfile(k, a_min))
    if opcode == OP_MOVE:
        x, y = struct.unpack_from("<dd", data, 1)
        uid, _ = _decode_uid(data, 17)
        return ("move", uid, Point(x, y))
    if opcode == OP_DEREGISTER:
        uid, _ = _decode_uid(data, 1)
        return ("deregister", uid)
    if opcode == OP_SET_PROFILE:
        k, a_min = struct.unpack_from("<Id", data, 1)
        uid, _ = _decode_uid(data, 13)
        return ("set_profile", uid, PrivacyProfile(k, a_min))
    if opcode == OP_CLOAK:
        uid, _ = _decode_uid(data, 1)
        return ("cloak", uid)
    if opcode == OP_CLOAK_LOCATION:
        x, y, k, a_min = struct.unpack_from("<ddId", data, 1)
        return ("cloak_location", Point(x, y), PrivacyProfile(k, a_min))
    if opcode == OP_CELL_COUNT:
        level, ix, iy = struct.unpack_from("<BII", data, 1)
        return ("cell_count", CellId(level, ix, iy))
    if opcode == OP_STATS:
        return ("stats",)
    if opcode == OP_SNAPSHOT:
        return ("snapshot",)
    if opcode == OP_INSTALL:
        return ("install", data[1:])
    if opcode == OP_RESET:
        return ("reset",)
    if opcode == OP_CHECK:
        return ("check",)
    if opcode == OP_PING:
        return ("ping",)
    if opcode == OP_HANG:
        (seconds,) = struct.unpack_from("<d", data, 1)
        return ("hang", seconds)
    if opcode == OP_SHUTDOWN:
        return ("shutdown",)
    raise WireError(f"unknown shard opcode {opcode}")


# ----------------------------------------------------------------------
# Response payloads (worker -> parent)
# ----------------------------------------------------------------------
RE_ACK = 64
RE_COST = 65
RE_CLOAK_OK = 66
RE_CLOAK_UNSAT = 67
RE_COUNT = 68
RE_BLOB = 69
RE_ERROR = 70


def response_ack() -> bytes:
    return struct.pack("<B", RE_ACK)


def response_cost(cost: int) -> bytes:
    return struct.pack("<BI", RE_COST, cost)


def response_cloak(region: CloakedRegion) -> bytes:
    rect = region.region
    head = struct.pack(
        "<BddddIH",
        RE_CLOAK_OK,
        rect.x_min,
        rect.y_min,
        rect.x_max,
        rect.y_max,
        region.achieved_k,
        len(region.cells),
    )
    cells = b"".join(
        struct.pack("<BII", cell.level, cell.ix, cell.iy)
        for cell in region.cells
    )
    return head + cells


def response_cloak_unsatisfiable() -> bytes:
    return struct.pack("<B", RE_CLOAK_UNSAT)


def response_count(count: int) -> bytes:
    return struct.pack("<BI", RE_COUNT, count)


def response_blob(blob: bytes) -> bytes:
    return struct.pack("<B", RE_BLOB) + blob


def response_error(message: str) -> bytes:
    return struct.pack("<B", RE_ERROR) + message.encode("utf-8")


def decode_response(data: bytes) -> tuple:
    """Decode one response payload into ``(name, *args)``.

    Cloaks are reconstructed into real :class:`CloakedRegion` objects —
    the doubles round-trip exactly, which is what lets the parallel
    runtime promise *byte*-identical cloaks, not approximately-equal
    ones.  Blob payloads are returned as raw bytes; the caller decides
    whether to unpickle (and only ever does so after the enclosing
    frame's CRC verified).
    """
    if not data:
        raise WireError("empty response payload")
    opcode = data[0]
    if opcode == RE_ACK:
        return ("ack",)
    if opcode == RE_COST:
        (cost,) = struct.unpack_from("<I", data, 1)
        return ("cost", cost)
    if opcode == RE_CLOAK_OK:
        x_min, y_min, x_max, y_max, achieved_k, n = struct.unpack_from(
            "<ddddIH", data, 1
        )
        cells = tuple(
            CellId(*struct.unpack_from("<BII", data, 39 + 9 * i))
            for i in range(n)
        )
        return (
            "cloak",
            CloakedRegion(Rect(x_min, y_min, x_max, y_max), achieved_k, cells),
        )
    if opcode == RE_CLOAK_UNSAT:
        return ("unsat",)
    if opcode == RE_COUNT:
        (count,) = struct.unpack_from("<I", data, 1)
        return ("count", count)
    if opcode == RE_BLOB:
        return ("blob", data[1:])
    if opcode == RE_ERROR:
        return ("error", data[1:].decode("utf-8"))
    raise WireError(f"unknown shard response opcode {opcode}")
