"""Per-shard state cores and the shared spine aggregator.

These are deliberately *dumb* state holders: all maintenance logic
(Algorithm 1, the Section 4.2 split/merge criteria, update walks) lives
in the sharded anonymizers, which route each touched cell either to its
owning core or to the spine.  Splitting state from logic this way keeps
the sharded implementations line-for-line comparable with the
single-pyramid ones — the equivalence property the whole design is
gated on.

Cache-invalidation state is two-tier:

* each core has a **shard epoch**, bumped whenever any count owned by
  that shard changes;
* the spine has a **boundary epoch**, bumped whenever any count at
  level ``<= S`` changes (spine cells *and* block roots — every cell a
  cloak starting in one shard can read outside that shard).

A cloak served from shard ``i`` is cached under the composite epoch
``(core_i.epoch, boundary_epoch)``: unchanged composite epoch proves
every cell the cloak read is unchanged, so mutations confined to other
shards never evict shard ``i``'s single-probe fast path.  That locality
is what the ``shard_scaling`` benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, MutableMapping

from repro.anonymizer.cache import CloakCache
from repro.anonymizer.cells import CellId

if TYPE_CHECKING:
    from repro.anonymizer.adaptive import _Cell as AdaptiveCell
    from repro.anonymizer.adaptive import _UserRecord as AdaptiveRecord
    from repro.anonymizer.basic import _UserRecord as BasicRecord

__all__ = [
    "BasicShardCore",
    "AdaptiveShardCore",
    "SpineState",
    "cache_counters",
]


def cache_counters(cache: CloakCache) -> dict[str, int]:
    """One cache's traffic counters in the ``cache_stats()`` shape."""
    return {
        "hits": cache.hits,
        "misses": cache.misses,
        "invalidations": cache.invalidations,
        "evictions": cache.evictions,
    }


@dataclass
class BasicShardCore:
    """One shard's slice of the complete pyramid: counts and user
    records for the cells at level ``>= S`` inside its blocks.  Zero
    counts are not stored; generation counters are monotone and outlive
    the counts they describe (exactly like the adaptive single-pyramid
    convention).

    ``counts``/``gens`` are plain dicts on the scalar path and
    :class:`~repro.sharding.soa.MortonSlice` arrays on the vectorized
    one — both speak the same mapping protocol, so everything here and
    in the replica audits is backend-agnostic."""

    index: int
    cache: CloakCache
    counts: MutableMapping[CellId, int] = field(default_factory=dict)
    gens: MutableMapping[CellId, int] = field(default_factory=dict)
    users: "dict[object, BasicRecord]" = field(default_factory=dict)
    epoch: int = 0

    def apply(self, cell: CellId, delta: int) -> None:
        """Apply a population delta to an owned cell, bumping its gen."""
        total = self.counts.get(cell, 0) + delta
        if total:
            self.counts[cell] = total
        else:
            self.counts.pop(cell, None)
        self.gens[cell] = self.gens.get(cell, 0) + 1


@dataclass
class AdaptiveShardCore:
    """One shard's slice of the incomplete pyramid: the maintained cut
    cells at level ``>= S`` inside its blocks, plus the records of every
    user whose exact location falls in those blocks (a user's *leaf* may
    still be a spine cell when the cut sits above the block level)."""

    index: int
    cache: CloakCache
    cells: "dict[CellId, AdaptiveCell]" = field(default_factory=dict)
    gens: dict[CellId, int] = field(default_factory=dict)
    users: "dict[object, AdaptiveRecord]" = field(default_factory=dict)
    epoch: int = 0


@dataclass
class SpineState:
    """The replicated top of the pyramid (levels ``0 .. S-1``) shared by
    every shard, maintained *eagerly* so aggregate reads and maintenance
    cost accounting match the single-pyramid implementations exactly.

    ``boundary_epoch`` covers every cell at level ``<= S``; see the
    module docstring.  ``cells`` is used only by the adaptive variant
    (spine cells of the maintained cut); the basic variant keeps plain
    ``counts``.  ``cache`` memoizes cloaks that *start* at a spine cell
    (adaptive users whose leaf sits above the block level) — such cloaks
    read boundary state only, so they are keyed on ``(-1,
    boundary_epoch)``.
    """

    cache: CloakCache
    counts: dict[CellId, int] = field(default_factory=dict)
    gens: dict[CellId, int] = field(default_factory=dict)
    cells: "dict[CellId, AdaptiveCell]" = field(default_factory=dict)
    boundary_epoch: int = 0

    def apply(self, cell: CellId, delta: int) -> None:
        """Apply a population delta to a spine cell, bumping its gen."""
        total = self.counts.get(cell, 0) + delta
        if total:
            self.counts[cell] = total
        else:
            self.counts.pop(cell, None)
        self.gens[cell] = self.gens.get(cell, 0) + 1

    def bump_gen(self, cell: CellId) -> None:
        self.gens[cell] = self.gens.get(cell, 0) + 1
