"""Fleet-wide consistency checks for the sharded anonymizers.

Each function asserts one deployment shape's full invariant set —
pyramid consistency *plus* the partition discipline (which cells and
users may live on which shard/spine store).  They are plain functions
over a fleet so both the in-process anonymizers and the worker replicas
expose them without carrying the bodies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.anonymizer.cells import CellId

if TYPE_CHECKING:
    from repro.sharding.adaptive import ShardedAdaptiveAnonymizer
    from repro.sharding.basic import ShardedBasicAnonymizer

__all__ = [
    "check_adaptive_fleet",
    "check_basic_fleet",
    "check_basic_replica",
]

_ROOT = CellId(0, 0, 0)


def check_basic_fleet(fleet: "ShardedBasicAnonymizer") -> None:
    """Assert fleet-wide pyramid + partition consistency."""
    spine_level = fleet.router.spine_level
    expected: list[dict[CellId, int]] = [dict() for _ in fleet._cores]
    expected_spine: dict[CellId, int] = {}
    population = 0
    for shard, core in enumerate(fleet._cores):
        for uid, rec in core.users.items():
            assert fleet._directory.get(uid) == shard, (
                f"directory disagrees with core {shard} about {uid!r}"
            )
            assert rec.cell == fleet.grid.cell_of(rec.point), (
                f"stale cell for {uid!r}"
            )
            assert fleet.router.shard_of(rec.cell) == shard, (
                f"user {uid!r} homed in the wrong shard"
            )
            population += 1
            for ancestor in fleet.grid.path_to_root(rec.cell):
                if ancestor.level < spine_level:
                    expected_spine[ancestor] = (
                        expected_spine.get(ancestor, 0) + 1
                    )
                else:
                    expected[shard][ancestor] = (
                        expected[shard].get(ancestor, 0) + 1
                    )
    assert population == len(fleet._directory), "directory population drift"
    for shard, core in enumerate(fleet._cores):
        assert core.counts == expected[shard], (
            f"shard {shard} counters inconsistent with its user table"
        )
        for cell in core.counts:
            assert cell.level >= spine_level, (
                f"shard {shard} holds spine cell {cell}"
            )
            assert fleet.router.shard_of(cell) == shard, (
                f"shard {shard} holds foreign cell {cell}"
            )
    assert fleet._spine.counts == expected_spine, (
        "spine counters inconsistent with core populations"
    )
    root_count = fleet.cell_count(_ROOT)
    assert root_count == len(fleet._directory), "root count != population"


def check_basic_replica(replica: "ShardedBasicAnonymizer", shard: int) -> None:
    """Invariant check for a *partially replicated* basic worker.

    A worker receives every boundary-crossing mutation but only its own
    confined moves, so foreign records' lowest-level cells may be stale
    — always within the record's true block, never across it.  What
    must therefore be exact on every replica, and what this asserts:

    * the worker's own core: fresh records, correct homing, counts
      rebuilt from its own users' paths at levels ``>= S``;
    * the spine and every block root: rebuilt from *all* records'
      block ancestry (stale cells share the true block, so block-level
      aggregation is immune to the staleness).
    """
    grid = replica.grid
    router = replica.router
    spine_level = router.spine_level
    core = replica._cores[shard]
    expected_own: dict[CellId, int] = {}
    for uid, rec in core.users.items():
        assert replica._directory.get(uid) == shard, (
            f"worker {shard}: directory disagrees about own user {uid!r}"
        )
        assert rec.cell == grid.cell_of(rec.point), (
            f"worker {shard}: stale cell for own user {uid!r}"
        )
        assert router.shard_of(rec.cell) == shard, (
            f"worker {shard}: own user {uid!r} homed in a foreign block"
        )
        for ancestor in grid.path_to_root(rec.cell):
            if ancestor.level >= spine_level:
                expected_own[ancestor] = expected_own.get(ancestor, 0) + 1
    assert core.counts == expected_own, (
        f"worker {shard}: own-core counters inconsistent with its users"
    )
    expected_spine: dict[CellId, int] = {}
    expected_roots: dict[CellId, int] = {}
    population = 0
    for other in replica._cores:
        for rec in other.users.values():
            population += 1
            block = rec.cell.ancestor(spine_level)
            expected_roots[block] = expected_roots.get(block, 0) + 1
            cell = block
            while cell.level > 0:
                cell = cell.parent()
                expected_spine[cell] = expected_spine.get(cell, 0) + 1
    assert population == len(replica._directory), (
        f"worker {shard}: directory population drift"
    )
    assert replica._spine.counts == expected_spine, (
        f"worker {shard}: spine counters inconsistent with block ancestry"
    )
    for block, count in expected_roots.items():
        assert replica.cell_count(block) == count, (
            f"worker {shard}: block root {block} count drift"
        )


def check_adaptive_fleet(fleet: "ShardedAdaptiveAnonymizer") -> None:
    """Assert incomplete-pyramid + partition consistency."""
    spine_level = fleet.router.spine_level
    assert fleet._entry(_ROOT) is not None, "root must always be maintained"
    items = list(fleet._spine.cells.items())
    for core in fleet._cores:
        items.extend(core.cells.items())
    leaf_population = 0
    for cell, entry in items:
        if entry.is_leaf:
            leaf_population += entry.count
            assert entry.count == len(entry.users), f"leaf {cell} count drift"
            for uid in entry.users:
                rec = fleet._record(uid)
                assert rec.leaf == cell, f"hash table stale for {uid!r}"
                assert cell.is_ancestor_of(
                    fleet.grid.cell_of(rec.point)
                ), f"user {uid!r} outside its leaf"
            if cell.level < fleet.height:
                for child in cell.children():
                    assert fleet._entry(child) is None, "leaf with children"
        else:
            children = cell.children()
            child_entries = [fleet._entry(c) for c in children]
            assert all(e is not None for e in child_entries), "partial split"
            assert entry.count == sum(
                e.count for e in child_entries if e is not None
            ), f"internal {cell} count != children sum"
            assert not entry.users, "internal cell holds users"
        if not cell.is_root:
            parent_entry = fleet._entry(cell.parent())
            assert parent_entry is not None, "orphan maintained cell"
            assert not parent_entry.is_leaf, "parent is leaf"
    assert leaf_population == len(fleet._directory), "population drift"
    assert fleet.cell_count(_ROOT) == len(fleet._directory)
    # Partition discipline.
    for cell in fleet._spine.cells:
        assert cell.level < spine_level, f"core cell {cell} in the spine"
    for shard, core in enumerate(fleet._cores):
        for cell, entry in core.cells.items():
            assert cell.level >= spine_level, (
                f"spine cell {cell} in shard {shard}"
            )
            assert fleet.router.shard_of(cell) == shard, (
                f"shard {shard} holds foreign cell {cell}"
            )
            if entry.is_leaf:
                for uid in entry.users:
                    assert fleet._directory.get(uid) == shard, (
                        f"foreign user {uid!r} on shard {shard}'s leaf"
                    )
        for uid, rec in core.users.items():
            assert fleet._directory.get(uid) == shard, (
                f"directory disagrees with core {shard} about {uid!r}"
            )
            assert fleet.router.shard_of(
                fleet.grid.cell_of(rec.point)
            ) == shard, f"user {uid!r} homed in the wrong shard"
    if fleet._table is not None:
        assert len(fleet._table) == len(fleet._directory), (
            "gate table size drift"
        )
        for core in fleet._cores:
            for uid, rec in core.users.items():
                slot = fleet._table.slot_of(uid)
                assert slot is not None, f"{uid!r} missing from gate table"
                # Exact equality on purpose: the table is a bit-copy
                # of the record floats; any representational
                # difference IS the drift this assert catches.
                assert (
                    float(fleet._table.xs[slot]) == rec.point.x  # casperlint: ignore[CSP004] bit-copy audit
                    and float(fleet._table.ys[slot]) == rec.point.y  # casperlint: ignore[CSP004] bit-copy audit
                    and int(fleet._table.ks[slot]) == rec.profile.k
                    and float(fleet._table.a_mins[slot]) == rec.profile.a_min  # casperlint: ignore[CSP004] bit-copy audit
                ), f"gate table stale for {uid!r}"
