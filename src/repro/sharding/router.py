"""Deterministic spatial routing of pyramid cells to shards.

The pyramid of height ``H`` is partitioned at a single **spine level**
``S`` — the shallowest level with at least as many cells as shards
(``4**S >= N``).  Levels ``0 .. S-1`` are the **spine**: replicated
aggregate state shared by every shard (for ``N = 1`` the spine is
empty).  Every cell at level ``>= S`` belongs to exactly one shard: the
shard that owns its level-``S`` ancestor (its **block**).

Blocks are assigned to shards by Morton (Z-order) rank, each shard
receiving a contiguous rank range.  Morton order keeps each shard's
blocks spatially clustered, and — because same-parent neighbours at any
level ``> S`` share their level-``S`` ancestor — guarantees that
Algorithm 1's sibling reads stay inside one shard everywhere below the
spine.  Only reads at level ``S`` itself (block roots) and above can
cross shards; those route through the spine aggregator.

Routing is pure arithmetic on ``(level, ix, iy)``: no randomness, no
state, so any two deployments with the same ``(N, H)`` route
identically — the foundation of the shard-count-invariance guarantee.
"""

from __future__ import annotations

from repro.anonymizer.cells import CellId

# The rank helpers share their implementation with the vectorized
# pyramid's Morton codes (repro.morton); re-exported for compatibility.
from repro.morton import morton_cell, morton_rank  # noqa: F401

__all__ = ["ShardRouter", "morton_rank", "morton_cell"]


class ShardRouter:
    """Maps pyramid cells to owning shards for a fixed ``(N, H)``.

    Parameters
    ----------
    num_shards:
        Number of shards ``N >= 1``.
    height:
        Pyramid height ``H``; needs ``4**H >= N`` so every shard owns at
        least one block.
    """

    def __init__(self, num_shards: int, height: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        spine_level = 0
        while 4**spine_level < num_shards:
            spine_level += 1
        if spine_level > height:
            raise ValueError(
                f"{num_shards} shards need a pyramid of height >= {spine_level}"
            )
        self.num_shards = num_shards
        self.height = height
        self.spine_level = spine_level
        self.num_blocks = 4**spine_level
        # Owner of every block, indexed by Morton rank (contiguous
        # ranges; block counts per shard differ by at most one).
        self._owner_by_rank = [
            rank * num_shards // self.num_blocks for rank in range(self.num_blocks)
        ]

    def is_spine(self, cell: CellId) -> bool:
        """True for shared spine cells (strictly above the block level)."""
        return cell.level < self.spine_level

    def owner_of(self, cell: CellId) -> int | None:
        """The shard owning ``cell``, or ``None`` for spine cells."""
        if cell.level < self.spine_level:
            return None
        block = cell.ancestor(self.spine_level)
        return self._owner_by_rank[morton_rank(block)]

    def shard_of(self, cell: CellId) -> int:
        """The shard owning ``cell``; raises for spine cells."""
        owner = self.owner_of(cell)
        if owner is None:
            raise ValueError(f"{cell} is a spine cell, owned by no shard")
        return owner

    def route_batch(
        self, cells: list[CellId]
    ) -> tuple[list[int], dict[int, list[int]]]:
        """Owner shard of every cell in one routing pass.

        Returns ``(owners, by_shard)``: the owning shard per cell in
        arrival order, and arrival-ordered cell *indexes* grouped per
        shard (only shards that own something appear).  The Morton rank
        is memoized per level-``S`` block, so a tick's worth of moves
        clustered in a few blocks pays one rank computation per block
        instead of one full bit-interleave per move — the fix for the
        sequential runtime's per-update routing overhead, and the
        grouping the process pool uses to build one frame per shard.
        """
        owners: list[int] = []
        by_shard: dict[int, list[int]] = {}
        spine_level = self.spine_level
        owner_cache: dict[CellId, int] = {}
        for index, cell in enumerate(cells):
            if cell.level < spine_level:
                raise ValueError(f"{cell} is a spine cell, owned by no shard")
            block = cell.ancestor(spine_level)
            owner = owner_cache.get(block)
            if owner is None:
                owner = self._owner_by_rank[morton_rank(block)]
                owner_cache[block] = owner
            owners.append(owner)
            group = by_shard.get(owner)
            if group is None:
                by_shard[owner] = [index]
            else:
                group.append(index)
        return owners, by_shard

    def block_rank_range(self, shard: int) -> tuple[int, int]:
        """The contiguous Morton rank range ``[lo, hi)`` of the blocks
        owned by ``shard`` — contiguity is what lets the array-backed
        core store each level as one flat slice."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"no shard {shard} in a {self.num_shards}-shard fleet")
        ranks = [
            rank
            for rank in range(self.num_blocks)
            if self._owner_by_rank[rank] == shard
        ]
        lo, hi = ranks[0], ranks[-1] + 1
        assert len(ranks) == hi - lo, "owner ranges must be contiguous"
        return lo, hi

    def blocks_of(self, shard: int) -> tuple[CellId, ...]:
        """The level-``S`` blocks owned by ``shard``, in Morton order."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"no shard {shard} in a {self.num_shards}-shard fleet")
        return tuple(
            morton_cell(rank, self.spine_level)
            for rank in range(self.num_blocks)
            if self._owner_by_rank[rank] == shard
        )

    def crosses_boundary(self, ancestor_level: int) -> bool:
        """Whether a location update whose old/new cells first share an
        ancestor at ``ancestor_level`` touches boundary state (any cell
        at level ``<= S``) — i.e. leaves its level-``S`` block."""
        return ancestor_level < self.spine_level
