"""Message records shared across the untrusted and trusted planes.

This module is the single home for message dataclasses that were
previously duplicated-by-adjacency between ``repro.server.messages``
(query results) and ``repro.resilience.messages`` (the location-update
wire format); both old modules remain as re-export shims.  It also
defines the **shard-routing envelope** exactly once, so the server's
routing seam and the resilience runtime agree on its bytes.

``PrivateQueryResult`` carries the Figure 17 decomposition: time spent
at the location anonymizer, at the privacy-aware query processor, and in
candidate-list transmission, together with the candidate list itself and
the exact answer the client computed locally.

``LocationUpdate`` and its codec mirror the 64-byte discipline of
``repro.server.codec`` (one logical record = 64 bytes, so the Figure 17
transmission model prices update traffic the same way it prices
candidate records), but live on the *trusted* side: an update carries
the user's exact location, which per the system model may travel only
between the mobile device and the location anonymizer.

Update record layout (little-endian, 64 bytes)::

    ========  =====  ==========================================
    offset    size   field
    ========  =====  ==========================================
    0         4      magic ``b"CUPD"``
    4         2      format version (currently 1)
    6         2      flags (reserved, 0)
    8         4      sequence number (uint32, per-user, monotone)
    12        20     user id, UTF-8, NUL-padded
    32        16     x, y as f64
    48        4      profile k (uint32)
    52        8      profile A_min as f64
    60        4      CRC-32 of bytes [0, 60)
    ========  =====  ==========================================

The trailing CRC makes *any* single-byte corruption detectable, so a
flipped coordinate can never be silently applied — the receiver rejects
the record and the client's retry loop re-sends it.  The update is
self-describing (it carries the privacy profile), which is what lets an
anonymizer that lost a user's state re-register them from the next
update alone — the crash-recovery heal path.

Shard envelope layout (little-endian, 12-byte header + payload)::

    ========  =====  ==========================================
    offset    size   field
    ========  =====  ==========================================
    0         4      magic ``b"CSHD"``
    4         2      format version (currently 1)
    6         2      target shard id (uint16)
    8         4      payload length (uint32)
    12        n      payload (e.g. one update record)
    12 + n    4      CRC-32 of bytes [0, 12 + n)
    ========  =====  ==========================================

The envelope's own CRC covers the *header*, so a corrupted shard id is
rejected at the router rather than mutating the wrong shard — the inner
payload's CRC alone could never catch that.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.anonymizer import CloakedRegion, PrivacyProfile
from repro.geometry import Point
from repro.processor import CandidateList

__all__ = [
    "ENVELOPE_HEADER_SIZE",
    "LocationUpdate",
    "PrivateQueryResult",
    "ShardEnvelope",
    "UPDATE_RECORD_SIZE",
    "decode_envelope",
    "decode_update",
    "encode_envelope",
    "encode_update",
]


# ----------------------------------------------------------------------
# Query results (untrusted plane — contains only privacy-safe fields)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PrivateQueryResult:
    """One private query's full round trip."""

    cloak: CloakedRegion
    candidates: CandidateList
    answer: object
    anonymizer_seconds: float
    processing_seconds: float
    transmission_seconds: float

    @property
    def total_seconds(self) -> float:
        """End-to-end time (the Figure 17 stack height)."""
        return (
            self.anonymizer_seconds
            + self.processing_seconds
            + self.transmission_seconds
        )

    @property
    def candidate_count(self) -> int:
        return len(self.candidates)


# ----------------------------------------------------------------------
# Location updates (trusted plane — client → anonymizer only)
# ----------------------------------------------------------------------
UPDATE_RECORD_SIZE = 64
_MAGIC = b"CUPD"
_VERSION = 1
_STRUCT = struct.Struct("<4sHHI20sddIdI")
assert _STRUCT.size == UPDATE_RECORD_SIZE
_CRC_OFFSET = UPDATE_RECORD_SIZE - 4


@dataclass(frozen=True, slots=True)
class LocationUpdate:
    """One location report from a mobile client."""

    uid: str
    seq: int
    point: Point
    profile: PrivacyProfile


def encode_update(update: LocationUpdate) -> bytes:
    """Serialize one location update to exactly 64 bytes."""
    uid_bytes = update.uid.encode("utf-8")
    if len(uid_bytes) > 20:
        raise ValueError(
            f"user id too long for the update wire format: {update.uid!r}"
        )
    if not 0 <= update.seq < 2**32:
        raise ValueError(f"sequence number out of uint32 range: {update.seq}")
    body = _STRUCT.pack(
        _MAGIC,
        _VERSION,
        0,
        update.seq,
        uid_bytes,
        update.point.x,
        update.point.y,
        update.profile.k,
        update.profile.a_min,
        0,
    )
    crc = zlib.crc32(body[:_CRC_OFFSET])
    return body[:_CRC_OFFSET] + struct.pack("<I", crc)


def decode_update(payload: bytes) -> LocationUpdate:
    """Deserialize and *verify* one update record.

    Raises ``ValueError`` on any length, magic, version or CRC mismatch
    — a corrupted update is rejected, never partially applied.
    """
    if len(payload) != UPDATE_RECORD_SIZE:
        raise ValueError(
            f"update record must be {UPDATE_RECORD_SIZE} bytes, got {len(payload)}"
        )
    magic, version, _flags, seq, uid_bytes, x, y, k, a_min, crc = _STRUCT.unpack(
        payload
    )
    if magic != _MAGIC:
        raise ValueError("bad update-record magic")
    if version != _VERSION:
        raise ValueError(f"unsupported update-record version {version}")
    if crc != zlib.crc32(payload[:_CRC_OFFSET]):
        raise ValueError("update record failed its CRC check (corrupt payload)")
    uid = uid_bytes.rstrip(b"\x00").decode("utf-8")
    return LocationUpdate(uid, seq, Point(x, y), PrivacyProfile(k, a_min))


# ----------------------------------------------------------------------
# Shard-routing envelopes (trusted plane — router → shard)
# ----------------------------------------------------------------------
ENVELOPE_HEADER_SIZE = 12
_ENV_MAGIC = b"CSHD"
_ENV_VERSION = 1
_ENV_HEADER = struct.Struct("<4sHHI")
assert _ENV_HEADER.size == ENVELOPE_HEADER_SIZE


@dataclass(frozen=True, slots=True)
class ShardEnvelope:
    """One routed message: an opaque payload bound to a target shard."""

    shard: int
    payload: bytes


def encode_envelope(envelope: ShardEnvelope) -> bytes:
    """Serialize a shard envelope: 12-byte header + payload + CRC-32."""
    if not 0 <= envelope.shard < 2**16:
        raise ValueError(f"shard id out of uint16 range: {envelope.shard}")
    header = _ENV_HEADER.pack(
        _ENV_MAGIC, _ENV_VERSION, envelope.shard, len(envelope.payload)
    )
    body = header + envelope.payload
    return body + struct.pack("<I", zlib.crc32(body))


def decode_envelope(payload: bytes) -> ShardEnvelope:
    """Deserialize and *verify* one shard envelope.

    Raises ``ValueError`` on any length, magic, version or CRC mismatch
    — a corrupted shard id must never route a message to the wrong
    shard.
    """
    if len(payload) < ENVELOPE_HEADER_SIZE + 4:
        raise ValueError(
            f"shard envelope too short: {len(payload)} bytes"
        )
    magic, version, shard, length = _ENV_HEADER.unpack(
        payload[:ENVELOPE_HEADER_SIZE]
    )
    if magic != _ENV_MAGIC:
        raise ValueError("bad shard-envelope magic")
    if version != _ENV_VERSION:
        raise ValueError(f"unsupported shard-envelope version {version}")
    if len(payload) != ENVELOPE_HEADER_SIZE + length + 4:
        raise ValueError(
            "shard envelope length field disagrees with the payload size"
        )
    (crc,) = struct.unpack("<I", payload[-4:])
    if crc != zlib.crc32(payload[:-4]):
        raise ValueError("shard envelope failed its CRC check (corrupt payload)")
    return ShardEnvelope(shard, payload[ENVELOPE_HEADER_SIZE:-4])
