"""SVG visualization of Casper scenes (no external dependencies)."""

from repro.viz.scenes import draw_deployment, draw_pyramid_cut, draw_query_scene
from repro.viz.svg import SvgCanvas

__all__ = [
    "SvgCanvas",
    "draw_deployment",
    "draw_pyramid_cut",
    "draw_query_scene",
]
