"""Pre-composed Casper scenes.

Convenience builders that turn live system state into finished SVG
figures — the pictures the paper uses to explain itself:

* :func:`draw_query_scene` — Figure 5: the cloaked area, its filters,
  ``A_EXT`` and the candidate list;
* :func:`draw_deployment` — Figure 9-style overview: road network,
  population, and one user's cloak;
* :func:`draw_pyramid_cut` — the adaptive anonymizer's maintained cells.
"""

from __future__ import annotations

from repro.anonymizer import AdaptiveAnonymizer, CloakedRegion
from repro.geometry import Point, Rect
from repro.mobility.roadnet import RoadNetwork
from repro.processor import CandidateList
from repro.viz.svg import SvgCanvas

__all__ = ["draw_query_scene", "draw_deployment", "draw_pyramid_cut"]


def draw_query_scene(
    bounds: Rect,
    cloaked_area: Rect,
    candidates: CandidateList,
    all_targets: dict[object, Point] | None = None,
    user: Point | None = None,
    size: int = 640,
) -> SvgCanvas:
    """Figure 5 in one call: area, ``A_EXT``, targets, candidates."""
    canvas = SvgCanvas(bounds, size=size)
    canvas.add_rect(bounds, stroke="#000000", stroke_width=1.5)
    if all_targets:
        canvas.add_points(all_targets.values(), radius=2.5, fill="#bbbbbb")
    canvas.add_rect(
        candidates.search_region,
        stroke="#2ca02c",
        stroke_width=1.5,
        dashed=True,
    )
    canvas.add_rect(
        cloaked_area, fill="#1f77b4", stroke="#1f77b4", opacity=0.25
    )
    for _oid, rect in candidates.items:
        canvas.add_point(rect.center, radius=3.5, fill="#2ca02c")
    if user is not None:
        canvas.add_point(user, radius=4.0, fill="#d62728")
        canvas.add_label(user.translated(0.01, 0.01), "user", fill="#d62728")
    canvas.add_label(
        Point(cloaked_area.x_min, cloaked_area.y_max), "A", fill="#1f77b4"
    )
    canvas.add_label(
        Point(
            candidates.search_region.x_min,
            candidates.search_region.y_max,
        ),
        "A_EXT",
        fill="#2ca02c",
    )
    return canvas


def draw_deployment(
    bounds: Rect,
    network: RoadNetwork,
    users: dict[object, Point],
    cloak: CloakedRegion | None = None,
    size: int = 640,
) -> SvgCanvas:
    """Overview: the county, its traffic and (optionally) one cloak."""
    canvas = SvgCanvas(bounds, size=size)
    canvas.add_rect(bounds, stroke="#000000", stroke_width=1.5)
    canvas.add_road_network(network)
    canvas.add_points(users.values(), radius=1.5, fill="#1f77b4")
    if cloak is not None:
        canvas.add_rect(
            cloak.region, fill="#ff7f0e", stroke="#ff7f0e", opacity=0.3
        )
    return canvas


def draw_pyramid_cut(
    anonymizer: AdaptiveAnonymizer, size: int = 640
) -> SvgCanvas:
    """The incomplete pyramid's maintained leaf cells, shaded by
    population (darker = more users)."""
    canvas = SvgCanvas(anonymizer.bounds, size=size)
    canvas.add_rect(anonymizer.bounds, stroke="#000000", stroke_width=1.5)
    leaves = [
        (cell, entry)
        for cell, entry in anonymizer._cells.items()
        if entry.is_leaf
    ]
    peak = max((entry.count for _cell, entry in leaves), default=1) or 1
    for cell, entry in leaves:
        level = entry.count / peak
        shade = int(255 - level * 160)
        canvas.add_rect(
            anonymizer.grid.cell_rect(cell),
            fill=f"rgb({shade},{shade},255)",
            stroke="#666666",
            stroke_width=0.6,
            opacity=0.9,
        )
    return canvas
