"""SVG rendering of Casper scenes.

Dependency-free SVG output for debugging, teaching and paper-style
figures: the service area, road network, user population, a cloaked
region, the extended search area ``A_EXT``, target objects and
candidate lists — the ingredients of the paper's Figures 4, 5 and 9.

The renderer is deliberately a dumb painter: you add layers in draw
order and write the file.  Everything is styled through keyword
overrides so examples can theme themselves.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.geometry import Point, Rect
from repro.mobility.roadnet import RoadNetwork

__all__ = ["SvgCanvas"]


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


@dataclass
class SvgCanvas:
    """Accumulates SVG elements over a world-coordinate viewport.

    ``world`` is the region of the plane to show; it maps to a
    ``size x size`` pixel image (aspect preserved via the taller axis).
    The y axis is flipped so world "up" renders up.
    """

    world: Rect
    size: int = 640
    background: str = "#ffffff"
    _elements: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size < 16:
            raise ValueError("size must be at least 16 pixels")
        if self.world.area <= 0:
            raise ValueError("world rect must have positive area")
        self._scale = self.size / max(self.world.width, self.world.height)

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------
    @property
    def width_px(self) -> int:
        return round(self.world.width * self._scale)

    @property
    def height_px(self) -> int:
        return round(self.world.height * self._scale)

    def _x(self, x: float) -> float:
        return (x - self.world.x_min) * self._scale

    def _y(self, y: float) -> float:
        return (self.world.y_max - y) * self._scale  # flip

    # ------------------------------------------------------------------
    # Layers
    # ------------------------------------------------------------------
    def add_rect(
        self,
        rect: Rect,
        fill: str = "none",
        stroke: str = "#333333",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
        dashed: bool = False,
    ) -> None:
        """Draw a world-coordinate rectangle."""
        dash = ' stroke-dasharray="6,4"' if dashed else ""
        self._elements.append(
            f'<rect x="{self._x(rect.x_min):.2f}" y="{self._y(rect.y_max):.2f}" '
            f'width="{rect.width * self._scale:.2f}" '
            f'height="{rect.height * self._scale:.2f}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{stroke_width}" '
            f'opacity="{opacity}"{dash} />'
        )

    def add_point(
        self,
        point: Point,
        radius: float = 3.0,
        fill: str = "#1f77b4",
        stroke: str = "none",
    ) -> None:
        """Draw a marker at a world-coordinate point (radius in pixels)."""
        self._elements.append(
            f'<circle cx="{self._x(point.x):.2f}" cy="{self._y(point.y):.2f}" '
            f'r="{radius}" fill="{fill}" stroke="{stroke}" />'
        )

    def add_points(self, points, **kwargs) -> None:
        """Draw many markers with shared styling."""
        for point in points:
            self.add_point(point, **kwargs)

    def add_line(
        self,
        a: Point,
        b: Point,
        stroke: str = "#888888",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        self._elements.append(
            f'<line x1="{self._x(a.x):.2f}" y1="{self._y(a.y):.2f}" '
            f'x2="{self._x(b.x):.2f}" y2="{self._y(b.y):.2f}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}" '
            f'opacity="{opacity}" />'
        )

    def add_label(
        self,
        point: Point,
        text: str,
        font_size: int = 12,
        fill: str = "#000000",
    ) -> None:
        self._elements.append(
            f'<text x="{self._x(point.x):.2f}" y="{self._y(point.y):.2f}" '
            f'font-size="{font_size}" font-family="sans-serif" '
            f'fill="{fill}">{_escape(text)}</text>'
        )

    def add_road_network(
        self,
        network: RoadNetwork,
        class_styles: dict[str, tuple[str, float]] | None = None,
    ) -> None:
        """Draw a road network, styled per road class.

        ``class_styles`` maps road-class name to ``(stroke, width)``;
        unknown classes fall back to a neutral style.
        """
        styles = class_styles or {
            "highway": ("#d62728", 2.5),
            "arterial": ("#7f7f7f", 1.4),
            "local": ("#c7c7c7", 0.8),
        }
        for edge in network.edges():
            stroke, width = styles.get(edge.road_class.name, ("#bbbbbb", 1.0))
            self.add_line(
                network.node_position(edge.u),
                network.node_position(edge.v),
                stroke=stroke,
                stroke_width=width,
            )

    def add_grid(self, divisions: int, stroke: str = "#eeeeee") -> None:
        """Overlay a uniform grid (e.g. a pyramid level's cells)."""
        if divisions < 1:
            raise ValueError("divisions must be >= 1")
        for i in range(1, divisions):
            x = self.world.x_min + i * self.world.width / divisions
            self.add_line(
                Point(x, self.world.y_min), Point(x, self.world.y_max), stroke=stroke
            )
            y = self.world.y_min + i * self.world.height / divisions
            self.add_line(
                Point(self.world.x_min, y), Point(self.world.x_max, y), stroke=stroke
            )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The complete SVG document as a string."""
        header = (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width_px}" height="{self.height_px}" '
            f'viewBox="0 0 {self.width_px} {self.height_px}">'
        )
        bg = (
            f'<rect x="0" y="0" width="{self.width_px}" '
            f'height="{self.height_px}" fill="{self.background}" />'
        )
        return "\n".join([header, bg, *self._elements, "</svg>"])

    def save(self, path: str | os.PathLike) -> None:
        """Write the SVG document to ``path``."""
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.render())
