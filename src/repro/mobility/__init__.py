"""Mobility substrate: road networks and network-based moving objects.

Stands in for the paper's Hennepin County map + Brinkhoff generator; see
the substitution table in DESIGN.md.
"""

from repro.mobility.commuter import CommuterGenerator
from repro.mobility.generator import LocationUpdate, MovingObject, NetworkGenerator
from repro.mobility.roadnet import (
    ARTERIAL,
    HIGHWAY,
    LOCAL,
    RoadClass,
    RoadEdge,
    RoadNetwork,
    synthetic_county_map,
)
from repro.mobility.trace import Trace, generate_trace

__all__ = [
    "LocationUpdate",
    "MovingObject",
    "NetworkGenerator",
    "CommuterGenerator",
    "RoadClass",
    "RoadEdge",
    "RoadNetwork",
    "synthetic_county_map",
    "HIGHWAY",
    "ARTERIAL",
    "LOCAL",
    "Trace",
    "generate_trace",
]
