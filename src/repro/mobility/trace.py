"""Pre-generated movement traces.

The anonymizer experiments replay the same update stream against several
configurations (basic vs adaptive, different pyramid heights), so the
harness records a trace once and replays it, instead of re-simulating —
both faster and a fairer comparison.  Traces serialize to ``.npz``
(:meth:`Trace.save` / :meth:`Trace.load`) so long workloads can be
generated once and shared across benchmark runs or machines.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.geometry import Point
from repro.mobility.generator import LocationUpdate, NetworkGenerator
from repro.mobility.roadnet import RoadNetwork, synthetic_county_map
from repro.utils.rng import SeedLike

__all__ = ["Trace", "generate_trace"]


@dataclass(frozen=True)
class Trace:
    """A recorded movement history.

    ``initial`` maps uid -> starting position; ``ticks`` is a list of
    update batches, one batch per simulation step.
    """

    initial: dict[int, Point]
    ticks: list[list[LocationUpdate]]

    @property
    def num_users(self) -> int:
        return len(self.initial)

    @property
    def num_ticks(self) -> int:
        return len(self.ticks)

    @property
    def num_updates(self) -> int:
        return sum(len(batch) for batch in self.ticks)

    def all_updates(self):
        """Iterate over every update in time order."""
        for batch in self.ticks:
            yield from batch

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Write the trace to a compressed ``.npz`` file.

        Layout: ``initial`` is an ``(n, 3)`` array of (uid, x, y);
        ``updates`` is an ``(m, 4)`` array of (uid, x, y, time) rows in
        time order; ``tick_sizes`` records how the update rows group
        into ticks.
        """
        initial = np.array(
            [(uid, p.x, p.y) for uid, p in sorted(self.initial.items())],
            dtype=np.float64,
        ).reshape(-1, 3)
        updates = np.array(
            [
                (u.uid, u.point.x, u.point.y, u.time)
                for batch in self.ticks
                for u in batch
            ],
            dtype=np.float64,
        ).reshape(-1, 4)
        tick_sizes = np.array([len(batch) for batch in self.ticks], dtype=np.int64)
        np.savez_compressed(
            path, initial=initial, updates=updates, tick_sizes=tick_sizes
        )

    @staticmethod
    def load(path: str | os.PathLike) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        with np.load(path) as data:
            initial = {
                int(uid): Point(float(x), float(y))
                for uid, x, y in data["initial"]
            }
            ticks: list[list[LocationUpdate]] = []
            cursor = 0
            rows = data["updates"]
            for size in data["tick_sizes"]:
                batch = [
                    LocationUpdate(int(uid), Point(float(x), float(y)), float(t))
                    for uid, x, y, t in rows[cursor : cursor + int(size)]
                ]
                ticks.append(batch)
                cursor += int(size)
        return Trace(initial=initial, ticks=ticks)


def generate_trace(
    num_users: int,
    num_ticks: int,
    seed: SeedLike = 0,
    network: RoadNetwork | None = None,
    dt: float = 1.0,
) -> Trace:
    """Simulate ``num_users`` objects for ``num_ticks`` steps.

    Uses the synthetic county map by default; pass ``network`` to replay
    on a custom road network.
    """
    if network is None:
        network = synthetic_county_map(seed=seed)
    generator = NetworkGenerator(network, num_users, seed=seed)
    initial = generator.positions()
    ticks = [generator.step(dt) for _ in range(num_ticks)]
    return Trace(initial=initial, ticks=ticks)
