"""Network-based generator of moving objects (Brinkhoff-style).

Reimplements the observable behaviour of the generator the paper uses
[Brinkhoff 2002]: each object spawns at a network node, chooses a random
destination, follows the time-optimal route at the speed of the road
class it is currently on, and picks a fresh destination on arrival.
Stepping the generator yields one location update per object per tick —
the update stream the location anonymizer is benchmarked on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Point
from repro.mobility.roadnet import RoadNetwork
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["MovingObject", "NetworkGenerator", "LocationUpdate"]


@dataclass(frozen=True, slots=True)
class LocationUpdate:
    """One ``(uid, x, y)`` location report, as received by the anonymizer."""

    uid: int
    point: Point
    time: float


@dataclass
class MovingObject:
    """The kinematic state of one generated object.

    The object is always somewhere on its current route: ``route`` is a
    list of edge ids, ``leg`` indexes into it, ``offset`` is distance
    travelled along the current edge from its entry endpoint, and
    ``entry_node`` records which endpoint of the edge the object entered
    from (edges are undirected, so direction must be remembered).
    """

    oid: int
    route: list[int]
    leg: int
    entry_node: int
    offset: float
    speed_factor: float = 1.0

    def current_edge(self, network: RoadNetwork) -> int:
        return self.route[self.leg]

    def position(self, network: RoadNetwork) -> Point:
        eid = self.route[self.leg]
        edge = network.edge(eid)
        # point_along_edge measures from edge.u; convert if we entered at v.
        if self.entry_node == edge.u:
            return network.point_along_edge(eid, self.offset)
        return network.point_along_edge(eid, edge.length - self.offset)


class NetworkGenerator:
    """Generate and advance a population of network-constrained objects.

    Parameters
    ----------
    network:
        The road network to move on (must be connected).
    num_objects:
        Population size.
    seed:
        Seed or generator for all randomness (spawn nodes, destinations).
    speed_jitter:
        Each object gets a personal speed factor drawn uniformly from
        ``[1 - speed_jitter, 1 + speed_jitter]`` — Brinkhoff's per-object
        speed classes, collapsed to a continuous factor.
    """

    def __init__(
        self,
        network: RoadNetwork,
        num_objects: int,
        seed: SeedLike = 0,
        speed_jitter: float = 0.3,
    ) -> None:
        if num_objects < 0:
            raise ValueError("num_objects must be non-negative")
        if not 0.0 <= speed_jitter < 1.0:
            raise ValueError("speed_jitter must be in [0, 1)")
        if network.num_nodes == 0:
            raise ValueError("network is empty")
        self.network = network
        self._rng = ensure_rng(seed)
        self._time = 0.0
        self.objects: dict[int, MovingObject] = {}
        for oid in range(num_objects):
            self.objects[oid] = self._spawn(oid, speed_jitter)
        self._speed_jitter = speed_jitter
        self._next_oid = num_objects

    # ------------------------------------------------------------------
    # Population management
    # ------------------------------------------------------------------
    def _spawn(self, oid: int, speed_jitter: float) -> MovingObject:
        source = int(self._rng.integers(self.network.num_nodes))
        route, entry = self._fresh_route(source)
        factor = float(self._rng.uniform(1.0 - speed_jitter, 1.0 + speed_jitter))
        # Start at a random offset along the first leg so the initial
        # population is spread over edges, not piled on intersections.
        first_edge = self.network.edge(route[0])
        offset = float(self._rng.uniform(0.0, first_edge.length))
        return MovingObject(
            oid=oid,
            route=route,
            leg=0,
            entry_node=entry,
            offset=offset,
            speed_factor=factor,
        )

    def _fresh_route(self, source: int) -> tuple[list[int], int]:
        """A non-empty route starting at ``source`` plus its entry node."""
        while True:
            target = int(self._rng.integers(self.network.num_nodes))
            if target == source:
                continue
            route = self.network.shortest_path(source, target)
            if route:
                return route, source

    def add_object(self) -> int:
        """Register one more object; returns its oid (new user joining)."""
        oid = self._next_oid
        self._next_oid += 1
        self.objects[oid] = self._spawn(oid, self._speed_jitter)
        return oid

    def remove_object(self, oid: int) -> None:
        """Remove an object (user quitting the service)."""
        del self.objects[oid]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def time(self) -> float:
        return self._time

    def position_of(self, oid: int) -> Point:
        return self.objects[oid].position(self.network)

    def positions(self) -> dict[int, Point]:
        """Current position of every object."""
        return {oid: obj.position(self.network) for oid, obj in self.objects.items()}

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def step(self, dt: float = 1.0) -> list[LocationUpdate]:
        """Advance every object by ``dt`` time units; returns the update
        stream (one update per object, as continuous location reporting
        in the paper's architecture)."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self._time += dt
        updates: list[LocationUpdate] = []
        for obj in self.objects.values():
            self._advance(obj, dt)
            updates.append(
                LocationUpdate(obj.oid, obj.position(self.network), self._time)
            )
        return updates

    def _advance(self, obj: MovingObject, dt: float) -> None:
        remaining = dt
        while remaining > 0:
            eid = obj.route[obj.leg]
            edge = self.network.edge(eid)
            speed = edge.road_class.speed * obj.speed_factor
            distance_left = edge.length - obj.offset
            travel = speed * remaining
            if travel < distance_left:
                obj.offset += travel
                return
            # Consume this leg entirely and move to the next.
            remaining -= distance_left / speed
            exit_node = edge.other(obj.entry_node)
            obj.leg += 1
            obj.offset = 0.0
            if obj.leg >= len(obj.route):
                # Arrived: pick a fresh destination from the exit node.
                route, entry = self._fresh_route(exit_node)
                obj.route = route
                obj.leg = 0
                obj.entry_node = entry
            else:
                obj.entry_node = exit_node
