"""Road networks and a synthetic county map.

The paper drives its evaluation with the Brinkhoff network-based
generator of moving objects [9] over the road map of Hennepin County,
Minnesota.  That map is not redistributable, so (per DESIGN.md's
substitution table) we build a deterministic synthetic county: a jittered
arterial grid, two diagonal highways, and randomised local streets.  What
matters to the experiments is only that objects move along a connected
planar network with heterogeneous speeds, producing realistic non-uniform
population density — which this map delivers.

The network is a simple undirected graph with its own Dijkstra; routes
are weighted by travel *time* so highways attract through traffic exactly
as in Brinkhoff's generator.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.geometry import Point, Rect
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["RoadClass", "RoadEdge", "RoadNetwork", "synthetic_county_map"]


@dataclass(frozen=True, slots=True)
class RoadClass:
    """A category of road with an associated free-flow speed.

    Speeds are in space-units per time-unit; with the unit-square service
    area one space unit is "the county diameter", so the defaults below
    give highway objects roughly 60 grid cells of a 2^9 pyramid per step.
    """

    name: str
    speed: float

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError("road speed must be positive")


#: Default road classes of the synthetic county (relative speeds 5:3:1.5,
#: mirroring highway / arterial / residential free-flow ratios).
HIGHWAY = RoadClass("highway", 0.050)
ARTERIAL = RoadClass("arterial", 0.030)
LOCAL = RoadClass("local", 0.015)


@dataclass(frozen=True, slots=True)
class RoadEdge:
    """An undirected road segment between two node ids."""

    u: int
    v: int
    road_class: RoadClass
    length: float

    @property
    def travel_time(self) -> float:
        return self.length / self.road_class.speed

    def other(self, node: int) -> int:
        """The endpoint opposite ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"node {node} not on edge ({self.u}, {self.v})")


class RoadNetwork:
    """An undirected road graph with positions, edges and routing."""

    def __init__(self) -> None:
        self._positions: list[Point] = []
        self._edges: list[RoadEdge] = []
        self._adjacency: list[list[int]] = []  # node -> list of edge indexes

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, point: Point) -> int:
        """Add a node; returns its id."""
        self._positions.append(point)
        self._adjacency.append([])
        return len(self._positions) - 1

    def add_edge(self, u: int, v: int, road_class: RoadClass) -> int:
        """Add an undirected edge between existing nodes; returns edge id."""
        if u == v:
            raise ValueError("self-loops are not allowed")
        for node in (u, v):
            if not 0 <= node < len(self._positions):
                raise ValueError(f"unknown node id {node}")
        length = self._positions[u].distance_to(self._positions[v])
        if length <= 0:
            raise ValueError("zero-length edge (coincident nodes)")
        edge = RoadEdge(u, v, road_class, length)
        self._edges.append(edge)
        eid = len(self._edges) - 1
        self._adjacency[u].append(eid)
        self._adjacency[v].append(eid)
        return eid

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._positions)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def node_position(self, node: int) -> Point:
        return self._positions[node]

    def edge(self, eid: int) -> RoadEdge:
        return self._edges[eid]

    def edges_of(self, node: int) -> list[int]:
        """Edge ids incident to ``node``."""
        return list(self._adjacency[node])

    def edges(self) -> list[RoadEdge]:
        return list(self._edges)

    def bounding_box(self) -> Rect:
        """The tight bounding box of all node positions."""
        if not self._positions:
            raise ValueError("empty network has no bounding box")
        xs = [p.x for p in self._positions]
        ys = [p.y for p in self._positions]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def point_along_edge(self, eid: int, offset: float) -> Point:
        """The point ``offset`` space-units along edge ``eid`` from
        its ``u`` endpoint (clamped to the edge)."""
        edge = self._edges[eid]
        a = self._positions[edge.u]
        b = self._positions[edge.v]
        t = min(max(offset / edge.length, 0.0), 1.0)
        return Point(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shortest_path(self, source: int, target: int) -> list[int]:
        """Edge-id sequence of the fastest route (by travel time).

        Returns an empty list when ``source == target``; raises
        ``ValueError`` when unreachable.
        """
        if source == target:
            return []
        dist = {source: 0.0}
        prev_edge: dict[int, int] = {}
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if node == target:
                break
            if d > dist.get(node, math.inf):
                continue
            for eid in self._adjacency[node]:
                edge = self._edges[eid]
                neighbor = edge.other(node)
                nd = d + edge.travel_time
                if nd < dist.get(neighbor, math.inf):
                    dist[neighbor] = nd
                    prev_edge[neighbor] = eid
                    heapq.heappush(heap, (nd, neighbor))
        if target not in prev_edge:
            raise ValueError(f"no route from {source} to {target}")
        path: list[int] = []
        node = target
        while node != source:
            eid = prev_edge[node]
            path.append(eid)
            node = self._edges[eid].other(node)
        path.reverse()
        return path

    def is_connected(self) -> bool:
        """True when every node is reachable from node 0."""
        if not self._positions:
            return True
        seen = {0}
        stack = [0]
        while stack:
            node = stack.pop()
            for eid in self._adjacency[node]:
                neighbor = self._edges[eid].other(node)
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == self.num_nodes


def synthetic_county_map(
    seed: SeedLike = 0,
    grid_size: int = 12,
    bounds: Rect = Rect(0.0, 0.0, 1.0, 1.0),
    jitter: float = 0.25,
    local_street_probability: float = 0.6,
) -> RoadNetwork:
    """Build the deterministic synthetic county road map.

    Structure (see DESIGN.md substitutions):

    * an ``grid_size x grid_size`` lattice of arterial intersections,
      each jittered by up to ``jitter`` of the lattice spacing;
    * arterial edges between lattice neighbours;
    * two diagonal *highways* overlaid on the lattice diagonal nodes;
    * with probability ``local_street_probability`` per lattice cell, an
      interior *local* node connected to the cell's four corners —
      the residential capillaries that concentrate slow traffic.

    The result is connected by construction (the arterial lattice alone
    is connected; everything else attaches to it).
    """
    if grid_size < 2:
        raise ValueError("grid_size must be at least 2")
    if not 0.0 <= jitter < 0.5:
        raise ValueError("jitter must be in [0, 0.5)")
    rng = ensure_rng(seed)
    net = RoadNetwork()

    dx = bounds.width / (grid_size - 1)
    dy = bounds.height / (grid_size - 1)
    margin_x = 0.02 * bounds.width
    margin_y = 0.02 * bounds.height

    def lattice_point(i: int, j: int) -> Point:
        jx = float(rng.uniform(-jitter, jitter)) * dx
        jy = float(rng.uniform(-jitter, jitter)) * dy
        x = min(max(bounds.x_min + i * dx + jx, bounds.x_min + margin_x),
                bounds.x_max - margin_x)
        y = min(max(bounds.y_min + j * dy + jy, bounds.y_min + margin_y),
                bounds.y_max - margin_y)
        return Point(x, y)

    node_id = [[net.add_node(lattice_point(i, j)) for j in range(grid_size)]
               for i in range(grid_size)]

    # Arterial lattice.
    for i in range(grid_size):
        for j in range(grid_size):
            if i + 1 < grid_size:
                net.add_edge(node_id[i][j], node_id[i + 1][j], ARTERIAL)
            if j + 1 < grid_size:
                net.add_edge(node_id[i][j], node_id[i][j + 1], ARTERIAL)

    # Two diagonal highways connecting opposite county corners.
    for i in range(grid_size - 1):
        net.add_edge(node_id[i][i], node_id[i + 1][i + 1], HIGHWAY)
        net.add_edge(
            node_id[i][grid_size - 1 - i], node_id[i + 1][grid_size - 2 - i], HIGHWAY
        )

    # Local streets inside lattice cells.
    for i in range(grid_size - 1):
        for j in range(grid_size - 1):
            if rng.random() >= local_street_probability:
                continue
            corners = [
                node_id[i][j],
                node_id[i + 1][j],
                node_id[i][j + 1],
                node_id[i + 1][j + 1],
            ]
            cx = sum(net.node_position(c).x for c in corners) / 4.0
            cy = sum(net.node_position(c).y for c in corners) / 4.0
            wobble_x = float(rng.uniform(-0.2, 0.2)) * dx
            wobble_y = float(rng.uniform(-0.2, 0.2)) * dy
            center = net.add_node(Point(cx + wobble_x, cy + wobble_y))
            for corner in corners:
                net.add_edge(center, corner, LOCAL)

    return net
