"""Commuter movement: home/work anchored daily patterns.

The plain :class:`NetworkGenerator` gives Brinkhoff-style wandering —
good for steady-state experiments, but real location-service load has
*tides*: populations concentrate downtown by day and in residential
cells by night, which stresses the adaptive anonymizer's split/merge
machinery far harder than stationary-density wandering.
``CommuterGenerator`` models that: each object owns a home node and a
work node (work nodes drawn from a small downtown subset), commutes
between them on shortest paths, and dwells at each anchor for a random
number of ticks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Point
from repro.mobility.generator import LocationUpdate
from repro.mobility.roadnet import RoadNetwork
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["CommuterGenerator"]


@dataclass
class _Commuter:
    oid: int
    home: int
    work: int
    #: "dwelling" or "travelling"
    state: str
    at_node: int  # meaningful while dwelling
    dwell_left: float
    route: list[int]
    leg: int
    entry_node: int
    offset: float
    speed_factor: float
    heading_to_work: bool


class CommuterGenerator:
    """Home/work commuting population over a road network."""

    def __init__(
        self,
        network: RoadNetwork,
        num_objects: int,
        seed: SeedLike = 0,
        downtown_fraction: float = 0.15,
        dwell_range: tuple[float, float] = (3.0, 10.0),
        speed_jitter: float = 0.3,
    ) -> None:
        if num_objects < 0:
            raise ValueError("num_objects must be non-negative")
        if not 0.0 < downtown_fraction <= 1.0:
            raise ValueError("downtown_fraction must be in (0, 1]")
        if not 0 < dwell_range[0] <= dwell_range[1]:
            raise ValueError("dwell_range must satisfy 0 < lo <= hi")
        if network.num_nodes < 2:
            raise ValueError("network too small")
        self.network = network
        self.dwell_range = dwell_range
        self._rng = ensure_rng(seed)
        self._time = 0.0

        # Downtown: the nodes nearest the network's centroid.
        num_downtown = max(1, int(network.num_nodes * downtown_fraction))
        xs = [network.node_position(i).x for i in range(network.num_nodes)]
        ys = [network.node_position(i).y for i in range(network.num_nodes)]
        centroid = Point(sum(xs) / len(xs), sum(ys) / len(ys))
        ranked = sorted(
            range(network.num_nodes),
            key=lambda n: network.node_position(n).distance_to(centroid),
        )
        self.downtown_nodes = ranked[:num_downtown]

        self.objects: dict[int, _Commuter] = {}
        for oid in range(num_objects):
            home = int(self._rng.integers(network.num_nodes))
            work = int(self._rng.choice(self.downtown_nodes))
            if work == home:
                work = self.downtown_nodes[0] if home != self.downtown_nodes[0] else (
                    self.downtown_nodes[-1]
                    if len(self.downtown_nodes) > 1
                    else (home + 1) % network.num_nodes
                )
            self.objects[oid] = _Commuter(
                oid=oid,
                home=home,
                work=work,
                state="dwelling",
                at_node=home,
                dwell_left=float(self._rng.uniform(*dwell_range)),
                route=[],
                leg=0,
                entry_node=home,
                offset=0.0,
                speed_factor=float(
                    self._rng.uniform(1.0 - speed_jitter, 1.0 + speed_jitter)
                ),
                heading_to_work=True,
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def time(self) -> float:
        return self._time

    def position_of(self, oid: int) -> Point:
        obj = self.objects[oid]
        if obj.state == "dwelling":
            return self.network.node_position(obj.at_node)
        eid = obj.route[obj.leg]
        edge = self.network.edge(eid)
        if obj.entry_node == edge.u:
            return self.network.point_along_edge(eid, obj.offset)
        return self.network.point_along_edge(eid, edge.length - obj.offset)

    def positions(self) -> dict[int, Point]:
        return {oid: self.position_of(oid) for oid in self.objects}

    def fraction_downtown(self, radius: float = 0.15) -> float:
        """Fraction of the population within ``radius`` of downtown —
        the tide level the generator is built to produce."""
        if not self.objects:
            return 0.0
        centroid = self.network.node_position(self.downtown_nodes[0])
        inside = sum(
            1
            for oid in self.objects
            if self.position_of(oid).distance_to(centroid) <= radius
        )
        return inside / len(self.objects)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def step(self, dt: float = 1.0) -> list[LocationUpdate]:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self._time += dt
        updates = []
        for obj in self.objects.values():
            self._advance(obj, dt)
            updates.append(LocationUpdate(obj.oid, self.position_of(obj.oid), self._time))
        return updates

    def _advance(self, obj: _Commuter, dt: float) -> None:
        remaining = dt
        while remaining > 0:
            if obj.state == "dwelling":
                if obj.dwell_left > remaining:
                    obj.dwell_left -= remaining
                    return
                remaining -= obj.dwell_left
                self._depart(obj)
                continue
            remaining = self._travel(obj, remaining)

    def _depart(self, obj: _Commuter) -> None:
        destination = obj.work if obj.heading_to_work else obj.home
        if destination == obj.at_node:
            # Degenerate commute: flip direction and dwell again.
            obj.heading_to_work = not obj.heading_to_work
            obj.dwell_left = float(self._rng.uniform(*self.dwell_range))
            return
        obj.route = self.network.shortest_path(obj.at_node, destination)
        obj.leg = 0
        obj.entry_node = obj.at_node
        obj.offset = 0.0
        obj.state = "travelling"

    def _travel(self, obj: _Commuter, remaining: float) -> float:
        """Advance along the route; returns unconsumed time."""
        while remaining > 0:
            eid = obj.route[obj.leg]
            edge = self.network.edge(eid)
            speed = edge.road_class.speed * obj.speed_factor
            distance_left = edge.length - obj.offset
            travel = speed * remaining
            if travel < distance_left:
                obj.offset += travel
                return 0.0
            remaining -= distance_left / speed
            exit_node = edge.other(obj.entry_node)
            obj.leg += 1
            obj.offset = 0.0
            if obj.leg >= len(obj.route):
                # Arrived: dwell, then commute back.
                obj.state = "dwelling"
                obj.at_node = exit_node
                obj.heading_to_work = not obj.heading_to_work
                obj.dwell_left = float(self._rng.uniform(*self.dwell_range))
                return remaining
            obj.entry_node = exit_node
        return 0.0
