"""``TelemetryExport`` — the sanctioned way telemetry crosses the
anonymizer boundary.

The paper's trust model (Figure 1) allows exactly one location-shaped
value to leave the anonymizer: the ``(k, A_min)``-cloaked region.  A
metrics pipeline is a second egress path, so it gets the same
treatment: the only object that may carry anonymizer-side telemetry to
an untrusted sink is a :class:`TelemetryExport`, whose constructor
re-screens **every** metric label value and span attribute against the
coordinate-pair pattern and rejects the export outright on a hit
(:class:`~repro.observability.metrics.TelemetryLeakError`).  The name
is on the CSP001 ``safe_imports`` allowlist next to ``CloakedRegion``;
shipping a raw ``MetricsRegistry`` across the boundary is a lint
violation.

Two wire formats: a JSON document (machine consumption, exact — the
metrics portion round-trips through
:meth:`~repro.observability.metrics.MetricsRegistry.from_snapshot`)
and Prometheus text exposition format (scraping; floats rendered with
``repr`` precision).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Mapping

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryLeakError,
    ensure_safe_label_value,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.observability.runtime import Observability

__all__ = ["TelemetryExport"]


def _screen_metrics_snapshot(snapshot: Mapping[str, object]) -> None:
    entries = snapshot.get("metrics", [])
    if not isinstance(entries, list):
        raise TelemetryLeakError("malformed metrics snapshot")
    for entry in entries:
        name = entry.get("name", "<unnamed>")
        for key, value in entry.get("labels", []):
            ensure_safe_label_value(
                value, context=f"metric {name!r} label {key!r}"
            )


def _screen_span_dict(span: Mapping[str, object]) -> None:
    name = span.get("name", "<unnamed>")
    attributes = span.get("attributes", {})
    if isinstance(attributes, dict):
        for key, value in attributes.items():
            ensure_safe_label_value(
                value, context=f"span {name!r} attribute {key!r}"
            )
    children = span.get("children", [])
    if isinstance(children, list):
        for child in children:
            _screen_span_dict(child)


class TelemetryExport:
    """An immutable, screened snapshot of one observability session."""

    __slots__ = ("metrics", "spans", "slos")

    def __init__(
        self,
        metrics: Mapping[str, object],
        spans: tuple[Mapping[str, object], ...] = (),
        slos: Mapping[str, object] | None = None,
    ) -> None:
        _screen_metrics_snapshot(metrics)
        for span in spans:
            _screen_span_dict(span)
        self.metrics = metrics
        self.spans = spans
        self.slos = slos if slos is not None else {"objectives": [], "breaches": []}

    @classmethod
    def from_observability(cls, session: "Observability") -> "TelemetryExport":
        """Snapshot a live session; raises ``TelemetryLeakError`` if any
        label value or span attribute is location-shaped."""
        return cls(
            metrics=session.metrics.snapshot(),
            spans=tuple(session.tracer.snapshot()),
            slos=session.slo.snapshot(),
        )

    def restore_metrics(self) -> MetricsRegistry:
        """Rebuild the metrics registry this export was taken from."""
        return MetricsRegistry.from_snapshot(self.metrics)

    # -- wire formats ----------------------------------------------------
    def as_dict(self) -> dict[str, object]:
        return {
            "metrics": self.metrics,
            "spans": list(self.spans),
            "slos": self.slos,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        registry = self.restore_metrics()
        lines: list[str] = []
        seen_headers: set[str] = set()
        for metric in registry:
            prom_name = metric.name
            if prom_name not in seen_headers:
                seen_headers.add(prom_name)
                if metric.help:
                    lines.append(f"# HELP {prom_name} {metric.help}")
                lines.append(f"# TYPE {prom_name} {metric.kind}")
            if isinstance(metric, Counter):
                lines.append(
                    f"{prom_name}{_labels(metric.labels)} {metric.value}"
                )
            elif isinstance(metric, Gauge):
                lines.append(
                    f"{prom_name}{_labels(metric.labels)} {_num(metric.value)}"
                )
            elif isinstance(metric, Histogram):
                cumulative = 0
                for boundary, count in zip(
                    metric.boundaries, metric.bucket_counts
                ):
                    cumulative += count
                    lines.append(
                        f"{prom_name}_bucket"
                        f"{_labels(metric.labels, le=_num(boundary))} "
                        f"{cumulative}"
                    )
                cumulative += metric.bucket_counts[-1]
                lines.append(
                    f"{prom_name}_bucket"
                    f"{_labels(metric.labels, le='+Inf')} {cumulative}"
                )
                lines.append(
                    f"{prom_name}_sum{_labels(metric.labels)} "
                    f"{_num(metric.sum)}"
                )
                lines.append(
                    f"{prom_name}_count{_labels(metric.labels)} {metric.count}"
                )
        return "\n".join(lines) + "\n" if lines else ""


def _num(value: float) -> str:
    """Prometheus float rendering (no exponent surprises for ints)."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(pairs: tuple[tuple[str, object], ...], le: str | None = None) -> str:
    rendered = [f'{key}="{_escape(str(value))}"' for key, value in pairs]
    if le is not None:
        rendered.append(f'le="{le}"')
    if not rendered:
        return ""
    return "{" + ",".join(rendered) + "}"
