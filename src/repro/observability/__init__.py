"""Privacy-safe observability for the Casper reproduction.

Dependency-free metrics (:mod:`~repro.observability.metrics`),
span tracing (:mod:`~repro.observability.tracing`), SLO monitors
(:mod:`~repro.observability.slo`), the process-wide on/off switch and
record helpers (:mod:`~repro.observability.runtime`), and the
:class:`~repro.observability.export.TelemetryExport` boundary type —
the only sanctioned way telemetry leaves the trusted anonymizer.

This package deliberately imports nothing from the anonymizer,
workload, mobility or simulation layers: record helpers take plain
ints/floats/strs, so the untrusted processor/server side can import it
without widening the CSP001 taint frontier.
"""

from repro.observability.export import TelemetryExport
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_RATIO_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryLeakError,
    ensure_safe_label_value,
    looks_like_coordinates,
)
from repro.observability.runtime import (
    Observability,
    active,
    disable,
    enable,
    enabled,
    is_enabled,
)
from repro.observability.slo import (
    DEFAULT_SLOS,
    SLOBreach,
    SLODefinition,
    SLOMonitor,
)
from repro.observability.tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetryLeakError",
    "ensure_safe_label_value",
    "looks_like_coordinates",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_RATIO_BUCKETS",
    "Span",
    "Tracer",
    "SLODefinition",
    "SLOBreach",
    "SLOMonitor",
    "DEFAULT_SLOS",
    "Observability",
    "enable",
    "disable",
    "active",
    "is_enabled",
    "enabled",
    "TelemetryExport",
]
