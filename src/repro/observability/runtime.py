"""The process-wide observability switch and the record helpers.

Telemetry is **off by default**: :func:`active` returns ``None`` and
every instrumented hot path reduces to one module-global load plus a
``None`` check — the near-zero-cost contract that keeps
``tools/bench.py`` numbers honest.  :func:`enable` installs an
:class:`Observability` bundle (metrics registry + tracer + SLO
monitor); :func:`disable` removes it.  Tests use the :func:`enabled`
context manager so the global can never leak across tests (the
conftest pollution guard fails any test that leaves it populated).

The record helpers centralise the metric catalogue: every label key and
value used anywhere in the instrumentation is defined here, with only
str/int/bool values — never a coordinate — which is what the CSP008
lint rule and the :class:`~repro.observability.export.TelemetryExport`
boundary check enforce.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import ContextManager, Iterator

from repro.observability.metrics import (
    DEFAULT_RATIO_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
)
from repro.observability.slo import SLOMonitor
from repro.observability.tracing import Tracer
from repro.utils.timer import monotonic

__all__ = [
    "Observability",
    "enable",
    "disable",
    "active",
    "is_enabled",
    "enabled",
    "record_cloak",
    "record_cache_event",
    "record_candidates",
    "note_candidates",
    "record_phase",
    "phase_scope",
    "record_batch",
    "record_query",
    "query_scope",
    "record_server_request",
    "note_server_request",
    "record_monitor_flush",
    "record_safe_region_event",
    "note_safe_region_event",
    "record_validity_lifetime",
    "note_validity_lifetime",
    "record_fault",
    "note_fault",
    "record_retry",
    "note_retry",
    "record_fallback_cloak",
    "note_fallback_cloak",
    "record_recovery",
    "note_recovery",
    "record_shard_cloak",
    "note_shard_cloak",
    "record_shard_op",
    "note_shard_op",
    "record_shard_occupancy",
    "note_shard_occupancy",
    "record_worker_roundtrip",
    "note_worker_roundtrip",
    "record_worker_batch",
    "note_worker_batch",
    "record_worker_event",
    "note_worker_event",
]


class Observability:
    """One observability session: metrics + traces + SLO windows."""

    __slots__ = ("metrics", "tracer", "slo")

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        slo: SLOMonitor | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.slo = slo if slo is not None else SLOMonitor()

    @property
    def is_empty(self) -> bool:
        """True while nothing has been recorded (the state a test must
        leave the global session in, if it leaves one at all)."""
        return (
            len(self.metrics) == 0
            and not self.tracer.finished
            and self.tracer.open_depth == 0
            and len(self.slo) == 0
        )

    def clear(self) -> None:
        self.metrics.clear()
        self.tracer.clear()
        self.slo.clear()


_active: Observability | None = None


def active() -> Observability | None:
    """The installed session, or ``None`` (the no-op default)."""
    return _active


def is_enabled() -> bool:
    return _active is not None


def enable(session: Observability | None = None) -> Observability:
    """Install (or replace) the process-wide observability session."""
    global _active
    _active = session if session is not None else Observability()
    return _active


def disable() -> Observability | None:
    """Remove the session; returns it for final inspection/export."""
    global _active
    session, _active = _active, None
    return session


@contextmanager
def enabled(session: Observability | None = None) -> Iterator[Observability]:
    """Scoped enable/disable — the only pattern tests should use."""
    global _active
    previous = _active
    session = enable(session)
    try:
        yield session
    finally:
        _active = previous


# ----------------------------------------------------------------------
# Record helpers — the metric catalogue lives here (see
# docs/observability.md for the operator-facing view).
# ----------------------------------------------------------------------
def record_cloak(
    obs: Observability,
    anonymizer: str,
    seconds: float,
    area: float,
    a_min: float,
    achieved_k: int,
    requested_k: int,
) -> None:
    """One successful cloak: latency, privacy-contract ratios, SLOs.

    This runs once per cloak inside the benchmark-gated hot path, so
    the resolved instruments are memoized in the registry's
    ``handle_cache`` — the steady state is three ``observe`` calls, one
    counter increment and the SLO window appends.
    """
    m = obs.metrics
    handles = m.handle_cache.get(("cloak", anonymizer))
    if handles is None:
        labels = (("anonymizer", anonymizer),)
        handles = (
            m.counter(
                "casper_cloak_requests_total", labels,
                help="cloaking requests served",
            ),
            m.histogram(
                "casper_cloak_seconds", labels,
                help="anonymizer cloaking latency",
            ),
            m.histogram(
                "casper_cloak_k_ratio", labels,
                boundaries=DEFAULT_RATIO_BUCKETS,
                help="achieved k over requested k (>= 1 when the "
                     "contract holds)",
            ),
        )
        m.handle_cache[("cloak", anonymizer)] = handles
    requests, latency, k_hist = handles
    requests.inc()
    latency.observe(seconds)
    k_ratio = achieved_k / requested_k if requested_k > 0 else 1.0
    k_hist.observe(k_ratio)
    slo_record = obs.slo.record
    slo_record("cloak_latency_seconds", seconds)
    slo_record("k_satisfaction", k_ratio)
    if a_min > 0.0:
        area_ratio = area / a_min
        area_hist = m.handle_cache.get(("cloak_area", anonymizer))
        if area_hist is None:
            area_hist = m.histogram(
                "casper_cloak_area_ratio", (("anonymizer", anonymizer),),
                boundaries=DEFAULT_RATIO_BUCKETS,
                help="cloaked area over A_min (>= 1 when the contract "
                     "holds)",
            )
            m.handle_cache[("cloak_area", anonymizer)] = area_hist
        area_hist.observe(area_ratio)
        slo_record("cloak_area_ratio", area_ratio)


def record_cache_event(
    obs: Observability, event: str, shard: str | None = None
) -> None:
    """Cloak-cache traffic: event in hit/miss/invalidation/eviction.

    Sharded runtimes pass their cache's shard label (a shard id or
    ``"spine"``) so per-shard hit rates stay distinguishable; the
    single-pyramid anonymizers keep the unlabelled stream.  Either way
    the label set is bounded — event kind times fleet size.
    """
    m = obs.metrics
    key = ("cache_event", event, shard)
    handle = m.handle_cache.get(key)
    if handle is None:
        labels = (("event", event),)
        if shard is not None:
            labels += (("shard", shard),)
        handle = m.counter(
            "casper_cloak_cache_events_total", labels,
            help="cloak-cache lookups by outcome",
        )
        m.handle_cache[key] = handle
    handle.inc()


def record_candidates(obs: Observability, size: int) -> None:
    """One candidate list produced by the query processor."""
    obs.metrics.histogram(
        "casper_candidate_list_size", (),
        boundaries=DEFAULT_SIZE_BUCKETS,
        help="candidate-list fan-out shipped to clients",
    ).observe(float(size))
    obs.slo.record("candidate_list_size", float(size))


def note_candidates(size: int) -> None:
    """Null-safe :func:`record_candidates` — a no-op while disabled."""
    obs = _active
    if obs is not None:
        record_candidates(obs, size)


#: Shared do-nothing context for disabled-telemetry phase scopes
#: (``nullcontext`` is stateless, so one instance serves every site).
_NULL_SCOPE: ContextManager[None] = nullcontext()


def phase_scope(phase: str, data_kind: str) -> ContextManager[None]:
    """Null-safe :func:`record_phase` — a shared no-op context while
    disabled, so instrumented processor phases read as one ``with``."""
    obs = _active
    if obs is None:
        return _NULL_SCOPE
    return record_phase(obs, phase, data_kind)


@contextmanager
def record_phase(
    obs: Observability, phase: str, data_kind: str
) -> Iterator[None]:
    """Time one Algorithm 2 phase (filter / extension / candidates) as
    both a child span and a phase-latency histogram."""
    start = monotonic()
    with obs.tracer.span(f"processor.{phase}", data=data_kind):
        yield
    obs.metrics.histogram(
        "casper_processor_phase_seconds",
        (("phase", phase), ("data", data_kind)),
        help="query-processor phase latency",
    ).observe(monotonic() - start)


def record_batch(
    obs: Observability, size: int, computed: int, seconds: float
) -> None:
    """One BatchQueryEngine.run: sizes, dedup savings, latency."""
    m = obs.metrics
    m.counter(
        "casper_batch_runs_total", (), help="batch-engine executions"
    ).inc()
    m.counter(
        "casper_batch_requests_total", (("outcome", "computed"),),
        help="batch requests by dedup outcome",
    ).inc(computed)
    m.counter(
        "casper_batch_requests_total", (("outcome", "deduplicated"),),
        help="batch requests by dedup outcome",
    ).inc(size - computed)
    m.histogram(
        "casper_batch_size", (),
        boundaries=DEFAULT_SIZE_BUCKETS,
        help="requests per batch run",
    ).observe(float(size))
    m.histogram(
        "casper_batch_seconds", (), help="batch-engine run latency"
    ).observe(seconds)


def record_query(obs: Observability, query_type: str, seconds: float) -> None:
    """One facade-level private query, end to end."""
    labels = (("query_type", query_type),)
    m = obs.metrics
    m.counter(
        "casper_queries_total", labels, help="facade queries served"
    ).inc()
    m.histogram(
        "casper_query_seconds", labels, help="facade query latency"
    ).observe(seconds)


@contextmanager
def _query_recorder(obs: Observability, query_type: str) -> Iterator[None]:
    start = monotonic()
    with obs.tracer.span("casper.query", query_type=query_type):
        yield
    record_query(obs, query_type, monotonic() - start)


def query_scope(query_type: str) -> ContextManager[None]:
    """Null-safe facade-query scope: a ``casper.query`` root span (under
    which processor phase spans nest as children) plus the end-to-end
    latency histogram.  A shared no-op context while disabled."""
    obs = _active
    if obs is None:
        return _NULL_SCOPE
    return _query_recorder(obs, query_type)


def record_server_request(obs: Observability, operation: str) -> None:
    """One privacy-aware server operation (by method name)."""
    obs.metrics.counter(
        "casper_server_requests_total", (("operation", operation),),
        help="location-server operations by kind",
    ).inc()


def note_server_request(operation: str) -> None:
    """Null-safe :func:`record_server_request` — a no-op while disabled."""
    obs = _active
    if obs is not None:
        record_server_request(obs, operation)


def record_fault(obs: Observability, kind: str, channel: str) -> None:
    """One injected fault.  ``channel`` is the channel *class*
    (``update`` / ``response`` / ``anonymizer``), never a per-user or
    per-request id — label cardinality stays bounded."""
    obs.metrics.counter(
        "casper_faults_injected_total",
        (("kind", kind), ("channel", channel)),
        help="faults injected by the resilience layer, by kind and channel class",
    ).inc()


def note_fault(kind: str, channel: str) -> None:
    """Null-safe :func:`record_fault` — a no-op while disabled."""
    obs = _active
    if obs is not None:
        record_fault(obs, kind, channel)


def record_retry(obs: Observability, operation: str) -> None:
    """One retransmission attempt (``operation``: ``update`` / ``response``)."""
    obs.metrics.counter(
        "casper_retries_total", (("operation", operation),),
        help="message retransmissions by operation",
    ).inc()


def note_retry(operation: str) -> None:
    """Null-safe :func:`record_retry` — a no-op while disabled."""
    obs = _active
    if obs is not None:
        record_retry(obs, operation)


def record_fallback_cloak(obs: Observability, mode: str) -> None:
    """One degraded-mode cloak served (``mode``: ``stale`` /
    ``escalated`` / ``cold_start``)."""
    obs.metrics.counter(
        "casper_fallback_cloaks_total", (("mode", mode),),
        help="cloaks served from a degradation-ladder rung, by rung",
    ).inc()


def note_fallback_cloak(mode: str) -> None:
    """Null-safe :func:`record_fallback_cloak` — a no-op while disabled."""
    obs = _active
    if obs is not None:
        record_fallback_cloak(obs, mode)


def record_recovery(obs: Observability, kind: str) -> None:
    """One successful recovery action (``kind``: ``restore`` /
    ``reregister``)."""
    obs.metrics.counter(
        "casper_recoveries_total", (("kind", kind),),
        help="recovery actions after crash or state loss, by kind",
    ).inc()


def note_recovery(kind: str) -> None:
    """Null-safe :func:`record_recovery` — a no-op while disabled."""
    obs = _active
    if obs is not None:
        record_recovery(obs, kind)


def record_shard_cloak(obs: Observability, shard: int, route: str) -> None:
    """One cloak served by a shard, by routing outcome.  ``route`` is
    ``local`` (settled strictly below the block level), ``boundary``
    (settled on block roots — sibling reads may have crossed shards
    through the spine) or ``spine`` (escalated above the block level).
    Labels carry the shard *id* only — never a cell or coordinate."""
    m = obs.metrics
    key = ("shard_cloak", shard, route)
    handle = m.handle_cache.get(key)
    if handle is None:
        handle = m.counter(
            "casper_shard_cloaks_total",
            (("shard", str(shard)), ("route", route)),
            help="cloaks served per shard, by spine-routing outcome",
        )
        m.handle_cache[key] = handle
    handle.inc()


def note_shard_cloak(shard: int, route: str) -> None:
    """Null-safe :func:`record_shard_cloak` — a no-op while disabled."""
    obs = _active
    if obs is not None:
        record_shard_cloak(obs, shard, route)


def record_shard_op(obs: Observability, shard: int, op: str) -> None:
    """One maintenance operation routed to a shard (``op``: ``register``
    / ``deregister`` / ``update`` / ``rehome`` / ``restore``)."""
    m = obs.metrics
    key = ("shard_op", shard, op)
    handle = m.handle_cache.get(key)
    if handle is None:
        handle = m.counter(
            "casper_shard_ops_total",
            (("shard", str(shard)), ("op", op)),
            help="maintenance operations routed per shard, by kind",
        )
        m.handle_cache[key] = handle
    handle.inc()


def note_shard_op(shard: int, op: str) -> None:
    """Null-safe :func:`record_shard_op` — a no-op while disabled."""
    obs = _active
    if obs is not None:
        record_shard_op(obs, shard, op)


def record_shard_occupancy(obs: Observability, occupancy: list[int]) -> None:
    """Instantaneous per-shard population (user counts only — the shard
    id is the sole label, bounded by the fleet size)."""
    for shard, users in enumerate(occupancy):
        obs.metrics.gauge(
            "casper_shard_users", (("shard", str(shard)),),
            help="registered users homed per shard",
        ).set(float(users))


def note_shard_occupancy(occupancy: list[int]) -> None:
    """Null-safe :func:`record_shard_occupancy` — a no-op while disabled."""
    obs = _active
    if obs is not None:
        record_shard_occupancy(obs, occupancy)


def record_worker_roundtrip(
    obs: Observability, shard: int, seconds: float
) -> None:
    """One parent<->worker frame exchange: wire round-trip latency,
    labelled by shard id only (never an envelope's contents)."""
    m = obs.metrics
    key = ("worker_roundtrip", shard)
    handle = m.handle_cache.get(key)
    if handle is None:
        handle = m.histogram(
            "casper_worker_roundtrip_seconds", (("shard", str(shard)),),
            help="parent-to-worker frame round-trip latency",
        )
        m.handle_cache[key] = handle
    handle.observe(seconds)


def note_worker_roundtrip(shard: int, seconds: float) -> None:
    """Null-safe :func:`record_worker_roundtrip` — a no-op while disabled."""
    obs = _active
    if obs is not None:
        record_worker_roundtrip(obs, shard, seconds)


def record_worker_batch(obs: Observability, shard: int, envelopes: int) -> None:
    """Queue depth drained into one frame: how many envelopes a worker's
    pending queue held when it was flushed across the IPC boundary."""
    m = obs.metrics
    key = ("worker_batch", shard)
    handle = m.handle_cache.get(key)
    if handle is None:
        handle = m.histogram(
            "casper_worker_batch_envelopes", (("shard", str(shard)),),
            boundaries=DEFAULT_SIZE_BUCKETS,
            help="envelopes per frame flushed to a shard worker",
        )
        m.handle_cache[key] = handle
    handle.observe(float(envelopes))


def note_worker_batch(shard: int, envelopes: int) -> None:
    """Null-safe :func:`record_worker_batch` — a no-op while disabled."""
    obs = _active
    if obs is not None:
        record_worker_batch(obs, shard, envelopes)


def record_worker_event(obs: Observability, shard: int, event: str) -> None:
    """One worker-pool lifecycle or transport event (``spawn`` /
    ``shutdown`` / ``crash`` / ``heal`` / ``retransmit`` / ``nack`` /
    ``timeout``), labelled by shard id only."""
    m = obs.metrics
    key = ("worker_event", shard, event)
    handle = m.handle_cache.get(key)
    if handle is None:
        handle = m.counter(
            "casper_worker_events_total",
            (("shard", str(shard)), ("event", event)),
            help="shard-worker lifecycle and transport events, by kind",
        )
        m.handle_cache[key] = handle
    handle.inc()


def note_worker_event(shard: int, event: str) -> None:
    """Null-safe :func:`record_worker_event` — a no-op while disabled."""
    obs = _active
    if obs is not None:
        record_worker_event(obs, shard, event)


def record_monitor_flush(
    obs: Observability, dirty: int, changed: int, seconds: float
) -> None:
    """One continuous-monitor flush cycle."""
    m = obs.metrics
    m.counter(
        "casper_monitor_flushes_total", (), help="continuous-monitor flushes"
    ).inc()
    m.counter(
        "casper_monitor_reevaluations_total", (),
        help="continuous queries re-evaluated",
    ).inc(dirty)
    m.counter(
        "casper_monitor_answer_changes_total", (),
        help="continuous queries whose answer changed",
    ).inc(changed)
    m.histogram(
        "casper_monitor_flush_seconds", (), help="flush latency"
    ).observe(seconds)


def record_safe_region_event(obs: Observability, event: str) -> None:
    """One safe-region bookkeeping event on the continuous monitor.

    ``event`` is the outcome *class* of a registered moving-kNN query
    at a flush boundary — ``evaluation`` (the server was re-queried),
    ``suppressed`` (the cloak moved but stayed inside its validity
    region, so the stale candidate list was provably still exact) or
    ``validity_exit`` (the cloak left the region and forced the
    re-query).  The suppressed/evaluation quotient is the re-query-rate
    the ``continuous_mobility`` bench gates on.
    """
    obs.metrics.counter(
        "casper_monitor_safe_region_events_total", (("event", event),),
        help="safe-region moving-kNN outcomes at flush boundaries, by class",
    ).inc()


def note_safe_region_event(event: str) -> None:
    """Null-safe :func:`record_safe_region_event` — a no-op while disabled."""
    obs = _active
    if obs is not None:
        record_safe_region_event(obs, event)


def record_validity_lifetime(obs: Observability, ticks: int) -> None:
    """How many monitor ticks one validity region survived before its
    query had to be re-evaluated (recorded at re-evaluation time)."""
    obs.metrics.histogram(
        "casper_monitor_validity_lifetime_ticks", (),
        boundaries=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        help="ticks a safe-region candidate list stayed valid",
    ).observe(float(ticks))


def note_validity_lifetime(ticks: int) -> None:
    """Null-safe :func:`record_validity_lifetime` — a no-op while disabled."""
    obs = _active
    if obs is not None:
        record_validity_lifetime(obs, ticks)
