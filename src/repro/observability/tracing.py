"""Span-based tracing for the Casper pipeline.

A :class:`Tracer` maintains a stack of open spans per thread of
execution (the reproduction is single-threaded per process, so one
stack suffices); ``span()`` opens a child of the innermost open span,
giving the classic parent/child tree: a ``casper.query`` root with
``processor.filter_selection`` / ``processor.extension`` /
``processor.candidates`` children.

Durations come exclusively from :func:`repro.utils.timer.monotonic`
(the CSP002-sanctioned clock); spans carry *relative* offsets from the
tracer's start, never wall-clock timestamps.  Attribute values obey the
same telemetry trust-boundary rule as metric labels: str/int/bool only,
screened against coordinate patterns (see
:func:`repro.observability.metrics.ensure_safe_label_value`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Union

from repro.observability.metrics import ensure_safe_label_value
from repro.utils.timer import monotonic

__all__ = ["Span", "Tracer"]

AttrValue = Union[str, int, bool]


class Span:
    """One timed operation, possibly with child spans."""

    __slots__ = ("name", "attributes", "start", "end", "children")

    def __init__(self, name: str, attributes: dict[str, AttrValue]) -> None:
        self.name = name
        self.attributes = attributes
        self.start = 0.0
        self.end = 0.0
        self.children: list["Span"] = []

    @property
    def duration(self) -> float:
        return self.end - self.start

    def set_attribute(self, key: str, value: AttrValue) -> None:
        """Attach one attribute after the span opened."""
        self.attributes[key] = ensure_safe_label_value(
            value, context=f"span attribute {key!r}"
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "start": self.start,
            "duration": self.duration,
            "children": [child.as_dict() for child in self.children],
        }

    def iter_all(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.iter_all()


class Tracer:
    """Collects completed span trees, bounded by ``max_roots``.

    The bound drops the *oldest* finished roots first so a long-running
    service keeps its most recent traces without unbounded memory.
    """

    def __init__(self, max_roots: int = 256) -> None:
        if max_roots < 1:
            raise ValueError("max_roots must be >= 1")
        self.max_roots = max_roots
        self.finished: list[Span] = []
        self.dropped = 0
        self._stack: list[Span] = []
        self._origin = monotonic()

    @contextmanager
    def span(self, name: str, **attributes: AttrValue) -> Iterator[Span]:
        """Open a span as a child of the innermost open span."""
        checked = {
            key: ensure_safe_label_value(
                value, context=f"span attribute {key!r}"
            )
            for key, value in attributes.items()
        }
        span = Span(name, checked)
        span.start = monotonic() - self._origin
        parent = self._stack[-1] if self._stack else None
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = monotonic() - self._origin
            popped = self._stack.pop()
            assert popped is span, "span stack corrupted"
            if parent is not None:
                parent.children.append(span)
            else:
                self.finished.append(span)
                if len(self.finished) > self.max_roots:
                    del self.finished[0]
                    self.dropped += 1

    @property
    def open_depth(self) -> int:
        """How many spans are currently open (0 when idle)."""
        return len(self._stack)

    def iter_spans(self) -> Iterator[Span]:
        """Every finished span, roots in completion order, depth first."""
        for root in self.finished:
            yield from root.iter_all()

    def snapshot(self) -> list[dict[str, object]]:
        """JSON-safe view of the finished span trees."""
        return [root.as_dict() for root in self.finished]

    def clear(self) -> None:
        self.finished.clear()
        self.dropped = 0
