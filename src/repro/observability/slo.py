"""SLO monitors over rolling windows of live signals.

Biswas & Sairam's comparison of LBS privacy approaches and the
utility-aware line of work both argue the privacy/utility trade-off is
an *operational* signal, not a post-hoc plot: an operator must see —
while the system runs — whether cloaks are being produced fast enough,
whether they actually honour the ``(k, A_min)`` contract, and whether
candidate lists (the utility cost the client pays) stay bounded.  Each
:class:`SLODefinition` watches a rolling window of one such signal and
flags a breach when the window's mean crosses its threshold.

The monitor is deterministic: windows are fixed-size deques, thresholds
are fixed at construction, and :meth:`SLOMonitor.evaluate` is a pure
function of the recorded values.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["SLODefinition", "SLOBreach", "SLOMonitor", "DEFAULT_SLOS"]


@dataclass(frozen=True)
class SLODefinition:
    """One service-level objective.

    ``kind`` selects the breach direction: an ``"upper"`` SLO breaches
    when the rolling mean *exceeds* the threshold (latencies, sizes); a
    ``"lower"`` SLO breaches when it *falls below* (privacy-contract
    ratios that must stay >= 1).
    """

    name: str
    description: str
    threshold: float
    kind: str = "upper"
    window: int = 256
    min_samples: int = 16

    def __post_init__(self) -> None:
        if self.kind not in ("upper", "lower"):
            raise ValueError("kind must be 'upper' or 'lower'")
        if self.window < 1 or self.min_samples < 1:
            raise ValueError("window and min_samples must be >= 1")


@dataclass(frozen=True)
class SLOBreach:
    """One objective currently out of bounds."""

    slo: str
    observed: float
    threshold: float
    kind: str
    samples: int

    def describe(self) -> str:
        relation = ">" if self.kind == "upper" else "<"
        return (
            f"SLO {self.slo!r} breached: rolling mean {self.observed:.6g} "
            f"{relation} threshold {self.threshold:.6g} "
            f"over {self.samples} samples"
        )


#: The four live signals the ISSUE's operators care about.  Latency
#: generous enough for CI machines; the two ratio SLOs encode the
#: paper's privacy contract itself (k' >= k and A' >= A_min).
DEFAULT_SLOS: tuple[SLODefinition, ...] = (
    SLODefinition(
        name="cloak_latency_seconds",
        description="mean anonymizer cloaking latency",
        threshold=0.05,
        kind="upper",
    ),
    SLODefinition(
        name="cloak_area_ratio",
        description="mean cloaked-area / A_min (must stay >= 1)",
        threshold=1.0,
        kind="lower",
    ),
    SLODefinition(
        name="k_satisfaction",
        description="mean achieved-k / requested-k (must stay >= 1)",
        threshold=1.0,
        kind="lower",
    ),
    SLODefinition(
        name="candidate_list_size",
        description="mean candidate-list fan-out shipped to clients",
        threshold=512.0,
        kind="upper",
    ),
)


class SLOMonitor:
    """Rolling-window watcher for a fixed set of SLO definitions."""

    def __init__(
        self, definitions: tuple[SLODefinition, ...] = DEFAULT_SLOS
    ) -> None:
        names = [d.name for d in definitions]
        if len(set(names)) != len(names):
            raise ValueError("duplicate SLO names")
        self.definitions: dict[str, SLODefinition] = {
            d.name: d for d in definitions
        }
        self._windows: dict[str, deque[float]] = {
            d.name: deque(maxlen=d.window) for d in definitions
        }

    def record(self, name: str, value: float) -> None:
        """Record one observation for the named objective.

        Unknown names are ignored (instrumentation may be newer than the
        monitor configuration) so record sites never need guarding.
        """
        window = self._windows.get(name)
        if window is not None:
            window.append(float(value))

    def samples(self, name: str) -> int:
        return len(self._windows[name])

    def rolling_mean(self, name: str) -> float:
        window = self._windows[name]
        return sum(window) / len(window) if window else 0.0

    def evaluate(self) -> list[SLOBreach]:
        """Every objective currently in breach, in definition order."""
        breaches: list[SLOBreach] = []
        for name, definition in self.definitions.items():
            window = self._windows[name]
            if len(window) < definition.min_samples:
                continue
            mean = sum(window) / len(window)
            out_of_bounds = (
                mean > definition.threshold
                if definition.kind == "upper"
                else mean < definition.threshold
            )
            if out_of_bounds:
                breaches.append(
                    SLOBreach(
                        slo=name,
                        observed=mean,
                        threshold=definition.threshold,
                        kind=definition.kind,
                        samples=len(window),
                    )
                )
        return breaches

    def snapshot(self) -> dict[str, object]:
        """JSON-safe status of every objective plus current breaches."""
        status = []
        for name, definition in self.definitions.items():
            window = self._windows[name]
            status.append(
                {
                    "name": name,
                    "description": definition.description,
                    "threshold": definition.threshold,
                    "kind": definition.kind,
                    "window": definition.window,
                    "samples": len(window),
                    "rolling_mean": (
                        sum(window) / len(window) if window else None
                    ),
                }
            )
        return {
            "objectives": status,
            "breaches": [
                {
                    "slo": b.slo,
                    "observed": b.observed,
                    "threshold": b.threshold,
                    "kind": b.kind,
                    "samples": b.samples,
                }
                for b in self.evaluate()
            ],
        }

    def clear(self) -> None:
        for window in self._windows.values():
            window.clear()

    def __len__(self) -> int:
        """Total recorded samples currently held in windows."""
        return sum(len(w) for w in self._windows.values())
