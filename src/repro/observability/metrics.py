"""Dependency-free metrics primitives: counters, gauges, histograms.

Design constraints, in order:

* **Privacy.**  Telemetry is the one data stream that routinely escapes
  the trusted anonymizer in production deployments, so label values are
  restricted to strings, ints and bools (never floats — a coordinate is
  a float pair) and every string value is screened against a
  coordinate-pair pattern at record time.  The static CSP008 lint rule
  enforces the same property at the call-site level.
* **Determinism.**  Snapshots are pure functions of the *multiset* of
  recorded observations: counters are integer-valued, histogram bucket
  counts are integers, and histogram sums are accumulated as exact
  rationals (:class:`fractions.Fraction`), so two interleavings of the
  same observations produce bit-identical snapshots and merging is
  associative and commutative.  Bucket boundaries are fixed at
  registration — never derived from the data.
* **Zero dependencies.**  Standard library only; the registry must be
  importable from the untrusted processor/server side without dragging
  anything tainted along (see the CSP001 module-graph rule).
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from fractions import Fraction
from typing import Any, Iterable, Iterator, Mapping, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LabelPair",
    "Labels",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_RATIO_BUCKETS",
    "TelemetryLeakError",
    "ensure_safe_label_value",
    "looks_like_coordinates",
]

LabelValue = Union[str, int, bool]
LabelPair = tuple[str, LabelValue]
Labels = tuple[LabelPair, ...]

#: Latency buckets in seconds — fixed, deterministic, roughly
#: quarter-decade spacing from 10 µs to 10 s.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 10.0,
)

#: Size buckets (candidate lists, batch sizes) — powers of two.
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)

#: Ratio buckets (area / A_min, achieved_k / k).
DEFAULT_RATIO_BUCKETS: tuple[float, ...] = (
    0.5, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0,
)


class TelemetryLeakError(ValueError):
    """A telemetry value would carry location-shaped data."""


#: Two decimal numbers separated by a comma/semicolon (with optional
#: parentheses) — the textual shape of a coordinate pair — or an
#: explicit ``Point(...)`` rendering.
_COORD_PAIR_RE = re.compile(
    r"(?:\bpoint\s*\()"
    r"|(?:\(?\s*[-+]?\d+\.\d+\s*[,;]\s*[-+]?\d+\.\d+\s*\)?)",
    re.IGNORECASE,
)


def looks_like_coordinates(text: str) -> bool:
    """True when ``text`` parses as a coordinate pair or ``Point`` repr."""
    return _COORD_PAIR_RE.search(text) is not None


def ensure_safe_label_value(value: object, context: str = "label") -> LabelValue:
    """Validate one label value / span attribute against the telemetry
    trust-boundary rule; returns the value unchanged.

    Floats are rejected outright (exact coordinates are float pairs and
    a single coordinate is already half a location); strings are
    screened against the coordinate-pair pattern.
    """
    if isinstance(value, bool) or isinstance(value, int):
        return value
    if isinstance(value, float):
        raise TelemetryLeakError(
            f"{context} value {value!r} is a float; telemetry labels must "
            "be str/int/bool so raw coordinates cannot ride along"
        )
    if isinstance(value, str):
        if looks_like_coordinates(value):
            raise TelemetryLeakError(
                f"{context} value {value!r} looks like a coordinate pair "
                "and may not cross the telemetry boundary"
            )
        return value
    raise TelemetryLeakError(
        f"{context} value {value!r} has type {type(value).__name__}; only "
        "str/int/bool are allowed in telemetry"
    )


def _normalise_labels(labels: Iterable[LabelPair]) -> Labels:
    pairs = tuple(labels)
    for key, value in pairs:
        if not isinstance(key, str) or not key:
            raise ValueError(f"label key {key!r} must be a non-empty string")
        ensure_safe_label_value(value, context=f"label {key!r}")
    return tuple(sorted(pairs, key=lambda pair: pair[0]))


def _fraction_from_parts(parts: object) -> Fraction:
    if (
        not isinstance(parts, (list, tuple))
        or len(parts) != 2
        or not all(isinstance(p, int) and not isinstance(p, bool) for p in parts)
    ):
        raise ValueError(f"expected [numerator, denominator] ints, got {parts!r}")
    return Fraction(parts[0], parts[1])


class Counter:
    """A monotone integer counter."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (a non-negative int) to the counter."""
        if isinstance(amount, bool) or not isinstance(amount, int):
            raise TypeError("counters are integer-valued")
        if amount < 0:
            raise ValueError("counters are monotone; amount must be >= 0")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def as_dict(self) -> dict[str, object]:
        return {"value": self.value}

    def restore(self, state: Mapping[str, object]) -> None:
        value = state["value"]
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ValueError(f"invalid counter value {value!r}")
        self.value = value


class Gauge:
    """A last-write-wins instantaneous value."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError("gauge values must be finite")
        self.value = value

    def merge(self, other: "Gauge") -> None:
        # Gauges have no order-free merge; keep the other's value (the
        # convention restore/merge tests rely on: merging a snapshot in
        # adopts its gauge readings).
        self.value = other.value

    def as_dict(self) -> dict[str, object]:
        return {"value": self.value.hex()}

    def restore(self, state: Mapping[str, object]) -> None:
        raw = state["value"]
        if not isinstance(raw, str):
            raise ValueError(f"invalid gauge value {raw!r}")
        self.value = float.fromhex(raw)


class Histogram:
    """A fixed-bucket histogram with an exact (order-independent) sum.

    ``boundaries`` are inclusive upper bounds; an implicit ``+inf``
    bucket catches everything above the last boundary.  The running sum
    is an exact rational, so recording the same multiset of observations
    in any order — or merging partial histograms in any grouping —
    yields bit-identical state.
    """

    kind = "histogram"
    __slots__ = (
        "name", "labels", "help", "boundaries", "bucket_counts",
        "count", "_exact_sum", "_pending", "minimum", "maximum",
    )

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        boundaries: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> None:
        if not boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        ordered = tuple(float(b) for b in boundaries)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError("bucket boundaries must be strictly increasing")
        if not all(math.isfinite(b) for b in ordered):
            raise ValueError("bucket boundaries must be finite")
        self.name = name
        self.labels = labels
        self.help = help
        self.boundaries = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)
        self.count = 0
        self._exact_sum = Fraction(0)
        self._pending: list[float] = []
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation (finite float)."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError("histogram observations must be finite")
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        # The exact-rational sum is folded lazily (see _fold): the hot
        # path only appends the raw float, which keeps instrumented
        # benchmark numbers honest.
        self._pending.append(value)
        if len(self._pending) >= 4096:
            self._fold()
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def _fold(self) -> None:
        """Fold pending observations into the exact rational sum.

        Every float is a dyadic rational (``as_integer_ratio`` returns a
        power-of-two denominator), so the batch is summed with integer
        shifts and one final ``Fraction`` — exact, hence independent of
        both observation order and fold timing.
        """
        pending = self._pending
        if not pending:
            return
        acc_num, acc_exp = 0, 0  # running sum == acc_num / 2**acc_exp
        for value in pending:
            num, den = value.as_integer_ratio()
            exp = den.bit_length() - 1
            if exp > acc_exp:
                acc_num <<= exp - acc_exp
                acc_exp = exp
            acc_num += num << (acc_exp - exp)
        self._exact_sum += Fraction(acc_num, 1 << acc_exp)
        pending.clear()

    @property
    def sum(self) -> float:
        """The sum of observations (float view of the exact rational)."""
        self._fold()
        return float(self._exact_sum)

    @property
    def mean(self) -> float:
        self._fold()
        return float(self._exact_sum / self.count) if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` in; both must share bucket boundaries."""
        if other.boundaries != self.boundaries:
            raise ValueError("cannot merge histograms with different buckets")
        self._fold()
        other._fold()
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self._exact_sum += other._exact_sum
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def as_dict(self) -> dict[str, object]:
        self._fold()
        return {
            "boundaries": [b.hex() for b in self.boundaries],
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": [self._exact_sum.numerator, self._exact_sum.denominator],
            "min": self.minimum.hex() if self.count else None,
            "max": self.maximum.hex() if self.count else None,
        }

    def restore(self, state: Mapping[str, object]) -> None:
        boundaries = state["boundaries"]
        if not isinstance(boundaries, list):
            raise ValueError("invalid histogram boundaries")
        restored = tuple(float.fromhex(b) for b in boundaries)
        if restored != self.boundaries:
            raise ValueError("snapshot bucket boundaries differ")
        counts = state["bucket_counts"]
        if (
            not isinstance(counts, list)
            or len(counts) != len(self.bucket_counts)
            or not all(isinstance(c, int) and c >= 0 for c in counts)
        ):
            raise ValueError("invalid histogram bucket counts")
        count = state["count"]
        if not isinstance(count, int) or count != sum(counts):
            raise ValueError("histogram count inconsistent with buckets")
        self.bucket_counts = list(counts)
        self.count = count
        self._exact_sum = _fraction_from_parts(state["sum"])
        self._pending.clear()
        raw_min, raw_max = state.get("min"), state.get("max")
        self.minimum = (
            float.fromhex(raw_min) if isinstance(raw_min, str) else math.inf
        )
        self.maximum = (
            float.fromhex(raw_max) if isinstance(raw_max, str) else -math.inf
        )


Metric = Union[Counter, Gauge, Histogram]

_METRIC_TYPES: dict[str, type] = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricsRegistry:
    """All metric families of one observability session.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call for a ``(name, labels)`` pair registers the instrument, later
    calls return the same object (kind and, for histograms, bucket
    boundaries must match).  Iteration and snapshots are deterministic:
    instruments are ordered by ``(name, labels)``.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, Labels], Metric] = {}
        #: Scratch memo the record helpers use to keep resolved
        #: instrument handles (``runtime.record_cloak`` & co.); living on
        #: the registry means :meth:`clear` can never strand a handle
        #: pointing at an unregistered instrument.
        self.handle_cache: dict[object, Any] = {}

    # -- registration ----------------------------------------------------
    def _get_or_create(
        self, cls: type, name: str, labels: Iterable[LabelPair], **kwargs: object
    ) -> Metric:
        # Fast path: an already-normalised key (sorted tuple of pairs —
        # what every record helper passes) that hit before resolves with
        # one dict probe; label screening happened at registration.
        if type(labels) is tuple:
            metric = self._metrics.get((name, labels))
            if metric is not None:
                if not isinstance(metric, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {metric.kind}"
                    )
                return metric
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        key = (name, _normalise_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(
        self, name: str, labels: Iterable[LabelPair] = (), help: str = ""
    ) -> Counter:
        metric = self._get_or_create(Counter, name, labels, help=help)
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self, name: str, labels: Iterable[LabelPair] = (), help: str = ""
    ) -> Gauge:
        metric = self._get_or_create(Gauge, name, labels, help=help)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        labels: Iterable[LabelPair] = (),
        boundaries: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram, name, labels, boundaries=boundaries, help=help
        )
        assert isinstance(metric, Histogram)
        if metric.boundaries != boundaries and metric.boundaries != tuple(
            float(b) for b in boundaries
        ):
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return metric

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(
            self._metrics[key] for key in sorted(self._metrics, key=_sort_key)
        )

    def get(self, name: str, labels: Iterable[LabelPair] = ()) -> Metric | None:
        return self._metrics.get((name, _normalise_labels(labels)))

    def clear(self) -> None:
        self._metrics.clear()
        self.handle_cache.clear()

    # -- snapshot / restore / merge --------------------------------------
    def snapshot(self) -> dict[str, object]:
        """A deterministic JSON-safe view of every instrument."""
        out = []
        for key in sorted(self._metrics, key=_sort_key):
            metric = self._metrics[key]
            entry: dict[str, object] = {
                "name": metric.name,
                "kind": metric.kind,
                "labels": [[k, v] for k, v in metric.labels],
                "help": metric.help,
            }
            entry.update(metric.as_dict())
            out.append(entry)
        return {"version": 1, "metrics": out}

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, object]) -> "MetricsRegistry":
        """Rebuild a registry that snapshots back to ``snapshot`` exactly."""
        if snapshot.get("version") != 1:
            raise ValueError("unsupported metrics snapshot version")
        registry = cls()
        entries = snapshot.get("metrics")
        if not isinstance(entries, list):
            raise ValueError("snapshot has no metric list")
        for entry in entries:
            kind = entry.get("kind")
            metric_cls = _METRIC_TYPES.get(kind)  # type: ignore[arg-type]
            if metric_cls is None:
                raise ValueError(f"unknown metric kind {kind!r}")
            labels = tuple(
                (str(k), v) for k, v in entry.get("labels", [])
            )
            kwargs: dict[str, object] = {"help": str(entry.get("help", ""))}
            if metric_cls is Histogram:
                kwargs["boundaries"] = tuple(
                    float.fromhex(b) for b in entry["boundaries"]
                )
            metric = registry._get_or_create(
                metric_cls, str(entry["name"]), labels, **kwargs
            )
            metric.restore(entry)
        return registry

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments in (sums add, gauges
        adopt the incoming reading)."""
        for key in sorted(other._metrics, key=_sort_key):
            theirs = other._metrics[key]
            kwargs: dict[str, object] = {"help": theirs.help}
            if isinstance(theirs, Histogram):
                kwargs["boundaries"] = theirs.boundaries
            mine = self._get_or_create(
                type(theirs), theirs.name, theirs.labels, **kwargs
            )
            mine.merge(theirs)  # type: ignore[arg-type]


def _sort_key(key: tuple[str, Labels]) -> tuple[str, str]:
    name, labels = key
    return name, repr(labels)
