"""Continuous private query monitoring (incremental re-evaluation)."""

from repro.continuous.monitor import AnswerChange, ContinuousQueryMonitor

__all__ = ["AnswerChange", "ContinuousQueryMonitor"]
