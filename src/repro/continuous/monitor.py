"""Continuous private queries (Section 5's deferred integration).

The paper evaluates snapshot queries and notes that "supporting
continuous queries ... can be achieved by seamless integration of the
Casper framework into any scalable and/or incremental location-based
query processor" (citing SINA and conceptual partitioning).  This module
is that integration: a shared-execution monitor that keeps many
outstanding private NN / range queries up to date as users and targets
move, re-evaluating only the queries an update can actually affect.

The incremental argument mirrors conceptual partitioning's: a query's
answer can only change when

* the *querying user's cloak* changes (their movement or profile edit), or
* a target update touches the query's extended search region ``A_EXT``
  — entering it, leaving it, or moving within it.

A target strictly outside ``A_EXT`` can never be (or unseat) a filter:
Algorithm 2's filters are each within their vertex's nearest-target
distance, which the per-edge expansion dominates, so any target close
enough to matter is inside ``A_EXT`` already.  Registered queries index
their ``A_EXT`` rectangles in a bucket grid; each target update probes
the grid with its old and new positions and marks only the overlapping
queries dirty.  ``flush()`` recomputes the dirty set and reports answer
deltas.

**Moving clients** get a third path (:meth:`register_knn`): the safe-
region kNN of :mod:`repro.processor.safe_region` attaches a *validity
region* to each candidate list, and a cloak change dirties the query
only when the fresh cloak **exits** that region — while it stays
inside, the stale candidate list provably refines to the same exact
answer, so the monitor counts the change as *suppressed* and does no
server work.  Target-side dirtying switches from ``A_EXT`` to the
result's conservative *watch region* (inflated ``A_EXT`` plus the
anchor witness discs), which restores the "outside cannot matter"
argument under the inflated bound.  A per-tick-recompute oracle
(``safe_region=False``) keeps the old dirty-on-any-cloak-change
behaviour for equivalence testing, and :attr:`counters` /
:attr:`validity_lifetimes` expose the re-query-rate accounting the
``continuous_mobility`` bench gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DegradedModeError
from repro.geometry import Point, Rect
from repro.observability import runtime as _telemetry
from repro.processor import (
    BatchRequest,
    CandidateList,
    SafeRegionResult,
    default_margin,
    private_nn_over_public,
    private_range_over_public,
)
from repro.server.casper import Casper
from repro.spatial import GridIndex
from repro.utils.timer import monotonic

__all__ = ["AnswerChange", "ContinuousQueryMonitor"]


@dataclass(frozen=True)
class AnswerChange:
    """The delta produced by one re-evaluation of a continuous query."""

    query_id: object
    added: frozenset
    removed: frozenset
    candidates: CandidateList

    @property
    def changed(self) -> bool:
        return bool(self.added or self.removed)


@dataclass
class _Query:
    query_id: object
    uid: object
    kind: str  # "nn", "range", "buddy" or "knn"
    num_filters: int
    radius: float
    cloak: Rect
    #: The region indexed in the monitor's grid for target-update
    #: dirtying: ``A_EXT`` for snapshot kinds, the safe-region *watch
    #: region* for kNN queries.
    a_ext: Rect
    answer: frozenset
    #: Last candidate list served (what a client would refine against).
    last_candidates: CandidateList | None = None
    # --- kNN-only state ---
    k: int = 1
    #: None = cloak-relative default margin at each evaluation.
    margin: float | None = None
    use_safe_region: bool = False
    #: While the fresh cloak stays inside this region the stale
    #: candidate list is provably exact; None = dirty on any change.
    validity: Rect | None = None
    #: Monitor tick of the last server evaluation (lifetime bookkeeping).
    eval_tick: int = 0


class ContinuousQueryMonitor:
    """Shared-execution monitor for continuous private queries over the
    public target data of a :class:`~repro.server.Casper` deployment.

    Consistency contract: after :meth:`flush`, every registered query's
    answer equals a from-scratch evaluation against the current state —
    including cloak drift caused by *other* users moving through the
    querying user's pyramid cells, which ``flush`` detects with a cheap
    re-cloak scan before deciding what to re-evaluate.
    """

    def __init__(
        self,
        casper: Casper,
        grid_resolution: int = 32,
        validity_margin_factor: float = 1.5,
    ) -> None:
        self.casper = casper
        # Maps query_id -> A_EXT for the spatial join with target updates.
        self._regions = GridIndex(casper.bounds, grid_resolution)
        self._queries: dict[object, _Query] = {}
        self._queries_of_user: dict[object, set[object]] = {}
        self._dirty: set[object] = set()
        #: Queries whose user could not be re-cloaked at the last flush
        #: (resilient deployments only): their answers are served stale
        #: and they stay dirty until the user's state heals.
        self.last_degraded: frozenset = frozenset()
        #: Default validity margin, as a multiple of the cloak's longer
        #: side, for :meth:`register_knn` queries without an explicit one.
        self.validity_margin_factor = validity_margin_factor
        #: Deterministic re-query accounting.  ``ticks`` counts
        #: :meth:`on_users_moved` batches; ``evaluations`` counts dirty
        #: queries re-evaluated at flush (``knn_evaluations`` the kNN
        #: subset); ``suppressed`` counts flush-scan cloak changes the
        #: validity region absorbed; ``validity_exits`` counts the ones
        #: it did not.
        self.counters: dict[str, int] = {
            "ticks": 0,
            "evaluations": 0,
            "knn_evaluations": 0,
            "suppressed": 0,
            "validity_exits": 0,
        }
        #: Ticks each validity region survived, appended when its query
        #: is re-evaluated.
        self.validity_lifetimes: list[int] = []

    # ------------------------------------------------------------------
    # Query registration
    # ------------------------------------------------------------------
    @property
    def num_queries(self) -> int:
        return len(self._queries)

    def register_nn(
        self, query_id: object, uid: object, num_filters: int = 4
    ) -> CandidateList:
        """Register a continuous "nearest public target" query; returns
        the initial candidate list."""
        return self._register(query_id, uid, "nn", num_filters, 0.0)

    def register_range(
        self, query_id: object, uid: object, radius: float
    ) -> CandidateList:
        """Register a continuous "targets within radius" query."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        return self._register(query_id, uid, "range", 0, radius)

    def register_buddy(
        self, query_id: object, uid: object, num_filters: int = 4
    ) -> CandidateList:
        """Register a continuous "nearest other user" query — private
        query over private data, kept fresh as everyone's stored cloaks
        change.

        A moving user's stored region can invalidate a buddy answer only
        when its old or new cloak touches the query's ``A_EXT`` (a
        strictly-outside region can never hold or become a pessimistic
        filter: a region beating the current filter's max-distance lies
        entirely inside the filter disc, hence inside ``A_EXT``), so the
        same grid probe drives incrementality.
        """
        return self._register(query_id, uid, "buddy", num_filters, 0.0)

    def register_knn(
        self,
        query_id: object,
        uid: object,
        k: int,
        num_filters: int = 4,
        margin: float | None = None,
        safe_region: bool = True,
    ) -> CandidateList:
        """Register a continuous "my k nearest public targets" query for
        a *moving* client; returns the initial candidate list.

        With ``safe_region=True`` (the default) each evaluation attaches
        a validity region ``margin`` wider than the cloak (``None`` =
        ``validity_margin_factor`` times the cloak's longer side,
        recomputed per evaluation) and later cloak changes re-evaluate
        the query only when the fresh cloak exits it.
        ``safe_region=False`` is the per-tick-recompute oracle: any
        cloak change dirties the query, exactly like :meth:`register_nn`
        — the two modes must refine to byte-identical exact answers,
        which the equivalence tests assert.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if margin is not None and margin < 0.0:
            raise ValueError("margin must be non-negative")
        return self._register(
            query_id, uid, "knn", num_filters, 0.0,
            k=k, margin=margin, use_safe_region=safe_region,
        )

    def _register(
        self, query_id: object, uid: object, kind: str, num_filters: int,
        radius: float, k: int = 1, margin: float | None = None,
        use_safe_region: bool = False,
    ) -> CandidateList:
        if query_id in self._queries:
            raise ValueError(f"query id {query_id!r} already registered")
        try:
            cloak = self.casper.cloak_for(uid)
        except DegradedModeError:
            # Resilient deployments may be unable to cloak the user at
            # registration time (state lost, ladder exhausted).  The
            # query registers *degraded*: empty answer, the whole
            # service area as its conservative A_EXT, and dirty — the
            # first flush after the user heals evaluates it for real.
            return self._register_degraded(
                query_id, uid, kind, num_filters, radius,
                k=k, margin=margin, use_safe_region=use_safe_region,
            )
        validity: Rect | None = None
        if kind == "knn":
            result = self._evaluate_knn(
                cloak.region, k, num_filters, margin, use_safe_region
            )
            candidates = result.candidates
            watch = self._watch_region(result)
            if use_safe_region:
                validity = result.validity
        else:
            candidates = self._evaluate(kind, cloak.region, num_filters, radius, uid)
            watch = candidates.search_region
        query = _Query(
            query_id=query_id,
            uid=uid,
            kind=kind,
            num_filters=num_filters,
            radius=radius,
            cloak=cloak.region,
            a_ext=watch,
            answer=frozenset(candidates.oids()),
            last_candidates=candidates,
            k=k,
            margin=margin,
            use_safe_region=use_safe_region,
            validity=validity,
            eval_tick=self.counters["ticks"],
        )
        self._queries[query_id] = query
        self._queries_of_user.setdefault(uid, set()).add(query_id)
        self._regions.insert(query_id, watch)
        return candidates

    def _register_degraded(
        self, query_id: object, uid: object, kind: str, num_filters: int,
        radius: float, k: int = 1, margin: float | None = None,
        use_safe_region: bool = False,
    ) -> CandidateList:
        bounds = self.casper.bounds
        candidates = CandidateList(
            items=(), search_region=bounds, num_filters=num_filters
        )
        query = _Query(
            query_id=query_id,
            uid=uid,
            kind=kind,
            num_filters=num_filters,
            radius=radius,
            cloak=bounds,
            a_ext=bounds,
            answer=frozenset(),
            last_candidates=candidates,
            k=k,
            margin=margin,
            use_safe_region=use_safe_region,
        )
        self._queries[query_id] = query
        self._queries_of_user.setdefault(uid, set()).add(query_id)
        self._regions.insert(query_id, bounds)
        self._dirty.add(query_id)
        return candidates

    def deregister(self, query_id: object) -> None:
        query = self._queries.pop(query_id)
        self._queries_of_user[query.uid].discard(query_id)
        self._regions.remove(query_id)
        self._dirty.discard(query_id)

    # ------------------------------------------------------------------
    # Update notifications
    # ------------------------------------------------------------------
    def on_user_moved(self, uid: object, point: Point) -> None:
        """Route a location update through Casper and mark the affected
        queries dirty: the mover's own queries (when their cloak
        changed) plus any buddy query whose ``A_EXT`` the mover's old or
        new stored region touches."""
        private_index = self.casper.server.private_index
        old_region = (
            private_index.rect_of(uid) if uid in private_index else None
        )
        cloak = self.casper.update_location(uid, point)
        self.notify_user_moved(uid, old_region, cloak.region)

    def on_users_moved(self, moves: list[tuple[object, Point]]) -> None:
        """Batched :meth:`on_user_moved`: one tick's moves go through
        the anonymizer's batched update kernel
        (:meth:`~repro.server.casper.Casper.update_locations`), then
        each mover's queries are dirty-marked exactly as the per-move
        path would.  Stored cloaks reflect the end-of-tick population;
        :meth:`flush` re-cloaks every query anyway, so answers at the
        flush boundary are identical either way."""
        private_index = self.casper.server.private_index
        old_regions = [
            private_index.rect_of(uid) if uid in private_index else None
            for uid, _ in moves
        ]
        self.counters["ticks"] += 1
        cloaks = self.casper.update_locations(moves)
        for (uid, _), old_region, cloak in zip(moves, old_regions, cloaks):
            self.notify_user_moved(uid, old_region, cloak.region)

    def notify_user_moved(
        self, uid: object, old_region: Rect | None, new_region: Rect
    ) -> None:
        """Dirty-marking half of :meth:`on_user_moved`, for callers that
        applied the location update to Casper themselves (``old_region``
        is the user's previously stored cloak, ``new_region`` the fresh
        one).

        A safe-region kNN query is *not* dirtied while the fresh cloak
        stays inside its validity region — its stale candidate list is
        provably still exact there.  (The suppression counters are
        maintained by :meth:`flush`'s re-cloak scan, which sees each
        query exactly once per flush.)"""
        for query_id in self._queries_of_user.get(uid, ()):
            query = self._queries[query_id]
            if query.cloak == new_region:
                continue
            if query.validity is not None and query.validity.contains_rect(
                new_region
            ):
                continue
            self._dirty.add(query_id)
        for probe in (old_region, new_region):
            if probe is None:
                continue
            for query_id in self._regions.range_search(probe):
                if self._queries[query_id].kind == "buddy":
                    self._dirty.add(query_id)

    def on_target_update(
        self,
        oid: object,
        new_position: Point | None,
        old_position: Point | None = None,
    ) -> None:
        """Apply a public-target insert / move / delete and mark the
        queries whose ``A_EXT`` the update touches."""
        if old_position is None and oid in self.casper.server.public_index:
            old_position = self.casper.server.public_index.rect_of(oid).center
        if new_position is None:
            self.casper.server.remove_public(oid)
        else:
            self.casper.server.add_public(oid, new_position)
        for probe in (old_position, new_position):
            if probe is None:
                continue
            for query_id in self._regions.range_search(Rect.point(probe)):
                self._dirty.add(query_id)

    def mark_all_dirty(self) -> None:
        """Force every query to re-evaluate at the next flush.

        Escape hatch for out-of-band state changes the monitor has no
        hook for (profile edits, user registration/removal done directly
        on the Casper facade).
        """
        self._dirty.update(self._queries)

    # ------------------------------------------------------------------
    # Re-evaluation
    # ------------------------------------------------------------------
    def flush(self) -> list[AnswerChange]:
        """Re-evaluate every dirty query; returns the non-empty answer
        deltas (re-evaluations that changed nothing are suppressed).

        Before re-evaluating, every registered query is re-cloaked (a
        microsecond pyramid walk) and marked dirty if its cloak drifted —
        this catches cloak changes caused by *other* users' movement
        through the querying user's pyramid cells, so answers are fully
        consistent with a from-scratch evaluation at each flush boundary.

        Under a resilience runtime a query whose user cannot be
        re-cloaked at all (state lost, ladder exhausted) keeps its
        previous answer — stale but never privacy-violating — and stays
        dirty until the user heals; such queries are reported in
        :attr:`last_degraded`.
        """
        obs = _telemetry.active()
        start = monotonic() if obs is not None else 0.0
        fresh_cloaks: dict[object, Rect] = {}
        degraded: set[object] = set()
        for query_id, query in self._queries.items():
            try:
                region = self.casper.cloak_for(query.uid).region
            except DegradedModeError:
                degraded.add(query_id)
                continue
            fresh_cloaks[query_id] = region
            if region == query.cloak:
                continue
            if query.validity is not None and query.validity.contains_rect(
                region
            ):
                # Safe-region suppression: the cloak drifted but stayed
                # inside the validity region, so the stale candidate
                # list still refines to the exact answer.
                self.counters["suppressed"] += 1
                if obs is not None:
                    _telemetry.record_safe_region_event(obs, "suppressed")
                continue
            if query.validity is not None:
                self.counters["validity_exits"] += 1
                if obs is not None:
                    _telemetry.record_safe_region_event(obs, "validity_exit")
            self._dirty.add(query_id)
        changes: list[AnswerChange] = []
        dirty = sorted(
            (query_id for query_id in self._dirty if query_id not in degraded),
            key=str,
        )
        # Dirty nn/range queries go through the server's batch engine:
        # queries whose users share a cloak (one crowded cell going
        # dirty at once) collapse to a single processor execution.
        # Buddy queries exclude the requester's own record, so each one
        # runs against a momentarily different index and stays
        # un-batched.  kNN queries need the validity/watch geometry the
        # batch engine does not carry, so they also run directly.
        batched = [
            query_id for query_id in dirty
            if self._queries[query_id].kind not in ("buddy", "knn")
        ]
        batch_results = dict(
            zip(
                batched,
                self.casper.server.run_batch(
                    [self._batch_request(query_id, fresh_cloaks) for query_id in batched]
                ),
            )
        )
        for query_id in dirty:
            query = self._queries[query_id]
            cloak_region = fresh_cloaks[query_id]
            self.counters["evaluations"] += 1
            if query.kind == "knn":
                result = self._evaluate_knn(
                    cloak_region, query.k, query.num_filters, query.margin,
                    query.use_safe_region,
                )
                candidates = result.candidates
                watch = self._watch_region(result)
                self.counters["knn_evaluations"] += 1
                if query.use_safe_region:
                    lifetime = self.counters["ticks"] - query.eval_tick
                    self.validity_lifetimes.append(lifetime)
                    query.validity = result.validity
                    if obs is not None:
                        _telemetry.record_safe_region_event(obs, "evaluation")
                        _telemetry.record_validity_lifetime(obs, lifetime)
                query.eval_tick = self.counters["ticks"]
            else:
                candidates = batch_results.get(query_id)
                if candidates is None:
                    candidates = self._evaluate(
                        query.kind, cloak_region, query.num_filters,
                        query.radius, query.uid,
                    )
                watch = candidates.search_region
            new_answer = frozenset(candidates.oids())
            change = AnswerChange(
                query_id=query_id,
                added=new_answer - query.answer,
                removed=query.answer - new_answer,
                candidates=candidates,
            )
            query.cloak = cloak_region
            query.answer = new_answer
            query.last_candidates = candidates
            if query.a_ext != watch:
                self._regions.insert(query_id, watch)
                query.a_ext = watch
            if change.changed:
                changes.append(change)
        if obs is not None:
            _telemetry.record_monitor_flush(
                obs,
                dirty=len(dirty),
                changed=len(changes),
                seconds=monotonic() - start,
            )
        # Degraded queries stay dirty: they re-evaluate as soon as their
        # user's state heals and a fresh cloak exists again.
        self._dirty.clear()
        self._dirty |= degraded
        self.last_degraded = frozenset(degraded)
        return changes

    def _batch_request(
        self, query_id: object, fresh_cloaks: dict[object, Rect]
    ) -> BatchRequest:
        query = self._queries[query_id]
        if query.kind == "nn":
            return BatchRequest(
                "nn_public", fresh_cloaks[query_id], num_filters=query.num_filters
            )
        return BatchRequest(
            "range_public", fresh_cloaks[query_id], radius=query.radius
        )

    def answer_of(self, query_id: object) -> frozenset:
        """The current (last flushed) answer set of a query."""
        return self._queries[query_id].answer

    def candidates_of(self, query_id: object) -> CandidateList:
        """The last candidate list served for a query — what the client
        refines against its exact position.  For a safe-region kNN query
        this may be *stale* (computed for an earlier cloak), which is
        the point: while the cloak stays inside the validity region the
        refinement is provably identical to a fresh re-query."""
        candidates = self._queries[query_id].last_candidates
        assert candidates is not None
        return candidates

    def validity_of(self, query_id: object) -> Rect | None:
        """The current validity region of a safe-region kNN query
        (``None`` for other kinds, oracle-mode kNN and degraded
        registrations)."""
        return self._queries[query_id].validity

    @property
    def mean_validity_lifetime(self) -> float:
        """Mean ticks a validity region survived before re-evaluation
        (0.0 until the first safe-region re-evaluation happens)."""
        if not self.validity_lifetimes:
            return 0.0
        return sum(self.validity_lifetimes) / len(self.validity_lifetimes)

    def _evaluate_knn(
        self, cloak: Rect, k: int, num_filters: int, margin: float | None,
        use_safe_region: bool,
    ) -> SafeRegionResult:
        if not use_safe_region:
            effective = 0.0  # oracle mode: plain snapshot kNN geometry
        elif margin is not None:
            effective = margin
        else:
            effective = default_margin(cloak, self.validity_margin_factor)
        return self.casper.server.knn_public_with_validity(
            cloak, k, num_filters, effective
        )

    def _watch_region(self, result: SafeRegionResult) -> Rect:
        # A clamped k (fewer targets than requested) makes any insert
        # anywhere answer-changing; watch the whole service area then.
        if result.clamped:
            return self.casper.bounds
        return result.watch_region.clipped_to(self.casper.bounds)

    def _evaluate(
        self, kind: str, cloak: Rect, num_filters: int, radius: float,
        uid: object,
    ) -> CandidateList:
        if kind == "buddy":
            return self.casper.server.nn_private(
                cloak, num_filters, exclude=uid
            )
        index = self.casper.server.public_index
        if kind == "nn":
            return private_nn_over_public(index, cloak, num_filters)
        return private_range_over_public(index, cloak, radius)
