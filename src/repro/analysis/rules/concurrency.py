"""CSP010 — no blocking calls inside ``async def``.

The asyncio front door (``sharding/frontdoor.py``) serves every TCP
connection on one event loop; a single ``time.sleep``, synchronous
pipe/socket read, or ``Popen.wait`` anywhere in an ``async def`` stalls
*every* connection, not just the offending one.  This rule flags, in
any ``async def`` in the project:

* non-awaited calls to blocking primitives — ``time.sleep``,
  ``select.select``, ``subprocess.run``/``call``/``check_*`` and
  friends (:data:`repro.analysis.dataflow.BLOCKING_DOTTED_CALLS`);
* non-awaited method calls that block regardless of receiver —
  ``.recv()``/``.recv_bytes()``/``.send_bytes()``/``.poll()``/
  ``.accept()``/``.wait()``/``.communicate()``/``.acquire()``
  (:data:`repro.analysis.dataflow.BLOCKING_METHODS`);
* calls to *project* functions whose call summary says they block
  transitively (typed receiver resolution through the dataflow layer:
  an attribute call only resolves when the receiver's class is
  determinable from ``self``, an annotation, or a constructor
  assignment), so hiding a ``conn.recv_bytes()`` two calls deep does
  not evade the rule, but ``server.close()`` on an asyncio server does
  not get blamed for some unrelated class's blocking ``close()``.

``await``-wrapped calls are exempt by construction (awaiting an
``asyncio`` primitive is the fix, not the bug).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.core import ModuleInfo, Project, RawFinding, Rule, register_rule
from repro.analysis.dataflow import analyze_project, resolve_method_call

__all__ = ["AsyncBlockingRule"]


@register_rule
class AsyncBlockingRule(Rule):
    code = "CSP010"
    name = "asyncio-blocking"
    description = (
        "async def must not call blocking primitives (time.sleep, sync "
        "pipe/socket reads, Popen.wait) directly or transitively"
    )
    default_severity = "error"

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterable[RawFinding]:
        flow = analyze_project(project, config)
        for record in flow.functions.values():
            if record.module != module.name or not record.is_async:
                continue
            # direct blocking primitives in the async body
            for call, reason in record.direct_blocking:
                yield RawFinding.at(
                    call,
                    f"async def {record.qualname}() {reason} — this "
                    "blocks the event loop; await an asyncio "
                    "equivalent or move the work off-loop",
                )
            # transitively-blocking project calls
            awaited = {
                id(node.value)
                for node in ast.walk(record.node)
                if isinstance(node, ast.Await)
                and isinstance(node.value, ast.Call)
            }
            direct = {id(call) for call, _ in record.direct_blocking}
            for node in ast.walk(record.node):
                if (
                    not isinstance(node, ast.Call)
                    or id(node) in awaited
                    or id(node) in direct
                ):
                    continue
                for key in resolve_method_call(flow, record, node):
                    callee = flow.functions[key]
                    if callee.blocking:
                        yield RawFinding.at(
                            node,
                            f"async def {record.qualname}() calls "
                            f"{callee.qualname}(), which "
                            f"{callee.blocking_reason or 'blocks'} — "
                            "this blocks the event loop",
                        )
                        break
