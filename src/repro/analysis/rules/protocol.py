"""CSP013 — frame/op kinds and dispatch handlers stay in lockstep.

The wire protocol is declared in one place (``sharding/wire.py`` +
``messages.py``: ``OP_*``/``RE_*`` opcode constants, ``KIND_*`` frame
kinds, and the ``decode_op``/``decode_response`` functions that map
opcodes to ``("name", ...)`` tuples) and *consumed* in others
(``sharding/workers.py``/``frontdoor.py``, which branch on
``op[0]``-style selectors).  Adding an opcode without a handler — or a
handler string with no opcode behind it — fails at runtime, on the
wire, possibly only under a chaos scenario.  This rule makes the two
sides provably exhaustive at lint time:

* every ``OP_``/``RE_`` constant declared in a protocol module must
  have a branch in a declared decoder (a dead opcode is wire surface
  nobody can parse);
* every operation *name* a decoder can return must be compared against
  a decoder-derived selector somewhere in the dispatch modules (a
  decodable op nobody dispatches);
* every name compared against a selector must exist in some decoder
  (a zombie handler for an op that cannot arrive);
* every ``KIND_`` frame kind must be referenced by some dispatch
  module (an unroutable frame kind).

Selectors are recognized structurally: ``name = op[0]`` (or a direct
``op[0] == "..."`` comparison) where ``op`` was assigned from a call
to a declared decoder.  Everything is configurable via
``protocol_modules`` / ``dispatch_modules`` / ``protocol_decoders`` /
``protocol_constant_prefixes``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.analysis.config import LintConfig
from repro.analysis.core import ModuleInfo, Project, RawFinding, Rule, register_rule
from repro.analysis.dataflow import terminal_name

__all__ = ["ProtocolExhaustivenessRule"]


@dataclass
class _ProtocolModel:
    """Everything the rule extracts from one project."""

    # constant name -> (module, node) for OP_/RE_ declarations
    constants: dict[str, tuple[str, ast.stmt]] = field(default_factory=dict)
    kinds: dict[str, tuple[str, ast.stmt]] = field(default_factory=dict)
    # constant name -> decoded op name ("register", "ack", ...)
    decoder_map: dict[str, str] = field(default_factory=dict)
    # decoded op name -> (module, return stmt) of its decoder branch
    decoder_sites: dict[str, tuple[str, ast.stmt]] = field(
        default_factory=dict
    )
    # op names compared against selectors in dispatch modules
    dispatched: dict[str, list[tuple[str, ast.AST]]] = field(
        default_factory=dict
    )
    # constant names referenced anywhere in dispatch modules
    referenced_constants: set[str] = field(default_factory=set)


def _build_model(project, config: LintConfig) -> _ProtocolModel:
    model = _ProtocolModel()
    for module in project.iter_modules():
        if module.in_package(config.protocol_modules):
            _scan_protocol_module(module, config, model)
    for module in project.iter_modules():
        if module.in_package(config.dispatch_modules):
            _scan_dispatch_module(module, config, model)
    return model


def _scan_protocol_module(
    module: ModuleInfo, config: LintConfig, model: _ProtocolModel
) -> None:
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if target.id.startswith("KIND_"):
                    model.kinds[target.id] = (module.name, node)
                elif any(
                    target.id.startswith(p)
                    for p in config.protocol_constant_prefixes
                ) and not target.id.startswith("KIND_"):
                    model.constants[target.id] = (module.name, node)
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.FunctionDef)
            and node.name in config.protocol_decoders
        ):
            _scan_decoder(module, node, model)


def _scan_decoder(
    module: ModuleInfo, decoder: ast.FunctionDef, model: _ProtocolModel
) -> None:
    """Map ``if opcode == OP_X: ... return ("name", ...)`` branches."""
    for branch in ast.walk(decoder):
        if not isinstance(branch, ast.If):
            continue
        test = branch.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
        ):
            continue
        sides = [test.left, test.comparators[0]]
        constant = next(
            (
                side.id
                for side in sides
                if isinstance(side, ast.Name)
                and (side.id in model.constants or side.id in model.kinds)
            ),
            None,
        )
        if constant is None:
            continue
        for sub in ast.walk(branch):
            if isinstance(sub, ast.Return) and isinstance(
                sub.value, ast.Tuple
            ):
                first = sub.value.elts[0] if sub.value.elts else None
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, str
                ):
                    model.decoder_map[constant] = first.value
                    model.decoder_sites[first.value] = (module.name, sub)
                    break


def _scan_dispatch_module(
    module: ModuleInfo, config: LintConfig, model: _ProtocolModel
) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Name) and (
            node.id in model.constants or node.id in model.kinds
        ):
            model.referenced_constants.add(node.id)
    for func in ast.walk(module.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        decoded_names = _decoder_result_names(func, config)
        selectors = _selector_names(func, decoded_names)
        for node in ast.walk(func):
            if not isinstance(node, ast.Compare):
                continue
            for value, against in _comparison_pairs(node):
                if not _is_selector(value, selectors, decoded_names):
                    continue
                for name in _string_values(against):
                    model.dispatched.setdefault(name, []).append(
                        (module.name, node)
                    )


def _decoder_result_names(func: ast.AST, config: LintConfig) -> set[str]:
    """Local names assigned from a declared decoder call."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if terminal_name(node.value.func) in config.protocol_decoders:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _selector_names(func: ast.AST, decoded: set[str]) -> set[str]:
    """Names assigned ``sel = decoded[0]`` from a decoder result."""
    selectors: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Subscript)
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id in decoded
            and isinstance(node.value.slice, ast.Constant)
            and node.value.slice.value == 0
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    selectors.add(target.id)
    return selectors


def _comparison_pairs(
    node: ast.Compare,
) -> Iterator[tuple[ast.AST, ast.AST]]:
    """(candidate-selector, compared-against) pairs of one comparison."""
    if len(node.ops) != 1 or not isinstance(
        node.ops[0], (ast.Eq, ast.NotEq, ast.In, ast.NotIn)
    ):
        return
    yield node.left, node.comparators[0]
    yield node.comparators[0], node.left


def _is_selector(
    node: ast.AST, selectors: set[str], decoded: set[str]
) -> bool:
    if isinstance(node, ast.Name) and node.id in selectors:
        return True
    return (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id in decoded
        and isinstance(node.slice, ast.Constant)
        and node.slice.value == 0
    )


def _string_values(node: ast.AST) -> list[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out: list[str] = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                out.append(element.value)
        return out
    return []


@register_rule
class ProtocolExhaustivenessRule(Rule):
    code = "CSP013"
    name = "protocol-exhaustiveness"
    description = (
        "every declared frame/op kind has a decoder branch and a "
        "dispatch handler, and every dispatched name has an opcode "
        "behind it"
    )
    default_severity = "error"

    def check(
        self, module: ModuleInfo, project, config: LintConfig
    ) -> Iterable[RawFinding]:
        in_protocol = module.in_package(config.protocol_modules)
        in_dispatch = module.in_package(config.dispatch_modules)
        if not (in_protocol or in_dispatch):
            return
        model = getattr(project, "_casperlint_protocol", None)
        if model is None:
            model = _build_model(project, config)
            project._casperlint_protocol = model
        if in_protocol:
            yield from self._check_protocol_side(module, model)
        if in_dispatch:
            yield from self._check_dispatch_side(module, model)

    def _check_protocol_side(
        self, module: ModuleInfo, model: _ProtocolModel
    ) -> Iterator[RawFinding]:
        # any dispatch at all?  (fixture projects may configure protocol
        # modules without dispatch modules; stay silent then)
        for constant, (mod, node) in sorted(model.constants.items()):
            if mod != module.name:
                continue
            if constant not in model.decoder_map:
                yield RawFinding.at(
                    node,
                    f"opcode constant {constant} has no decoder branch "
                    "in any declared decoder (decode_op/"
                    "decode_response) — a dead wire opcode",
                )
                continue
            name = model.decoder_map[constant]
            if model.dispatched and name not in model.dispatched:
                yield RawFinding.at(
                    node,
                    f"operation {name!r} (opcode {constant}) is decoded "
                    "but never dispatched in any dispatch module — "
                    "add a handler branch or retire the opcode",
                )
        for kind, (mod, node) in sorted(model.kinds.items()):
            if mod != module.name:
                continue
            if (
                model.referenced_constants or model.dispatched
            ) and kind not in model.referenced_constants:
                yield RawFinding.at(
                    node,
                    f"frame kind {kind} is declared but never "
                    "referenced by any dispatch module — an "
                    "unroutable frame kind",
                )

    def _check_dispatch_side(
        self, module: ModuleInfo, model: _ProtocolModel
    ) -> Iterator[RawFinding]:
        known = set(model.decoder_sites)
        for name, sites in sorted(model.dispatched.items()):
            if name in known:
                continue
            for mod, node in sites:
                if mod != module.name:
                    continue
                yield RawFinding.at(
                    node,
                    f"dispatch branch compares against {name!r}, which "
                    "no declared decoder can produce — a zombie "
                    "handler",
                )
