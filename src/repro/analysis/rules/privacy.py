"""CSP001 — the privacy boundary of the Casper architecture.

The paper's system model (Figure 1, Sections 3-4) rests on one
architectural invariant: exact user locations exist only on the trusted
side (mobile users + location anonymizer); the location-based database
server and its privacy-aware query processor ever see only
``(k, A_min)``-cloaked regions and public target data.  This rule makes
that invariant mechanical:

* modules under an **untrusted** package (``repro.processor``,
  ``repro.server``) may not import a **tainted** package (anonymizer
  internals, workload/mobility/simulation generators — everything that
  holds exact locations), neither directly nor transitively through
  helper modules;
* the sanctioned channel is a *name-level allowlist*
  (``safe_imports``): ``from repro.anonymizer import CloakedRegion``
  is how a cloak crosses the boundary, and it is the only way.

A justified inline pragma (``# casperlint: ignore[CSP001] reason``)
cuts the taint edge for the whole module graph — that is how the
``Casper`` facade, which deliberately wires *both* sides together,
declares its role.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.core import ModuleInfo, Project, RawFinding, Rule, register_rule
from repro.analysis.imports import ImportEdge, iter_import_edges

__all__ = ["PrivacyBoundaryRule"]


def _package_of(target: str, prefixes: tuple[str, ...]) -> str | None:
    """The first prefix that contains ``target``, or None."""
    for prefix in prefixes:
        if target == prefix or target.startswith(prefix + "."):
            return prefix
    return None


def _edge_is_safe(edge: ImportEdge, config: LintConfig) -> bool:
    """True when the edge moves only allowlisted names across the boundary."""
    safe = config.safe_imports.get(edge.target)
    if safe is None or not edge.names or edge.is_star:
        return False
    return all(name in safe for name in edge.names)


@register_rule
class PrivacyBoundaryRule(Rule):
    code = "CSP001"
    name = "privacy-boundary"
    description = (
        "server/processor modules must not reach exact-location code "
        "(anonymizer internals, workload generators) except through the "
        "CloakedRegion/PrivacyProfile allowlist"
    )
    default_severity = "error"

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterable[RawFinding]:
        if not module.in_package(config.untrusted_packages):
            return
        graph = _taint_graph(project, config)
        reported: set[str] = set()
        for edge in iter_import_edges(module, project):
            tainted_pkg = _package_of(edge.target, config.tainted_packages)
            if tainted_pkg is not None:
                if _edge_is_safe(edge, config):
                    continue
                detail = (
                    f" (only {sorted(config.safe_imports[edge.target])} may "
                    f"cross the privacy boundary)"
                    if edge.target in config.safe_imports
                    else ""
                )
                what = (
                    f"names {list(edge.names)} from '{edge.target}'"
                    if edge.names
                    else f"'{edge.target}'"
                )
                yield RawFinding.at(
                    edge.node,
                    f"untrusted module '{module.name}' imports {what}: "
                    f"'{tainted_pkg}' holds exact user locations and must "
                    f"stay behind the anonymizer{detail}",
                )
                reported.add(edge.target)
                continue
            # Transitive taint: an import of a *trusted helper* module
            # that itself (transitively) reaches a tainted package.
            if edge.target in reported:
                continue
            chain = _tainted_chain(edge.target, project, config, graph)
            if chain is not None:
                path = " -> ".join([module.name, *chain])
                yield RawFinding.at(
                    edge.node,
                    f"untrusted module '{module.name}' reaches exact-location "
                    f"code transitively: {path}",
                )
                reported.add(edge.target)


def _taint_graph(
    project: Project, config: LintConfig
) -> dict[str, tuple[str, ...]]:
    """Project-internal import edges that can carry taint.

    Edges that are pragma-suppressed for CSP001 or that move only
    allowlisted names are excluded — a justified suppression on the
    importing statement severs the path for every downstream module.
    Cached per (project, config) pair on the project object.
    """
    cache_key = "_csp001_graph"
    cached = getattr(project, cache_key, None)
    if cached is not None:
        return cached
    graph: dict[str, tuple[str, ...]] = {}
    for info in project.iter_modules():
        targets: list[str] = []
        for edge in iter_import_edges(info, project):
            if edge.target not in project.modules:
                continue
            if _edge_is_safe(edge, config):
                continue
            if info.is_suppressed(
                "CSP001",
                edge.node.lineno,
                getattr(edge.node, "end_lineno", None),
            ):
                continue
            targets.append(edge.target)
        graph[info.name] = tuple(dict.fromkeys(targets))
    setattr(project, cache_key, graph)
    return graph


def _tainted_chain(
    start: str,
    project: Project,
    config: LintConfig,
    graph: dict[str, tuple[str, ...]],
) -> list[str] | None:
    """Shortest import chain from ``start`` into a tainted package.

    Returns the chain (including ``start`` and the tainted endpoint) or
    None.  Hops through *untrusted* modules are not explored: a tainted
    path that runs through another server/processor module is that
    module's own direct violation and is reported there.
    """
    if start not in project.modules:
        return None
    if _package_of(start, config.untrusted_packages):
        return None
    parents: dict[str, str | None] = {start: None}
    queue = [start]
    while queue:
        current = queue.pop(0)
        for nxt in graph.get(current, ()):
            if nxt in parents:
                continue
            parents[nxt] = current
            if _package_of(nxt, config.tainted_packages):
                chain = [nxt]
                node: str | None = current
                while node is not None:
                    chain.append(node)
                    node = parents[node]
                return list(reversed(chain))
            if _package_of(nxt, config.untrusted_packages):
                continue
            queue.append(nxt)
    return None
