"""CSP011 — raw serialization stays behind the wire codec.

The parent↔worker seam moves bytes, and the only sanctioned shapes on
that seam are :class:`repro.messages.ShardEnvelope` frames built by the
wire codec (``sharding/wire.py``).  Raw pickle is how anonymizer
internals would sneak across unframed and un-CRC'd, so:

* **outside** the configured ``pickle_boundary_modules``, importing
  ``pickle``/``marshal``/``dill``/``shelve`` at all is a finding —
  state crosses processes as wire blobs, never as ad-hoc pickles;
* **inside** a boundary module (the worker runtime), every
  ``pickle.dumps`` must flow into a sanctioned blob carrier
  (``response_blob``/``op_install`` — the opaque-blob operations whose
  bytes ride inside CRC'd frames), and every ``pickle.loads`` argument
  must derive from a CRC-verified source: a decoded operation field
  (``op[...]`` from ``decode_op``/``decode_response``), a snapshot
  ``.blob`` attribute, or a flushed reply
  (``flush()``/``_flush_shard()`` results).  A loads/dumps that cannot
  be traced to those shapes is flagged;
* **everywhere**, calling ``.send()``/``.recv()`` on a
  pipe/connection/socket-named receiver is flagged: those channels
  pickle implicitly — the framed ``send_bytes`` path is the only
  sanctioned transport.

The derivation check walks the function's assignment map a few levels
deep (``blob = self._flush_shard(s)[-1]; pickle.loads(blob)`` is
sanctioned), which matches how the worker runtime is actually written.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.config import LintConfig
from repro.analysis.core import ModuleInfo, Project, RawFinding, Rule, register_rule
from repro.analysis.dataflow import dotted_name, terminal_name

__all__ = ["ProcessBoundaryRule"]

_RAW_SERIALIZERS = ("pickle", "marshal", "dill", "shelve")

#: Calls whose argument is the sanctioned destination of a dumps blob.
_BLOB_CARRIERS = frozenset({"response_blob", "op_install"})

#: Call names whose results are CRC-verified before they reach loads.
_VERIFIED_SOURCES = frozenset(
    {"decode_op", "decode_response", "decode_frame", "flush", "_flush_shard"}
)

#: Receiver-name fragments that mark an implicit-pickle channel.
_CHANNEL_FRAGMENTS = ("conn", "pipe", "sock")


def _is_pickle_call(node: ast.Call, attr: str) -> bool:
    dotted = dotted_name(node.func)
    return dotted is not None and dotted in {
        f"{mod}.{attr}" for mod in _RAW_SERIALIZERS
    }


def _assignment_map(func: ast.AST) -> dict[str, ast.expr]:
    """Last-writer-wins map of local name -> assigned expression."""
    amap: dict[str, ast.expr] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for name in _target_names(target):
                    amap[name] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            for name in _target_names(node.target):
                amap[name] = node.value
    return amap


def _target_names(target: ast.AST) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names += _target_names(element)
        return names
    return []


def _derives_from_verified(
    expr: ast.AST, amap: dict[str, ast.expr], depth: int = 0
) -> bool:
    """Does ``expr`` trace back to a CRC-verified wire source?"""
    if depth > 4:
        return False
    if isinstance(expr, ast.Subscript):
        return _derives_from_verified(expr.value, amap, depth + 1)
    if isinstance(expr, ast.Attribute):
        # snapshot records carry their pickled state as ``.blob``
        return expr.attr == "blob"
    if isinstance(expr, ast.Call):
        return terminal_name(expr.func) in _VERIFIED_SOURCES
    if isinstance(expr, ast.Name):
        assigned = amap.get(expr.id)
        if assigned is None:
            return False
        return _derives_from_verified(assigned, amap, depth + 1)
    return False


def _dumps_reaches_carrier(
    dumps: ast.Call, func: ast.AST, amap: dict[str, ast.expr]
) -> bool:
    """Is the dumps result handed to a blob carrier (maybe via a name)?"""
    carriers = [
        node
        for node in ast.walk(func)
        if isinstance(node, ast.Call)
        and terminal_name(node.func) in _BLOB_CARRIERS
    ]
    for carrier in carriers:
        for arg in carrier.args:
            if arg is dumps:
                return True
            if isinstance(arg, ast.Name) and amap.get(arg.id) is dumps:
                return True
    return False


@register_rule
class ProcessBoundaryRule(Rule):
    code = "CSP011"
    name = "process-boundary"
    description = (
        "only wire-codec blobs cross the parent<->worker seam: no raw "
        "pickle outside the boundary modules, and inside them every "
        "dumps/loads must ride a CRC-verified carrier"
    )
    default_severity = "error"

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterable[RawFinding]:
        inside = module.in_package(config.pickle_boundary_modules)
        if not inside:
            yield from self._check_imports(module)
        yield from self._check_channels(module)
        if inside:
            yield from self._check_pickle_flow(module)

    def _check_imports(self, module: ModuleInfo) -> Iterator[RawFinding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [node.module or ""]
            else:
                continue
            for name in names:
                root = name.split(".")[0]
                if root in _RAW_SERIALIZERS:
                    yield RawFinding.at(
                        node,
                        f"imports {root!r} outside the pickle boundary "
                        "(pickle_boundary_modules): state crosses the "
                        "process seam as wire blobs, never raw pickles",
                    )

    def _check_channels(self, module: ModuleInfo) -> Iterator[RawFinding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("send", "recv")
                and node.args is not None
            ):
                continue
            receiver = terminal_name(node.func.value)
            if receiver is None:
                continue
            lowered = receiver.lower()
            if any(frag in lowered for frag in _CHANNEL_FRAGMENTS):
                yield RawFinding.at(
                    node,
                    f"calls {receiver}.{node.func.attr}() — an "
                    "implicit-pickle channel; the seam speaks framed "
                    "bytes only (send_bytes of encoded frames)",
                )

    def _check_pickle_flow(self, module: ModuleInfo) -> Iterator[RawFinding]:
        functions = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for func in functions:
            amap = _assignment_map(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                if _is_pickle_call(node, "dumps"):
                    if not _dumps_reaches_carrier(node, func, amap):
                        yield RawFinding.at(
                            node,
                            "pickle.dumps result does not flow into a "
                            "sanctioned blob carrier "
                            "(response_blob/op_install); raw pickles "
                            "must ride inside CRC'd frames",
                        )
                elif _is_pickle_call(node, "loads"):
                    if not node.args or not _derives_from_verified(
                        node.args[0], amap
                    ):
                        yield RawFinding.at(
                            node,
                            "pickle.loads argument does not derive from "
                            "a CRC-verified wire source (decoded op "
                            "field, snapshot .blob, or flushed reply) — "
                            "never unpickle unverified bytes",
                        )
