"""CSP004/CSP005/CSP006 — generic correctness lints.

These three are not Casper-specific, but each has bitten geometry-heavy
reproductions before and each has a precise AST signature worth
catching pre-runtime:

* **CSP004 float-equality** — ``==``/``!=`` against float literals (or
  ``float(...)`` conversions).  Coordinates here are doubles produced
  by arithmetic; exact comparison is only correct against sentinels
  like ``float("inf")``, which the rule exempts.  Use
  ``math.isclose``, ``Point.almost_equals`` or an epsilon band.
* **CSP005 mutable-default-arg** — list/dict/set (literals,
  comprehensions, or constructor calls) as parameter defaults share
  one instance across calls.
* **CSP006 broad-except** — bare ``except:`` and ``except
  Exception/BaseException:`` handlers that do not re-raise swallow
  programming errors; an audit failure downgraded to a log line is how
  a privacy regression ships.  A handler whose body contains a bare
  ``raise`` is exempt (cleanup-then-propagate is fine).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.config import LintConfig
from repro.analysis.core import ModuleInfo, Project, RawFinding, Rule, register_rule

__all__ = ["FloatEqualityRule", "MutableDefaultRule", "BroadExceptRule"]


def _is_float_sentinel(node: ast.AST) -> bool:
    """``float("inf")``-style calls whose equality is exact by design."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    )


def _is_float_expr(node: ast.AST) -> bool:
    """Expressions that are definitely float-valued: literals, unary
    minus over literals, arithmetic involving a float literal, or a
    ``float(...)`` conversion of a non-string."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_float_expr(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_float_expr(node.left) or _is_float_expr(node.right)
    if isinstance(node, ast.Call):
        return (
            isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and not _is_float_sentinel(node)
        )
    return False


@register_rule
class FloatEqualityRule(Rule):
    code = "CSP004"
    name = "float-equality"
    description = (
        "exact ==/!= against float values; use math.isclose, "
        "Point.almost_equals, or an epsilon band"
    )
    default_severity = "error"

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterable[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            comparands = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, comparands[:-1], comparands[1:]
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_sentinel(left) or _is_float_sentinel(right):
                    continue
                if _is_float_expr(left) or _is_float_expr(right):
                    yield RawFinding.at(
                        node,
                        "exact equality against a float value is "
                        "representation-dependent; compare within an "
                        "epsilon (math.isclose / Point.almost_equals)",
                    )
                    break


_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        name = (
            node.func.id
            if isinstance(node.func, ast.Name)
            else node.func.attr
            if isinstance(node.func, ast.Attribute)
            else ""
        )
        return name in _MUTABLE_CALLS
    return False


@register_rule
class MutableDefaultRule(Rule):
    code = "CSP005"
    name = "mutable-default-arg"
    description = "mutable default argument values are shared across calls"
    default_severity = "error"

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterable[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield RawFinding.at(
                        default,
                        f"mutable default in '{node.name}(...)' is created "
                        "once and shared by every call; default to None and "
                        "construct inside the body",
                    )


_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _broad_caught(handler: ast.ExceptHandler) -> str | None:
    """'bare', the broad class name, or None for a narrow handler."""
    if handler.type is None:
        return "bare"
    types: list[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        types = list(handler.type.elts)
    else:
        types = [handler.type]
    for t in types:
        name = (
            t.id
            if isinstance(t, ast.Name)
            else t.attr
            if isinstance(t, ast.Attribute)
            else ""
        )
        if name in _BROAD_NAMES:
            return name
    return None


def _reraises(handler: ast.ExceptHandler) -> Iterator[bool]:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            yield True


@register_rule
class BroadExceptRule(Rule):
    code = "CSP006"
    name = "broad-except"
    description = (
        "bare/broad except handlers that swallow errors instead of "
        "re-raising"
    )
    default_severity = "error"

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterable[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_caught(node)
            if broad is None:
                continue
            if any(_reraises(node)):
                continue
            what = (
                "bare 'except:'"
                if broad == "bare"
                else f"'except {broad}:'"
            )
            yield RawFinding.at(
                node,
                f"{what} swallows every error including audit failures; "
                "catch the specific exception or re-raise",
            )
