"""CSP009 — value-level coordinate-taint tracking.

The import-graph rule (CSP001) keeps exact locations from *crossing
the module boundary*; the telemetry rule (CSP008) pattern-matches
location-shaped expressions *at telemetry call sites*.  This rule
closes the gap between them: it follows the **values** — a ``Point``
construction, a ``.x``/``.y`` read, a ``Point``-annotated or
location-named parameter — through assignments, f-strings, arithmetic
and project-internal calls, and reports when a coordinate-derived
value reaches a sink:

* a logging call,
* an exception message (``raise E(f"point {p} ...")`` — exception
  strings travel: the worker runtime serializes them into ``RE_ERROR``
  wire replies and the TCP front door sends them to remote peers),
* a telemetry label/attribute (value-level upgrade of CSP008),
* frame payload construction (``struct.pack``/``encode_*``/
  ``ShardEnvelope``) outside the sanctioned codec modules
  (``codec_modules`` in the configuration),
* numpy array persistence (``np.save``/``np.savetxt``/``np.savez``/
  ``ndarray.tofile``) — the structure-of-arrays pyramid keeps exact
  coordinates in flat arrays, and one convenience dump would write
  the whole population's locations to disk.

Unlike CSP001 this rule is **not zone-gated**: it fires inside the
trusted anonymizer packages too, because these sinks leave the process
no matter which side of the boundary they are on.

Cross-function findings use the call summaries of
:mod:`repro.analysis.dataflow`: passing a tainted value into a
function whose parameter flows to a sink is reported at the call site.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.core import ModuleInfo, Project, RawFinding, Rule, register_rule
from repro.analysis.dataflow import (
    _INTRINSIC,
    _TaintPass,
    _WEAK,
    analyze_project,
)

__all__ = ["CoordinateTaintRule"]

_SINK_LABEL = {
    "logging": "a log record",
    "exception": "an exception message",
    "telemetry": "a telemetry label/attribute",
    "wire": "a frame payload outside the sanctioned codec",
    "persistence": "a numpy array persisted to disk",
}


@register_rule
class CoordinateTaintRule(Rule):
    code = "CSP009"
    name = "coordinate-taint-leak"
    description = (
        "an exact-location value (Point / raw coordinate) flows into a "
        "log, exception message, telemetry attribute, or frame payload "
        "built outside the sanctioned codec"
    )
    default_severity = "error"

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterable[RawFinding]:
        flow = analyze_project(project, config)
        seen: set[tuple[int, str]] = set()
        for record in flow.functions.values():
            if record.module != module.name:
                continue
            # sinks reached inside this function
            for hit in record.sink_hits:
                if not ({_INTRINSIC, _WEAK} & hit.tags):
                    continue  # parameter-only flow: reported at call sites
                key = (getattr(hit.node, "lineno", 1), hit.kind)
                if key in seen:
                    continue
                seen.add(key)
                yield RawFinding.at(
                    hit.node,
                    f"coordinate-tainted value reaches "
                    f"{_SINK_LABEL[hit.kind]}: {hit.detail} "
                    f"(in {record.qualname})",
                )
            # tainted arguments handed to a callee that sinks them
            taint = _TaintPass(record, module, flow, config)
            taint.run()
            for node in ast.walk(record.node):
                if not isinstance(node, ast.Call):
                    continue
                for callee_key in flow.resolve_call(record.module, node):
                    callee = flow.functions[callee_key]
                    if not callee.param_to_sink:
                        continue
                    for index, arg in taint._align_args(callee, node):
                        kind = callee.param_to_sink.get(index)
                        if kind is None:
                            continue
                        if _INTRINSIC not in taint.expr_tags(arg):
                            continue
                        key = (getattr(node, "lineno", 1), f"call:{kind}")
                        if key in seen:
                            continue
                        seen.add(key)
                        yield RawFinding.at(
                            node,
                            f"passes a coordinate-tainted argument to "
                            f"{callee.qualname}(), which leaks it into "
                            f"{_SINK_LABEL[kind]} "
                            f"(in {record.qualname})",
                        )
