"""CSP012 — spawned processes/sockets/pipes released on every CFG path.

The static twin of the conftest orphan-worker guard: the test suite
fails a session that leaves a ``casper-shard-*`` process behind, and
this rule fails the *lint* run on any code path that could produce
one.  For every local acquisition of an OS-backed resource::

    parent_conn, child_conn = ctx.Pipe()
    sock = socket.socket(...)
    proc = subprocess.Popen([...])

the rule builds the function's CFG (:mod:`repro.analysis.cfg`) and
walks every path from the acquisition, *including exception edges*.
A path that reaches the function exit without one of:

* a release call on the name (``.close()``/``.kill()``/
  ``.terminate()``/``.shutdown()``/``.release()``/``.join()``),
* a ``with`` block over the name (context managers release on all
  paths by construction),
* an *escape* — the name is stored on an attribute/subscript, returned,
  yielded, or passed to another call (ownership moved, the local is no
  longer responsible),
* a rebind of the name,

is a finding: an exception (or early return) on that path leaks the
file descriptor or child process.  The fix the message asks for is the
one the runtime uses: release in a ``finally`` (or ``except
BaseException: ... raise``) or hold the resource in a context manager.

``Process(...)`` constructors are *not* acquisitions (the OS resource
exists only after ``.start()``, and a failed ``start`` is surfaced by
the pipe the process was wired to); ``Popen`` spawns in its
constructor, so it is.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.config import LintConfig
from repro.analysis.core import ModuleInfo, Project, RawFinding, Rule, register_rule
from repro.analysis.dataflow import terminal_name

__all__ = ["ResourceLifecycleRule"]

#: Terminal call names whose result owns an OS resource.
_ACQUIRERS = frozenset(
    {
        "Pipe",
        "Popen",
        "socket",
        "socketpair",
        "create_connection",
        "create_server",
        "open_connection",
        "SimpleQueue",
    }
)

#: Method calls that release the resource held by a name.
_RELEASERS = frozenset(
    {"close", "kill", "terminate", "shutdown", "release", "join"}
)


def _acquired_names(stmt: ast.stmt) -> list[str]:
    """Local names bound to a fresh resource by this statement."""
    if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        return []
    value = stmt.value
    if value is None or not isinstance(value, ast.Call):
        return []
    if terminal_name(value.func) not in _ACQUIRERS:
        return []
    targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
    names: list[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    names.append(element.id)
    return names


def _mentions_name(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name
        for sub in ast.walk(node)
    )


def _releases(node: ast.AST, name: str) -> bool:
    """Does this statement/header release ``name`` on this block?"""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _RELEASERS
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id == name
        ):
            return True
    return False


def _escapes(node: ast.AST, name: str) -> bool:
    """Ownership of ``name`` moves elsewhere in this statement."""
    if isinstance(node, ast.Return):
        return node.value is not None and _mentions_name(node.value, name)
    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (
            node.targets
            if isinstance(node, ast.Assign)
            else [node.target]
        )
        value = getattr(node, "value", None)
        if value is not None and _mentions_name(value, name):
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return True  # stored on self/container: owner changed
                if isinstance(target, ast.Name) and target.id == name:
                    return True  # rebound
            # also: tuple targets rebinding the same name
            for target in targets:
                if isinstance(target, (ast.Tuple, ast.List)) and any(
                    isinstance(e, ast.Name) and e.id == name
                    for e in target.elts
                ):
                    return True
    for sub in ast.walk(node):
        if isinstance(sub, ast.Yield) or isinstance(sub, ast.YieldFrom):
            return True  # generator frames outlive this analysis
        if isinstance(sub, ast.Call):
            receiver_release = (
                isinstance(sub.func, ast.Attribute)
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id == name
            )
            if receiver_release:
                continue  # method call *on* the resource is not an escape
            for arg in [*sub.args, *(kw.value for kw in sub.keywords)]:
                if _mentions_name(arg, name):
                    return True  # handed to another owner
    if isinstance(node, (ast.With, ast.AsyncWith)):
        return True
    return False


def _with_covers(header: ast.expr | None, name: str) -> bool:
    """A ``with name`` / ``with f(name)`` header manages the resource."""
    return header is not None and _mentions_name(header, name)


@register_rule
class ResourceLifecycleRule(Rule):
    code = "CSP012"
    name = "resource-lifecycle"
    description = (
        "every locally-acquired process/socket/pipe must be released on "
        "all control-flow paths (finally/context manager), including "
        "exception paths"
    )
    default_severity = "error"

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterable[RawFinding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            # cheap gate before building a CFG
            if not any(
                isinstance(node, ast.Call)
                and terminal_name(node.func) in _ACQUIRERS
                for node in ast.walk(func)
            ):
                continue
            yield from self._check_function(func)

    def _check_function(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[RawFinding]:
        cfg = build_cfg(func)
        for block in list(cfg.blocks.values()):
            if block.stmt is None:
                continue
            for name in _acquired_names(block.stmt):
                if self._leaks(cfg, block.index, block.stmt, name):
                    yield RawFinding.at(
                        block.stmt,
                        f"{name!r} acquired here may never be released: "
                        "an exception/early-return path reaches the "
                        "function exit without .close()/.kill() — "
                        "release it in a finally block or hold it in a "
                        "context manager",
                    )

    def _leaks(
        self, cfg: CFG, start: int, acquisition: ast.stmt, name: str
    ) -> bool:
        """Can exit be reached from the acquisition without a release?

        The acquisition block's own exception edge is not a leak (the
        constructor failed — nothing was acquired), so the walk starts
        at the *successors* and prunes the acquisition's exception
        target unless it is also reachable another way.
        """
        seen: set[int] = set()
        stack = [
            succ
            for succ in cfg.blocks[start].successors
            if self._normal_successor(cfg, start, succ, acquisition)
        ]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            if index == cfg.exit:
                return True
            block = cfg.blocks[index]
            node = block.node
            if node is not None:
                if block.header is not None and _with_covers(
                    block.header, name
                ):
                    continue  # context manager owns it from here
                if _releases(node, name) or _escapes(node, name):
                    continue
                if self._rebinds(node, name):
                    continue
            stack.extend(block.successors)
        return False

    @staticmethod
    def _normal_successor(
        cfg: CFG, start: int, succ: int, acquisition: ast.stmt
    ) -> bool:
        """Filter the acquisition statement's own exception edge."""
        # the exception edge is the successor that is also the innermost
        # exception target; a failed constructor acquired nothing.  We
        # approximate: keep every successor that is not *only* reachable
        # as an exception target, i.e. drop successors that are try
        # dispatch blocks or the exit when another successor exists.
        block = cfg.blocks[succ]
        if succ == cfg.exit and len(cfg.blocks[start].successors) > 1:
            return False
        if (
            block.stmt is None
            and block.header is None
            and succ not in (cfg.entry, cfg.exit)
            and len(cfg.blocks[start].successors) > 1
        ):
            return False  # synthetic try-dispatch reached by raising
        return True

    @staticmethod
    def _rebinds(node: ast.AST, name: str) -> bool:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return True
        return False
