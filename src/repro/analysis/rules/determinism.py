"""CSP002 — determinism of everything that feeds figures and benchmarks.

PR 1 made figure runs byte-identical across serial and parallel
execution; that only holds while every stochastic choice flows through
``repro.utils.rng`` (seeded ``numpy.random.Generator`` streams) and no
module consults the wall clock for *data* (measuring elapsed time with
``time.perf_counter`` is fine — it never feeds a seed or a decision).

Inside the deterministic zone (``evaluation``, ``mobility``,
``simulation``, ``workloads``, ``tools``) this rule bans:

* the stdlib ``random`` module entirely (its global state leaks across
  components and its streams differ from numpy's);
* wall-clock reads: ``time.time``/``time.time_ns`` and
  ``datetime.now``/``utcnow``/``today``;
* numpy's *legacy global* RNG (``np.random.seed``, ``np.random.rand``,
  ``np.random.choice``, ...) — shared mutable state that parallel
  figure workers would race on;
* **unseeded** ``np.random.default_rng()`` / ``default_rng(None)`` —
  an OS-entropy stream that is different every run.

The fix is always the same: accept a ``SeedLike`` and call
``repro.utils.rng.ensure_rng`` / ``spawn_rngs``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.config import LintConfig
from repro.analysis.core import ModuleInfo, Project, RawFinding, Rule, register_rule

__all__ = ["DeterminismRule"]

_WALL_CLOCK_TIME_ATTRS = frozenset({"time", "time_ns", "ctime", "localtime", "gmtime"})
_WALL_CLOCK_DT_ATTRS = frozenset({"now", "utcnow", "today"})
_NUMPY_LEGACY_ATTRS = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "random_integers",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "exponential",
        "poisson",
        "binomial",
        "get_state",
        "set_state",
    }
)


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _numpy_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to the numpy top-level module."""
    aliases = {"numpy"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


@register_rule
class DeterminismRule(Rule):
    code = "CSP002"
    name = "determinism"
    description = (
        "modules feeding figures/benchmarks must route all randomness "
        "through repro.utils.rng and never read the wall clock for data"
    )
    default_severity = "error"

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterable[RawFinding]:
        if not module.in_package(config.deterministic_packages):
            return
        if module.name == config.rng_module:  # the sanctioned wrapper itself
            return
        np_names = _numpy_aliases(module.tree)
        for node in ast.walk(module.tree):
            yield from self._check_imports(node, config)
            yield from self._check_attribute_use(node, np_names, config)

    # -- imports --------------------------------------------------------
    def _check_imports(
        self, node: ast.AST, config: LintConfig
    ) -> Iterator[RawFinding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == "random":
                    yield RawFinding.at(
                        node,
                        "stdlib 'random' is banned in deterministic modules; "
                        f"use {config.rng_module}.ensure_rng(seed) instead",
                    )
        elif isinstance(node, ast.ImportFrom) and not node.level:
            if node.module and node.module.split(".")[0] == "random":
                yield RawFinding.at(
                    node,
                    "stdlib 'random' is banned in deterministic modules; "
                    f"use {config.rng_module}.ensure_rng(seed) instead",
                )
            elif node.module == "time":
                bad = sorted(
                    a.name
                    for a in node.names
                    if a.name in _WALL_CLOCK_TIME_ATTRS
                )
                if bad:
                    yield RawFinding.at(
                        node,
                        f"wall-clock import {bad} from 'time' breaks "
                        "reproducibility; measure durations with "
                        "time.perf_counter and never feed clocks into data",
                    )

    # -- attribute chains ----------------------------------------------
    def _check_attribute_use(
        self, node: ast.AST, np_names: set[str], config: LintConfig
    ) -> Iterator[RawFinding]:
        if not isinstance(node, ast.Attribute):
            return
        dotted = _dotted(node)
        if dotted is None:
            return
        parts = dotted.split(".")
        if dotted in ("time.time", "time.time_ns"):
            yield RawFinding.at(
                node,
                f"wall-clock read '{dotted}' breaks reproducibility; use "
                "time.perf_counter for durations or pass timestamps in "
                "explicitly",
            )
            return
        if (
            parts[-1] in _WALL_CLOCK_DT_ATTRS
            and len(parts) >= 2
            and parts[-2] in ("datetime", "date")
        ):
            yield RawFinding.at(
                node,
                f"wall-clock read '{dotted}' breaks reproducibility; pass "
                "timestamps in explicitly",
            )
            return
        # numpy.random.* — legacy global generator or unseeded default_rng.
        if len(parts) >= 3 and parts[0] in np_names and parts[1] == "random":
            attr = parts[2]
            if attr in _NUMPY_LEGACY_ATTRS:
                yield RawFinding.at(
                    node,
                    f"legacy global numpy RNG '{dotted}' is shared mutable "
                    f"state; use {config.rng_module}.ensure_rng(seed)",
                )


@register_rule
class UnseededGeneratorRule(Rule):
    """CSP002 companion emitted under the same zone: unseeded default_rng.

    Split from the attribute walk because it needs the *call* node (to
    inspect arguments), and kept as its own registered rule so severity
    can be tuned independently of the hard bans.
    """

    code = "CSP007"
    name = "unseeded-generator"
    description = (
        "np.random.default_rng() without a seed yields a different "
        "stream every run; thread a SeedLike through repro.utils.rng"
    )
    default_severity = "error"

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterable[RawFinding]:
        if not module.in_package(config.deterministic_packages):
            return
        if module.name == config.rng_module:
            return
        np_names = _numpy_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            is_default_rng = (
                len(parts) >= 3
                and parts[0] in np_names
                and parts[1] == "random"
                and parts[2] == "default_rng"
            ) or dotted == "default_rng"
            if not is_default_rng:
                continue
            unseeded = not node.args or (
                isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            if unseeded and not node.keywords:
                yield RawFinding.at(
                    node,
                    "unseeded default_rng() draws OS entropy and differs "
                    f"every run; use {config.rng_module}.ensure_rng(seed)",
                )
