"""CSP014 — policy encapsulation.

The anonymizer refactor split every cloaker into shared mechanics
(:class:`repro.anonymizer.engine.PyramidEngine`) plus one
:class:`~repro.anonymizer.policy.CloakingPolicy` module that holds only
what differs between algorithms.  The contract that keeps the split
real: a policy touches pyramid state **only through the engine and
mixin hook APIs**.  The moment a policy reaches into another object's
underscore attributes, the engine's representation leaks back into the
policies and the next engine change breaks them silently — exactly the
coupling the refactor removed.

Mechanically: inside ``policy_modules`` (default
``repro.anonymizer.policies``), any attribute access ``obj._name``
where ``obj`` is not ``self``/``cls`` is flagged, reads and writes
alike.  Dunder attributes (``__class__``-style introspection) and a
policy's own private state (``self._users``) are fine — the rule
guards *other* objects' representations, not privacy of the policy
itself.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.config import LintConfig
from repro.analysis.core import ModuleInfo, Project, RawFinding, Rule, register_rule

__all__ = ["PolicyEncapsulationRule"]


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _is_self_or_cls(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id in ("self", "cls")


@register_rule
class PolicyEncapsulationRule(Rule):
    code = "CSP014"
    name = "policy-encapsulation"
    description = (
        "cloaking-policy modules may touch pyramid state only through "
        "the PyramidEngine API — no underscore attributes of non-self "
        "objects"
    )
    default_severity = "error"

    def check(
        self, module: ModuleInfo, project: Project, config: LintConfig
    ) -> Iterable[RawFinding]:
        if not module.in_package(config.policy_modules):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not node.attr.startswith("_") or _is_dunder(node.attr):
                continue
            if _is_self_or_cls(node.value):
                continue
            verb = (
                "mutates"
                if isinstance(node.ctx, (ast.Store, ast.Del))
                else "reaches into"
            )
            yield RawFinding.at(
                node,
                f"policy module '{module.name}' {verb} private attribute "
                f"'{node.attr}' of a non-self object; policies may touch "
                f"pyramid state only through the PyramidEngine API",
            )
