"""Built-in casperlint rules.

Importing this package populates :data:`repro.analysis.core.RULE_REGISTRY`
via the ``@register_rule`` decorators in the rule modules.
"""

from __future__ import annotations

__all__ = ["load_builtin_rules"]

_loaded = False


def load_builtin_rules() -> None:
    """Idempotently import every built-in rule module."""
    global _loaded
    if _loaded:
        return
    from repro.analysis.rules import (  # noqa: F401  (registration side effect)
        boundary,
        concurrency,
        correctness,
        determinism,
        index_contract,
        lifecycle,
        policy_api,
        privacy,
        protocol,
        taint,
        telemetry,
    )

    _loaded = True
